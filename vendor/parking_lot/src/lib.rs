//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The two differences that matter to callers are preserved: lock methods
//! return guards directly (no `Result`), and a panicked writer never
//! poisons the lock for later users.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// Reader-writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Shared access if immediately available.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access if immediately available.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through a unique reference (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through a unique reference (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn panicked_writer_does_not_poison() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("die with the lock held");
        })
        .join();
        assert_eq!(*l.read(), 0);
    }
}
