//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the pieces this workspace uses: [`Strategy`] (ranges, tuples,
//! `prop_map`), [`any`], the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` family. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failure reports
//! the case number and seed so it can be replayed by rerunning the test.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    //! The glob import used by test files.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Abort if rejections exceed `cases * max_global_rejects_factor`.
    pub max_global_rejects_factor: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects_factor: 20 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case does not count, try another.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (from `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A failure (from `prop_assert!`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_word {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_word!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Derive a stable per-test seed from the test's module path and name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Run one property test: generate cases until `cases` are accepted or the
/// rejection budget is exhausted. Not part of proptest's public API, but
/// the macro below expands to calls of it.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
{
    let mut rng = SmallRng::seed_from_u64(seed_for(test_name));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let budget = config.cases.saturating_mul(config.max_global_rejects_factor).max(64);
    let mut case_index = 0u64;
    while accepted < config.cases {
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= budget,
                    "{test_name}: too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case #{case_index} \
                     (deterministic seed {:#x}):\n{msg}",
                    seed_for(test_name)
                );
            }
        }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_prop(x in 0usize..100, seed in any::<u64>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |__proptest_rng| {
                        $(
                            let $pat = $crate::Strategy::new_value(&($strategy), __proptest_rng);
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn prop_map_transforms(v in (1usize..5).prop_map(|k| vec![0u8; k])) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_info() {
        crate::run_property("doomed", &ProptestConfig::with_cases(4), |_| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
