//! Offline, API-compatible subset of `crossbeam`: scoped threads.
//!
//! Backed by `std::thread::scope` (stable since 1.63), with crossbeam's
//! calling convention preserved: `crossbeam::thread::scope` returns
//! `Result` (instead of propagating child panics directly), and spawn
//! closures receive a `&Scope` argument for nested spawning.

pub mod thread {
    //! Scoped thread spawning.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to an enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope. The
        /// closure receives the scope back (crossbeam convention) so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in any spawned thread (or in `f` itself) is caught
    /// and returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = crate::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
