//! Offline, API-compatible subset of `crossbeam`: scoped threads and
//! MPSC channels.
//!
//! [`thread`] is backed by `std::thread::scope` (stable since 1.63), with
//! crossbeam's calling convention preserved: `crossbeam::thread::scope`
//! returns `Result` (instead of propagating child panics directly), and
//! spawn closures receive a `&Scope` argument for nested spawning.
//!
//! [`channel`] is backed by `std::sync::mpsc`, with crossbeam's names and
//! error types preserved for the subset the workspace uses: [`channel::unbounded`],
//! cloneable [`channel::Sender`]s, and a single-consumer [`channel::Receiver`]
//! (the real crossbeam receiver is MPMC-cloneable; this subset is not).

pub mod thread {
    //! Scoped thread spawning.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to an enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope. The
        /// closure receives the scope back (crossbeam convention) so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in any spawned thread (or in `f` itself) is caught
    /// and returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

pub mod channel {
    //! Multi-producer single-consumer FIFO channels.
    //!
    //! The subset of `crossbeam-channel` the workspace needs: an unbounded
    //! channel whose [`Sender`] clones freely across threads and whose
    //! [`Receiver`] yields messages in send order. Disconnection semantics
    //! match crossbeam (and `std::sync::mpsc`): a receive on a channel whose
    //! senders are all gone still drains every queued message before
    //! reporting [`RecvError`].

    use std::fmt;
    use std::sync::mpsc;

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// The sending half of a channel. Cloneable; sends never block.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only when the receiver is gone, handing the
        /// message back.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a channel (single consumer).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; [`RecvError`] once every sender is
        /// dropped *and* the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a deadline: block up to `timeout` for a message.
        /// Like [`Receiver::recv`], disconnection is only reported once the
        /// queue is drained.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// The receiver disconnected; the unsent message is handed back.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// All senders disconnected and the queue is empty.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// No message queued right now; senders still live.
        Empty,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    /// Why a `recv_timeout` returned nothing.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message; senders still live.
        Timeout,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = crate::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_is_fifo_across_cloned_senders() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        for i in 0..4 {
            tx.send(i).unwrap();
            tx2.send(i + 100).unwrap();
        }
        drop((tx, tx2));
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 100, 1, 101, 2, 102, 3, 103]);
    }

    #[test]
    fn channel_drains_queue_before_disconnect_error() {
        let (tx, rx) = crate::channel::unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(crate::channel::TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use crate::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = crate::channel::unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        tx.send(9u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(9));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_hands_message_back() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(crate::channel::SendError(9)));
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
