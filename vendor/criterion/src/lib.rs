//! Offline, API-compatible subset of `criterion`.
//!
//! Keeps the macro/entry-point shape of criterion 0.5 (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `Bencher::iter`,
//! `BenchmarkId`) but runs a deliberately small timing loop: a few warmup
//! iterations, then `sample_size` timed samples, reporting the median and
//! min/max per benchmark. No statistics engine, no plotting, no baseline
//! storage — enough to compare orders of magnitude offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self { name: format!("{function_name}/{parameter}") }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Passed to the closure under test; times the inner loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` runs of `routine` (after 3 warmup runs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(full_name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = *b.samples.last().unwrap();
    println!(
        "{full_name:<50} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let mut f = f;
        run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let mut f = f;
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Apply command-line configuration (ignored offline).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup { name, sample_size: 10, _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(name, 10, |b| f(b));
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        // 3 warmup + 2 samples.
        assert_eq!(runs, 5);
    }
}
