//! Distributions over user types.

use crate::{RngCore, SampleRange, Standard};

/// A distribution producing `T` values.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a half-open or inclusive range, pre-validated.
#[derive(Debug, Clone)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Self { low, high }
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy,
    core::ops::Range<T>: SampleRange<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.low..self.high).sample_single(rng)
    }
}

/// The "any value of T" distribution marker.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardDist;

impl<T: Standard> Distribution<T> for StandardDist {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were provided.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Sample indices `0..k` proportionally to a weight table.
///
/// Sampling is a binary search over the cumulative weight table — `O(log k)`
/// per draw, exactly like upstream rand.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterator of nonnegative weights (at least one must be
    /// positive).
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Into<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w: f64 = w.into();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(Self { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = f64::sample_standard(rng) * self.total;
        // partition_point: first index whose cumulative weight exceeds x.
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_tracks_weights() {
        let wi = WeightedIndex::new([1.0f64, 0.0, 3.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[wi.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[0] > 8_000 && counts[0] < 12_000, "counts: {counts:?}");
        assert!(counts[2] > 28_000, "counts: {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_inputs() {
        assert_eq!(WeightedIndex::new(Vec::<f64>::new()), Err(WeightedError::NoItem));
        assert_eq!(WeightedIndex::new([0.0f64, 0.0]), Err(WeightedError::AllWeightsZero));
        assert_eq!(WeightedIndex::new([1.0f64, -2.0]), Err(WeightedError::InvalidWeight));
    }
}
