//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the exact surface it uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `fill`), [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`]
//! (xoshiro256++), [`seq::SliceRandom`] (`shuffle`, `choose`), and
//! [`distributions::WeightedIndex`]. Algorithms only require *a*
//! deterministic, well-mixed generator — they do not depend on upstream
//! rand's exact streams — so this stub is a drop-in for this workspace.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type samplable uniformly from a generator (the `Standard`-distribution
/// types of upstream rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn mul_shift(word: u64, width: u64) -> u64 {
    // Multiply-shift range reduction: maps a uniform u64 onto 0..width with
    // bias below 2^-64 per draw — indistinguishable at test scales.
    ((word as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + mul_shift(rng.next_u64(), width + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + mul_shift(rng.next_u64(), width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u64 as u128 + 1;
                (start as i128 + ((rng.next_u64() as u128 * width) >> 64) as i128) as $t
            }
        }
        #[allow(unused)]
        const _: $u = 0;
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fill a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(state: u64) -> Self;

    /// Seed from the OS entropy-free fallback (deterministic here: the
    /// workspace never uses ambient entropy, everything is seeded).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E3779B97F4A7C15)
    }
}

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::distributions::Distribution;
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=15u64);
            assert!((1..=15).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                lo += 1;
            }
        }
        assert!((4000..6000).contains(&lo), "biased unit floats: {lo}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1500..2500).contains(&hits), "gen_bool(0.2) hit {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input in order");
    }
}
