//! Crash-injection harness: run a seeded workload against a real
//! `cut-server` child process with `--data-dir`, kill it at injection
//! points — externally with SIGKILL between requests, and internally
//! mid-WAL-append / mid-snapshot / mid-spill via the store's crash env
//! hooks (`CUT_STORE_CRASH_POINT` / `CUT_STORE_CRASH_AFTER`, which
//! half-write the in-flight file and abort) — restart it on the same
//! directory, and resume.
//!
//! The gate: the concatenated response log across every crash and
//! restart must be **byte-identical** to an uninterrupted in-process
//! run of the same seed. The resume protocol is the one a real client
//! gets: the server executes, then write-ahead logs, then releases the
//! response — so after a crash, a graph's durable record count is
//! either equal to the client's acked count (the in-flight request
//! never applied: re-send it) or one ahead (it applied but the ack was
//! lost: recover the response from the last WAL record).

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cut_client::{ClientError, Connection, ReconnectPolicy};
use cut_engine::{Engine, GraphStore, Query, Request, Response, Workload, WorkloadConfig};
use cut_store::{RecoveryReport, Store, StoreOptions};

const SNAPSHOT_EVERY: &str = "5";
const RESIDENT_CAP: &str = "3";

fn workload_requests() -> Vec<Request> {
    let cfg = WorkloadConfig {
        ops: 240,
        seed: 0xC7A54,
        graphs: 6,
        initial_n: 12,
        zipf_exponent: 1.1,
        ..WorkloadConfig::default()
    };
    Workload::generate(&cfg).all_requests().cloned().collect()
}

/// The uninterrupted reference: a plain in-process engine, no
/// durability, no shards, no crashes.
fn reference_log(requests: &[Request]) -> Vec<String> {
    let mut engine = Engine::new();
    requests.iter().map(|r| engine.execute(r.clone()).to_trace_line()).collect()
}

fn graph_name(request: &Request) -> &str {
    match request {
        Request::Create { name, .. }
        | Request::Drop { name }
        | Request::Mutate { name, .. }
        | Request::Query { name, .. } => name,
        Request::ListGraphs | Request::Stats | Request::Metrics | Request::Slowlog => {
            panic!("the workload generator never emits broadcasts")
        }
    }
}

struct ServerProc {
    child: Child,
    addr: String,
    /// Held so the child's stdout pipe stays open for its lifetime.
    _stdout: BufReader<std::process::ChildStdout>,
}

/// Spawn `cut-server` on a free port over `dir`, optionally with a crash
/// injection env pair, and wait for the listening line.
fn spawn_server(dir: &std::path::Path, shards: usize, crash: Option<(&str, u64)>) -> ServerProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cut-server"));
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--shards",
        &shards.to_string(),
        "--data-dir",
        dir.to_str().expect("utf8 temp path"),
        "--snapshot-every",
        SNAPSHOT_EVERY,
        "--resident-cap",
        RESIDENT_CAP,
    ]);
    cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::null());
    if let Some((point, after)) = crash {
        cmd.env("CUT_STORE_CRASH_POINT", point).env("CUT_STORE_CRASH_AFTER", after.to_string());
    }
    let mut child = cmd.spawn().expect("spawn cut-server");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = stdout.read_line(&mut line).expect("read server stdout");
        assert!(n > 0, "server exited before listening (line so far: {line:?})");
        if let Some(rest) = line.trim_end().strip_prefix("cut-server listening on ") {
            break rest.split_whitespace().next().expect("addr token").to_string();
        }
    };
    ServerProc { child, addr, _stdout: stdout }
}

fn connect(addr: &str) -> Connection {
    let policy = ReconnectPolicy {
        attempts: 40,
        base_delay: Duration::from_millis(25),
        max_delay: Duration::from_millis(200),
    };
    Connection::connect_with_retry(addr, &policy).expect("reconnect to restarted server")
}

/// Drive `requests` one at a time against a durable server, crashing and
/// restarting per the plan. Returns the response log (one trace line per
/// request, in order) and the summed recovery reports of every
/// post-crash scan.
///
/// `first_leg_crash`: env-injected abort (point, after) armed only for
/// the first server process. `kills`: request indices before which the
/// running server is SIGKILLed externally.
fn run_with_crashes(
    dir: &std::path::Path,
    requests: &[Request],
    shards: usize,
    first_leg_crash: Option<(&str, u64)>,
    kills: &[usize],
) -> (Vec<String>, RecoveryReport, u32) {
    let mut responses = Vec::with_capacity(requests.len());
    let mut acked: HashMap<String, u64> = HashMap::new();
    let mut totals = RecoveryReport::default();
    let mut crashes = 0u32;

    let mut server = spawn_server(dir, shards, first_leg_crash);
    let mut conn = connect(&server.addr);
    let mut i = 0;
    while i < requests.len() {
        if kills.contains(&i) {
            server.child.kill().expect("SIGKILL server");
            server.child.wait().expect("reap killed server");
            crashes += 1;
            accumulate(&mut totals, &scan(dir));
            server = spawn_server(dir, shards, None);
            conn = connect(&server.addr);
        }
        let request = &requests[i];
        let name = graph_name(request);
        match conn.execute(request) {
            Ok(response) => {
                responses.push(response.to_trace_line());
                *acked.entry(name.to_string()).or_insert(0) += 1;
                i += 1;
            }
            Err(ClientError::Io(_) | ClientError::ConnectionClosed) => {
                // The injected abort fired with this request in flight.
                server.child.wait().expect("reap aborted server");
                crashes += 1;
                accumulate(&mut totals, &scan(dir));
                let store = Store::open(dir, StoreOptions::default()).expect("reopen store");
                let durable = store.durable_count(name);
                let acked_n = acked.get(name).copied().unwrap_or(0);
                if durable == acked_n + 1 {
                    // Applied and logged; only the ack was lost. The WAL
                    // keeps the full request/response pair for exactly
                    // this hand-off.
                    let (_, request_line, response_line) =
                        store.last_record(name).expect("durable record exists");
                    assert_eq!(
                        request_line,
                        request.to_trace_line(),
                        "last durable record must be the in-flight request"
                    );
                    responses.push(response_line);
                    acked.insert(name.to_string(), durable);
                    i += 1;
                } else {
                    assert_eq!(
                        durable, acked_n,
                        "durable count may only ever be the acked count or one ahead"
                    );
                    // Not applied: leave `i` alone and re-send.
                }
                drop(store);
                server = spawn_server(dir, shards, None);
                conn = connect(&server.addr);
            }
            Err(other) => panic!("unexpected client error at request {i}: {other}"),
        }
    }

    // Graceful end so per-graph state is quiescent for final probes.
    server.child.kill().expect("final kill");
    server.child.wait().expect("final reap");
    (responses, totals, crashes)
}

/// Sum the *repair events* of successive recovery scans; the state
/// counts (graphs, WAL records) keep the latest scan's values.
fn accumulate(totals: &mut RecoveryReport, scan: &RecoveryReport) {
    totals.torn_tails += scan.torn_tails;
    totals.tombstones_gcd += scan.tombstones_gcd;
    totals.orphan_tmps += scan.orphan_tmps;
    totals.graphs = scan.graphs;
    totals.wal_records = scan.wal_records;
}

/// One post-crash scan: `Store::open` IS the recovery path (torn-tail
/// truncation, tombstone GC, orphan tmp removal), run here in-process so
/// the test can inspect the report. It is idempotent, so the restarted
/// server's own open sees an already-clean directory.
fn scan(dir: &std::path::Path) -> RecoveryReport {
    Store::open(dir, StoreOptions::default()).expect("recovery scan").recovery_report()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cut_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Post-recovery state check: adopt everything durable into a fresh
/// engine and compare listings and exact cuts against the uninterrupted
/// reference engine.
fn assert_final_state_matches(dir: &std::path::Path, requests: &[Request]) {
    let mut plain = Engine::new();
    for request in requests {
        plain.execute(request.clone());
    }
    let store = std::sync::Arc::new(Store::open(dir, StoreOptions::default()).expect("reopen"));
    let mut revived = Engine::new();
    revived.attach_store(store.clone() as std::sync::Arc<dyn cut_engine::GraphStore>);
    for name in store.names() {
        revived.adopt_stored(&name);
    }
    assert_eq!(revived.execute(Request::ListGraphs), plain.execute(Request::ListGraphs));
    let Response::Graphs { names } = plain.execute(Request::ListGraphs) else {
        panic!("list must answer");
    };
    for name in names {
        let probe = Request::Query { name, query: Query::ExactMinCut };
        assert_eq!(revived.execute(probe.clone()), plain.execute(probe));
    }
}

#[test]
fn external_sigkills_recover_byte_identically() {
    let requests = workload_requests();
    let reference = reference_log(&requests);
    let dir = temp_dir("sigkill");
    // Three kill points spread across the run, derived from the workload
    // seed so reruns are reproducible.
    let kills = [41, 118, 209];
    let (log, _, crashes) = run_with_crashes(&dir, &requests, 1, None, &kills);
    assert_eq!(crashes, 3);
    assert_eq!(log, reference, "SIGKILL + restart must not change a single response");
    assert_final_state_matches(&dir, &requests);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_append_crash_truncates_the_torn_tail_and_resumes() {
    let requests = workload_requests();
    let reference = reference_log(&requests);
    let dir = temp_dir("append");
    let (log, totals, crashes) = run_with_crashes(&dir, &requests, 1, Some(("append", 37)), &[]);
    assert_eq!(crashes, 1, "the armed append crash must fire");
    assert!(
        totals.torn_tails >= 1,
        "a half-written WAL record must be detected and truncated (report: {totals:?})"
    );
    assert_eq!(log, reference, "recovery from a torn WAL tail must not change any response");
    assert_final_state_matches(&dir, &requests);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_snapshot_crash_leaves_an_orphan_tmp_and_resumes() {
    let requests = workload_requests();
    let reference = reference_log(&requests);
    let dir = temp_dir("snapshot");
    let (log, totals, crashes) = run_with_crashes(&dir, &requests, 1, Some(("snapshot", 4)), &[]);
    assert_eq!(crashes, 1, "the armed snapshot crash must fire");
    assert!(
        totals.orphan_tmps >= 1,
        "a half-written snapshot must be swept as an orphan tmp (report: {totals:?})"
    );
    assert_eq!(log, reference, "a crash mid-snapshot must not change any response");
    assert_final_state_matches(&dir, &requests);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_spill_crash_leaves_an_orphan_tmp_and_resumes() {
    let requests = workload_requests();
    let reference = reference_log(&requests);
    let dir = temp_dir("spill");
    let (log, totals, crashes) = run_with_crashes(&dir, &requests, 1, Some(("spill", 3)), &[]);
    assert_eq!(crashes, 1, "the armed spill crash must fire");
    assert!(
        totals.orphan_tmps >= 1,
        "a half-written spill must be swept as an orphan tmp (report: {totals:?})"
    );
    assert_eq!(log, reference, "a crash mid-spill must not change any response");
    assert_final_state_matches(&dir, &requests);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_server_reports_repairs_through_stats_metrics() {
    // Run the workload durably, kill the server, then tear a WAL tail by
    // hand (trailing garbage that decodes as no record). The restarted
    // server's own recovery scan must repair it — and `stats metrics`
    // over the live connection must surface the repair in the `store_`
    // counter families the introspection surface exports.
    let requests = workload_requests();
    let dir = temp_dir("metrics");
    let (_, _, crashes) = run_with_crashes(&dir, &requests, 2, None, &[]);
    assert_eq!(crashes, 0, "this scenario crashes only after the run");
    let wal = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "wal"))
        .expect("a durable run leaves WAL files");
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).expect("open WAL");
    std::io::Write::write_all(&mut f, b"deadbeef torn tail").expect("tear the tail");
    drop(f);

    let server = spawn_server(&dir, 2, None);
    let mut conn = connect(&server.addr);
    let response = conn.execute(&Request::Metrics).expect("metrics over the wire");
    let Response::Metrics { snapshot } = response else {
        panic!("stats metrics must answer with a metrics snapshot, got {response}");
    };
    let registry = cut_engine::Registry::from_wire(&snapshot).expect("well-formed metrics wire");
    assert_eq!(
        registry.counter("store_recovery_torn_tails"),
        1,
        "the recovered server must report the torn tail it truncated"
    );
    assert!(
        registry.counter("store_recovered_graphs") > 0,
        "the recovered server must report its durable graphs"
    );
    // Replaying recovered graphs is lazy; after a query the fault-in
    // shows up in the running counter families too.
    let Response::Graphs { names } = conn.execute(&Request::ListGraphs).expect("list") else {
        panic!("list must answer");
    };
    let probe = Request::Query { name: names[0].clone(), query: Query::ExactMinCut };
    conn.execute(&probe).expect("probe a recovered graph");
    let Response::Metrics { snapshot } = conn.execute(&Request::Metrics).expect("metrics again")
    else {
        panic!("metrics must answer");
    };
    let registry = cut_engine::Registry::from_wire(&snapshot).expect("well-formed metrics wire");
    assert!(
        registry.counter("store_fault_ins") >= 1,
        "touching a recovered graph must fault it in from the store"
    );
    let mut child = server.child;
    child.kill().expect("final kill");
    child.wait().expect("final reap");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_server_sigkill_recovers_byte_identically() {
    let requests = workload_requests();
    let reference = reference_log(&requests);
    let dir = temp_dir("sharded");
    let kills = [77, 160];
    let (log, _, crashes) = run_with_crashes(&dir, &requests, 2, None, &kills);
    assert_eq!(crashes, 2);
    assert_eq!(
        log, reference,
        "a 2-shard durable server killed twice must still match the serial reference"
    );
    assert_final_state_matches(&dir, &requests);
    std::fs::remove_dir_all(&dir).unwrap();
}
