//! Lifecycle tests for the `cut-server` serving layer: handshake,
//! pipelining, malformed lines, disconnects, capacity, idle timeouts, and
//! the graceful drain — all over real loopback sockets against the real
//! engine.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::Duration;

use cut_client::{ClientError, Connection, ReconnectPolicy};
use cut_engine::{
    Engine, EngineStats, GraphSpec, Mutation, Query, Request, Response, ShardOptions,
};
use cut_server::{Server, ServerConfig, ServerHandle, PROTOCOL_VERSION};

/// Start a server on a free loopback port; return its address, handle,
/// and the joinable run thread.
fn start(cfg: ServerConfig) -> (String, ServerHandle, JoinHandle<Vec<EngineStats>>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run());
    (addr, handle, run)
}

fn sharded_cfg(shards: usize) -> ServerConfig {
    ServerConfig { shards, ..ServerConfig::default() }
}

fn create_ring(name: &str) -> Request {
    Request::Create { name: name.into(), spec: GraphSpec::Cycle { n: 16 } }
}

#[test]
fn serves_the_same_responses_as_an_in_process_engine() {
    let requests = vec![
        create_ring("ring"),
        Request::Query { name: "ring".into(), query: Query::ExactMinCut },
        Request::Query { name: "ring".into(), query: Query::ExactMinCut }, // cached
        Request::Mutate { name: "ring".into(), op: Mutation::InsertEdge { u: 0, v: 8, w: 5 } },
        Request::Query { name: "ring".into(), query: Query::ExactMinCut }, // invalidated
        Request::Query { name: "ring".into(), query: Query::Connectivity },
        Request::Query { name: "missing".into(), query: Query::ExactMinCut }, // engine error
        Request::ListGraphs,
        Request::Stats,
        Request::Drop { name: "ring".into() },
    ];

    let mut reference = Engine::new();
    let expected: Vec<Response> = requests.iter().map(|r| reference.execute(r.clone())).collect();

    let (addr, handle, run) = start(sharded_cfg(4));
    let mut conn = Connection::connect(&addr).expect("connect");
    for (request, want) in requests.iter().zip(&expected) {
        let got = conn.execute(request).expect("execute over the wire");
        assert_eq!(&got, want, "remote response diverged for {request}");
    }
    drop(conn);
    handle.shutdown();
    run.join().expect("server run");
}

#[test]
fn pipelined_tickets_resolve_in_submission_order() {
    let (addr, handle, run) = start(sharded_cfg(2));
    let mut conn = Connection::connect(&addr).expect("connect");

    // Queue everything before waiting on anything.
    let mut tickets = Vec::new();
    tickets.push(conn.submit(&create_ring("a")).unwrap());
    tickets.push(conn.submit(&create_ring("b")).unwrap());
    for i in 0..20u64 {
        let name = if i % 2 == 0 { "a" } else { "b" };
        tickets.push(
            conn.submit(&Request::Query {
                name: name.into(),
                query: Query::ApproxMinCut { seed: i },
            })
            .unwrap(),
        );
    }
    let responses: Vec<Response> =
        tickets.into_iter().map(|t| t.wait().expect("pipelined response")).collect();
    assert!(matches!(responses[0], Response::Created { .. }));
    assert!(matches!(responses[1], Response::Created { .. }));
    for r in &responses[2..] {
        assert!(matches!(r, Response::CutValue { .. }), "got {r}");
    }
    drop(conn);
    handle.shutdown();
    run.join().expect("server run");
}

#[test]
fn malformed_line_gets_protocol_error_without_killing_the_session() {
    let (addr, handle, run) = start(sharded_cfg(1));
    let mut conn = Connection::connect(&addr).expect("connect");

    conn.execute(&create_ring("g")).expect("create");

    // Drive a raw malformed line through the same socket machinery by
    // submitting a request whose *name* is fine but sending garbage
    // directly is the real test — use a second raw connection for that.
    let stream = TcpStream::connect(&addr).expect("raw connect");
    let mut w = stream.try_clone().expect("clone");
    let mut r = BufReader::new(stream);
    let mut line = String::new();
    writeln!(w, "HELLO {PROTOCOL_VERSION}").unwrap();
    r.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), format!("OK {PROTOCOL_VERSION}"));

    // Malformed: unknown kind.
    writeln!(w, "warp speed now").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    let resp = Response::from_trace_line(line.trim_end()).expect("parseable error line");
    match &resp {
        Response::Error { message } => {
            assert!(message.contains("protocol"), "unexpected message: {message}")
        }
        other => panic!("expected protocol error, got {other}"),
    }

    // Truncated: known kind, missing fields.
    writeln!(w, "insert g 0 1").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(matches!(Response::from_trace_line(line.trim_end()), Ok(Response::Error { .. })));

    // The session survives: a valid request on the same socket still works.
    writeln!(w, "conn g").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::from_trace_line(line.trim_end()),
        Ok(Response::ConnectivityValue { .. })
    ));

    // And so does every other session.
    let resp = conn
        .execute(&Request::Query { name: "g".into(), query: Query::Connectivity })
        .expect("other session still served");
    assert!(matches!(resp, Response::ConnectivityValue { .. }));

    drop(conn);
    drop(w);
    handle.shutdown();
    run.join().expect("server run");
}

#[test]
fn client_disconnect_mid_pipeline_leaves_other_sessions_served() {
    let (addr, handle, run) = start(sharded_cfg(2));

    let mut survivor = Connection::connect(&addr).expect("survivor connect");
    survivor.execute(&create_ring("keep")).expect("create keep");

    {
        // The doomed session: handshake, pipeline a burst of real work,
        // then vanish without reading a single response.
        let stream = TcpStream::connect(&addr).expect("doomed connect");
        let mut w = stream.try_clone().expect("clone");
        let mut r = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        writeln!(w, "HELLO {PROTOCOL_VERSION}").unwrap();
        r.read_line(&mut line).unwrap();
        writeln!(w, "{}", create_ring("doomed").to_trace_line()).unwrap();
        for seed in 0..10u64 {
            writeln!(w, "approx doomed {seed}").unwrap();
        }
        w.flush().unwrap();
        // Abrupt close (drop both halves) with ~11 responses in flight.
    }

    // The engine and the surviving session must be unaffected.
    for seed in 0..5u64 {
        let resp = survivor
            .execute(&Request::Query { name: "keep".into(), query: Query::ApproxMinCut { seed } })
            .expect("survivor query");
        assert!(matches!(resp, Response::CutValue { .. }), "got {resp}");
    }

    drop(survivor);
    handle.shutdown();
    run.join().expect("server run");
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (addr, handle, run) = start(sharded_cfg(2));
    let mut conn = Connection::connect(&addr).expect("connect");

    conn.execute(&Request::Create {
        name: "big".into(),
        // Big enough that a pipelined burst is still in flight when the
        // drain starts.
        spec: GraphSpec::ConnectedGnm { n: 160, m: 800, w_min: 1, w_max: 9, seed: 5 },
    })
    .expect("create big");

    let mut tickets = Vec::new();
    for seed in 0..24u64 {
        tickets.push(
            conn.submit(&Request::Query {
                name: "big".into(),
                query: Query::SingletonCut { seed },
            })
            .expect("submit"),
        );
    }
    // Begin the drain with the burst outstanding.
    handle.shutdown();

    // Every in-flight request still gets its real answer.
    for (i, ticket) in tickets.into_iter().enumerate() {
        let resp = ticket.wait().unwrap_or_else(|e| panic!("ticket {i} lost in drain: {e}"));
        assert!(matches!(resp, Response::CutValue { .. }), "ticket {i} got {resp}");
    }

    drop(conn);
    let per_shard = run.join().expect("server run returns stats");
    assert_eq!(per_shard.len(), 2);
    let queries: u64 = per_shard.iter().map(|s| s.queries).sum();
    assert!(queries >= 24, "drained run should have served the burst (saw {queries})");

    // And the server refuses newcomers once draining.
    match Connection::connect(&addr) {
        Err(ClientError::Handshake(_) | ClientError::Io(_) | ClientError::ConnectionClosed) => {}
        Err(other) => panic!("unexpected refusal shape: {other}"),
        Ok(_) => panic!("draining server must refuse"),
    }
}

#[test]
fn handshake_version_mismatch_is_refused() {
    let (addr, handle, run) = start(sharded_cfg(1));
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let mut r = BufReader::new(stream);
    writeln!(w, "HELLO cut/0").unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    match Response::from_trace_line(line.trim_end()) {
        Ok(Response::Error { message }) => {
            assert!(message.contains("handshake"), "unexpected: {message}")
        }
        other => panic!("expected error line, got {other:?}"),
    }
    // Server closes after the refusal.
    line.clear();
    assert_eq!(r.read_line(&mut line).unwrap(), 0, "socket should be closed");
    handle.shutdown();
    run.join().expect("server run");
}

#[test]
fn connection_cap_refuses_the_overflow_connection() {
    let cfg = ServerConfig { max_conns: 1, ..sharded_cfg(1) };
    let (addr, handle, run) = start(cfg);

    let mut first = Connection::connect(&addr).expect("first connection fits");
    first.execute(&create_ring("g")).expect("served");

    // The second is over the cap: handshake must fail with the capacity
    // message (tolerate a raced Io/Closed if the refusal write loses).
    match Connection::connect(&addr) {
        Err(ClientError::Handshake(msg)) => {
            assert!(msg.contains("capacity"), "unexpected refusal: {msg}")
        }
        Err(ClientError::Io(_)) | Err(ClientError::ConnectionClosed) => {}
        Err(other) => panic!("unexpected error shape: {other}"),
        Ok(_) => panic!("over-cap connection must not handshake"),
    }

    // Closing the first frees the slot.
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match Connection::connect(&addr) {
            Ok(mut conn) => {
                conn.execute(&Request::ListGraphs).expect("slot freed");
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }

    handle.shutdown();
    run.join().expect("server run");
}

#[test]
fn idle_sessions_are_closed_after_the_timeout() {
    let cfg = ServerConfig { idle_timeout: Duration::from_millis(120), ..sharded_cfg(1) };
    let (addr, handle, run) = start(cfg);
    let mut conn = Connection::connect(&addr).expect("connect");
    conn.execute(&create_ring("g")).expect("served while active");

    std::thread::sleep(Duration::from_millis(400));
    // The server has closed us. The next call either fails outright
    // (dead socket / reader exited) or — if the ticket raced the idle
    // notice, which is itself a well-formed error response — surfaces
    // that notice. Real service must NOT resume.
    match conn.execute(&Request::ListGraphs) {
        Err(ClientError::Io(_) | ClientError::ConnectionClosed) => {}
        Ok(Response::Error { message }) => {
            assert!(message.contains("idle"), "unexpected notice: {message}")
        }
        Err(other) => panic!("unexpected error shape: {other}"),
        Ok(other) => panic!("idle-timed-out session must not serve (got {other})"),
    }

    handle.shutdown();
    run.join().expect("server run");
}

#[test]
fn server_log_matches_in_process_log_for_the_same_stream() {
    let log_path =
        std::env::temp_dir().join(format!("cut_server_log_test_{}.txt", std::process::id()));
    let cfg =
        ServerConfig { log_path: Some(log_path.to_string_lossy().into_owned()), ..sharded_cfg(3) };
    let (addr, handle, run) = start(cfg);

    let requests = vec![
        create_ring("r0"),
        create_ring("r1"),
        Request::Query { name: "r0".into(), query: Query::ExactMinCut },
        Request::Mutate { name: "r1".into(), op: Mutation::DeleteEdge { u: 0, v: 1 } },
        Request::Query { name: "r1".into(), query: Query::Connectivity },
        Request::Stats,
        Request::Drop { name: "r0".into() },
    ];

    let mut conn = Connection::connect(&addr).expect("connect");
    for request in &requests {
        conn.execute(request).expect("served");
    }
    drop(conn);
    handle.shutdown();
    run.join().expect("server run");

    let mut reference = Engine::new();
    let expected: String = requests
        .iter()
        .enumerate()
        .map(|(i, r)| format!("{i:06} {r} -> {}\n", reference.execute(r.clone())))
        .collect();
    let got = std::fs::read_to_string(&log_path).expect("server log written");
    assert_eq!(got, expected, "server log must be byte-identical to the in-process log");
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn reconnect_with_retry_rides_out_a_late_server_start() {
    // Reserve a port, start the server on it *after* a delay, and let the
    // client's backoff absorb the gap.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
    let addr = probe.local_addr().expect("addr").to_string();
    drop(probe);

    let addr_for_server = addr.clone();
    let server_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let server = Server::bind(&addr_for_server, sharded_cfg(1)).expect("late bind");
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run());
        (handle, run)
    });

    let policy = ReconnectPolicy {
        attempts: 20,
        base_delay: Duration::from_millis(25),
        max_delay: Duration::from_millis(100),
    };
    let mut conn = Connection::connect_with_retry(addr.as_str(), &policy)
        .expect("backoff should outlast the 150ms gap");
    conn.execute(&create_ring("late")).expect("served after retry");
    drop(conn);

    let (handle, run) = server_thread.join().expect("server starter");
    handle.shutdown();
    run.join().expect("server run");
}

/// The engine options plumb through the server construction unchanged —
/// a batched, rebalancing server still answers exactly like the plain
/// engine (spot check; the full equivalence is the CI loopback gate).
#[test]
fn adaptive_server_options_do_not_change_responses() {
    use cut_engine::PlacementOptions;
    let cfg = ServerConfig {
        shards: 4,
        opts: ShardOptions {
            batch: true,
            placement: PlacementOptions {
                rebalance: true,
                steal: true,
                window: 6,
                ..PlacementOptions::default()
            },
            ..ShardOptions::default()
        },
        ..ServerConfig::default()
    };
    let (addr, handle, run) = start(cfg);
    let mut conn = Connection::connect(&addr).expect("connect");
    let mut reference = Engine::new();
    for i in 0..40u64 {
        let request = match i % 4 {
            0 => create_ring(&format!("g{}", i / 4)),
            1 => Request::Query {
                name: format!("g{}", i / 4),
                query: Query::ApproxMinCut { seed: i },
            },
            2 => Request::Mutate {
                name: format!("g{}", i / 4),
                op: Mutation::InsertEdge { u: (i % 13) as u32, v: (i % 7 + 13) as u32, w: 2 },
            },
            _ => Request::Query { name: format!("g{}", i / 4), query: Query::Connectivity },
        };
        let want = reference.execute(request.clone());
        let got = conn.execute(&request).expect("served");
        assert_eq!(got, want, "diverged at request {i}: {request}");
    }
    drop(conn);
    handle.shutdown();
    run.join().expect("server run");
}
