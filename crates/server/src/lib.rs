//! # `cut-server` — the network serving layer over [`cut_engine`]
//!
//! Turns the in-process `Request -> Response` contract into a TCP
//! service: a [`Server`] owns one [`ShardedEngine`] and a
//! `std::net::TcpListener`, accepts up to
//! [`ServerConfig::max_conns`] concurrent connections
//! (thread-per-connection — the vendoring constraints rule out an async
//! runtime, and a bounded acceptor pool is exactly what the engine's
//! thread-backed shards want anyway), and speaks the line-delimited wire
//! protocol specified in `docs/PROTOCOL.md`:
//!
//! - the client opens with `HELLO cut/1`, the server answers `OK cut/1`
//!   (anything else — version mismatch, capacity, draining — is an
//!   `error …` line followed by close);
//! - each subsequent client line is one [`Request::to_trace_line`];
//! - each server line is one [`Response::to_trace_line`], **in
//!   per-connection submission order** — a session is a pipeline, not a
//!   lockstep RPC;
//! - a malformed request line costs exactly one `error protocol: …`
//!   response; the session (and every other session) keeps serving.
//!
//! Every connection pipelines into the *same* [`ShardedEngine`]: a
//! session's reader thread parses lines and submits them (one short
//! critical section per request, so concurrent sessions interleave at
//! request granularity and per-connection order is preserved), while its
//! writer thread resolves tickets in order and streams the response
//! lines back. All placement machinery — shards, batching, rebalancing,
//! stealing, the latency proxy — is configured at construction via
//! [`ShardOptions`] and works unchanged underneath the socket layer.
//!
//! **Graceful drain** ([`ServerHandle::shutdown`], the SIGTERM-equivalent
//! — the `cut-server` binary triggers it from a `shutdown` line on
//! stdin, since vendored-offline builds have no signal-handling crate):
//! new connections are refused with `error server draining`, open
//! sessions keep reading until their socket goes quiet for one poll
//! interval — so requests the client already flushed are still served —
//! then finish and deliver every in-flight response, and [`Server::run`]
//! returns the engine's final per-shard stats once the last session
//! closes.
//!
//! With [`ServerConfig::log_path`] set, the server also writes the same
//! `{seq:06} {request} -> {response}` operation log the stress harness
//! digests — sequence numbers are allocated in engine-submission order,
//! so a single-connection session's server log is byte-identical to an
//! in-process run of the same request stream (the CI loopback gate).

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cut_engine::{EngineStats, Registry, Request, Response, ShardOptions, ShardedEngine, Ticket};

/// The protocol version this server speaks. The handshake is strict
/// equality — see `docs/PROTOCOL.md` for how versions evolve.
pub const PROTOCOL_VERSION: &str = "cut/1";

/// How to run a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker shards of the underlying [`ShardedEngine`].
    pub shards: usize,
    /// Per-shard engine configuration plus batching/placement flags.
    pub opts: ShardOptions,
    /// Accepted-connection cap: connection `max_conns + 1` is refused
    /// with an `error server at capacity …` line, not queued.
    pub max_conns: usize,
    /// A session with no traffic for this long is closed (an `error idle
    /// timeout …` line is sent best-effort first).
    pub idle_timeout: Duration,
    /// When set, append the deterministic `{seq:06} {request} ->
    /// {response}` operation log here (the stress-digest format).
    pub log_path: Option<String>,
    /// When set, write the merged telemetry registry as `cut-metrics/1`
    /// JSON to this path — every [`ServerConfig::metrics_every`] while
    /// running (tmp + atomic rename, so readers never see a torn file)
    /// and once more at drain, when the slow-query log is also dumped to
    /// stdout. The snapshot request goes straight to the engine without a
    /// log sequence number, so the operation log stays byte-identical
    /// with or without telemetry export.
    pub metrics_out: Option<String>,
    /// Interval between periodic metrics snapshots (ignored without
    /// [`ServerConfig::metrics_out`]).
    pub metrics_every: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            opts: ShardOptions::default(),
            max_conns: 64,
            idle_timeout: Duration::from_secs(30),
            log_path: None,
            metrics_out: None,
            metrics_every: Duration::from_secs(5),
        }
    }
}

/// The engine plus the request sequence counter it orders. One mutex for
/// both, so "allocate seq" and "submit" are a single atomic step — that
/// is what makes the server log's sequence numbers equal the engine's
/// true submission order.
struct EngineSlot {
    /// `None` once drained: late requests get `error server draining`.
    engine: Option<ShardedEngine>,
    next_seq: u64,
}

/// State shared by the acceptor and every session thread.
struct Shared {
    engine: Mutex<EngineSlot>,
    /// Live sessions' streams — the capacity count, and a place to hang
    /// future per-connection introspection.
    conns: Mutex<HashMap<u64, TcpStream>>,
    draining: AtomicBool,
    idle_timeout: Duration,
    max_conns: usize,
    /// The `{seq:06} {request} -> {response}` operation log, if enabled.
    log: Option<Mutex<BufWriter<File>>>,
    /// Responses delivered over all sessions (reported at shutdown).
    served: AtomicU64,
    /// Periodic `cut-metrics/1` JSON export target, if enabled.
    metrics_out: Option<String>,
    metrics_every: Duration,
}

impl Shared {
    /// Append one operation-log line. Flushing is deferred to the
    /// session's quiet moments (`flush_log`).
    fn log_line(&self, seq: u64, display: &str, response: &Response) {
        if let Some(log) = &self.log {
            let mut w = log.lock().expect("log lock");
            let _ = writeln!(w, "{seq:06} {display} -> {response}");
        }
    }

    fn flush_log(&self) {
        if let Some(log) = &self.log {
            let _ = log.lock().expect("log lock").flush();
        }
    }

    /// One introspection request through the engine, bypassing the
    /// operation-log sequence counter: the broadcast barrier semantics
    /// are the same as any session's, but no `{seq}` line is consumed,
    /// so the server log digest is byte-identical with telemetry export
    /// on or off.
    fn introspect(&self, request: Request) -> Option<Response> {
        let ticket = {
            let mut slot = self.engine.lock().expect("engine lock");
            slot.engine.as_mut().map(|engine| engine.submit(request))
        }?;
        Some(ticket.wait())
    }

    /// Fetch the merged telemetry registry and write it as
    /// `cut-metrics/1` JSON (tmp + atomic rename) to `metrics_out`.
    fn write_metrics_snapshot(&self) {
        let Some(path) = &self.metrics_out else { return };
        let Some(Response::Metrics { snapshot }) = self.introspect(Request::Metrics) else {
            return;
        };
        let Ok(mut registry) = Registry::from_wire(&snapshot) else { return };
        // Serving-layer families ride along with the engine's.
        registry.inc("server_responses_served", self.served.load(Ordering::Relaxed));
        registry.set_gauge(
            "server_open_connections",
            self.conns.lock().expect("conns lock").len() as u64,
        );
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, registry.render_json()).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] consumes it and
/// blocks until a [`ServerHandle::shutdown`] drain completes.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Remote control for a running [`Server`] — cloneable, thread-safe, and
/// the hook tests and the binary's stdin watcher use to trigger the
/// graceful drain.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin the graceful drain (idempotent): refuse new connections,
    /// let open sessions consume what their clients already sent (they
    /// exit at the first quiet poll interval), let every in-flight
    /// request finish and deliver its response, then let [`Server::run`]
    /// return. Session readers poll with a short timeout, so no nudge is
    /// needed — a blocked reader notices the drain within ~100ms.
    pub fn shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor, which is parked in accept().
        let _ = TcpStream::connect(self.addr);
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Bind the listener and spin up the engine. Port 0 picks a free
    /// port — read it back with [`Server::local_addr`] (the tests' and
    /// loopback CI's pattern).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        assert!(cfg.shards > 0, "a server needs at least one engine shard");
        assert!(cfg.max_conns > 0, "a server that accepts zero connections serves nobody");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let log = match &cfg.log_path {
            Some(path) => Some(Mutex::new(BufWriter::new(File::create(path)?))),
            None => None,
        };
        let shared = Arc::new(Shared {
            engine: Mutex::new(EngineSlot {
                engine: Some(ShardedEngine::with_options(cfg.shards, cfg.opts)),
                next_seq: 0,
            }),
            conns: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            idle_timeout: cfg.idle_timeout,
            max_conns: cfg.max_conns,
            log,
            served: AtomicU64::new(0),
            metrics_out: cfg.metrics_out,
            metrics_every: cfg.metrics_every,
        });
        Ok(Server { listener, addr, shared })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for triggering shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.addr, shared: Arc::clone(&self.shared) }
    }

    /// Accept and serve until [`ServerHandle::shutdown`] drains the
    /// server. Returns the engine's final per-shard stats (the same
    /// counters `ShardedEngine::shutdown` reports in process).
    pub fn run(self) -> Vec<EngineStats> {
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn = 0u64;
        // Periodic telemetry export: snapshots every `metrics_every`
        // until the drain flag rises. Sleeps in short ticks so a drain
        // is noticed promptly.
        let exporter = self.shared.metrics_out.as_ref().map(|_| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let mut since = Duration::ZERO;
                while !shared.draining.load(Ordering::SeqCst) {
                    std::thread::sleep(POLL_INTERVAL);
                    since += POLL_INTERVAL;
                    if since >= shared.metrics_every {
                        since = Duration::ZERO;
                        shared.write_metrics_snapshot();
                    }
                }
            })
        });
        for stream in self.listener.incoming() {
            let draining = self.shared.draining.load(Ordering::SeqCst);
            let Ok(stream) = stream else { continue };
            if draining {
                refuse(stream, "server draining");
                break;
            }
            // Reap finished sessions so the handle list stays bounded.
            sessions.retain(|s| !s.is_finished());
            let conn_id = next_conn;
            next_conn += 1;
            {
                let mut conns = self.shared.conns.lock().expect("conns lock");
                if conns.len() >= self.shared.max_conns {
                    drop(conns);
                    refuse(
                        stream,
                        &format!("server at capacity ({} connections)", self.shared.max_conns),
                    );
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    conns.insert(conn_id, clone);
                } else {
                    continue;
                }
            }
            let shared = Arc::clone(&self.shared);
            sessions.push(std::thread::spawn(move || {
                serve_session(stream, &shared);
                shared.conns.lock().expect("conns lock").remove(&conn_id);
            }));
        }
        // Drain: every session finishes its in-flight work and exits.
        for session in sessions {
            let _ = session.join();
        }
        if let Some(exporter) = exporter {
            let _ = exporter.join();
        }
        self.shared.flush_log();
        if self.shared.metrics_out.is_some() {
            // Final snapshot covers every served request, then the
            // slow-query log dumps to stdout — the drain-time flight
            // recorder.
            self.shared.write_metrics_snapshot();
            if let Some(Response::Slowlog { snapshot }) = self.shared.introspect(Request::Slowlog) {
                if let Ok(log) = cut_engine::SlowLog::from_wire(&snapshot) {
                    if !log.is_empty() {
                        println!("cut-server: slow-query log ({} spans):", log.entries().len());
                        print!("{}", log.render_text());
                    }
                }
            }
        }
        let engine = self.shared.engine.lock().expect("engine lock").engine.take();
        engine.map(ShardedEngine::shutdown).unwrap_or_default()
    }

    /// Total responses delivered so far (all sessions).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }
}

/// Close an unwanted connection with one explanatory `error` line, so the
/// client's handshake fails typed instead of mysteriously.
fn refuse(stream: TcpStream, why: &str) {
    let mut w = BufWriter::new(stream);
    let _ = writeln!(w, "{}", Response::Error { message: why.to_string() }.to_trace_line());
    let _ = w.flush();
}

/// How long a session reader blocks per read attempt. Short enough that
/// a parked session notices a drain promptly; the configured idle
/// timeout is accumulated across consecutive quiet polls.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// What one polled line-read attempt produced.
enum ReadOutcome {
    /// A line is in the buffer (possibly unterminated, at EOF).
    Line,
    /// Clean end of stream.
    Eof,
    /// No traffic for the full idle timeout.
    Idle,
    /// The server is draining and the socket went quiet for one poll
    /// interval — everything the client flushed has been consumed.
    Drained,
    /// Hard socket error (reset etc.).
    Failed,
}

/// Read one line with the socket's short poll timeout, accumulating
/// quiet polls toward the idle timeout and watching the drain flag.
/// Partial lines survive across poll timeouts: `read_line` appends what
/// arrived, and the next attempt continues the same `line`.
fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    poll: Duration,
    shared: &Shared,
) -> ReadOutcome {
    let mut idle = Duration::ZERO;
    loop {
        let before = line.len();
        match reader.read_line(line) {
            // At EOF, a previously-buffered partial line is still a line.
            Ok(0) => {
                return if line.trim_end_matches(['\r', '\n']).is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Line
                };
            }
            Ok(_) => return ReadOutcome::Line,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return ReadOutcome::Drained;
                }
                // A partial read is progress, not idleness.
                if line.len() > before {
                    idle = Duration::ZERO;
                } else {
                    idle += poll;
                    if idle >= shared.idle_timeout {
                        return ReadOutcome::Idle;
                    }
                }
            }
            Err(_) => return ReadOutcome::Failed,
        }
    }
}

/// What a session's reader hands its writer.
enum Item {
    /// A raw protocol line (greeting, idle notice) — sent verbatim.
    Raw(String),
    /// An engine-free response (protocol errors, draining refusals).
    Ready(Response),
    /// A submitted request: resolve the ticket, log, respond.
    Pending { seq: u64, display: String, ticket: Ticket },
    /// A submitted introspection (`stats metrics` / `stats slowlog`):
    /// resolve the ticket and respond in pipeline position, but allocate
    /// no sequence number and write no log line — telemetry rides
    /// outside the op-log stream, so issuing it never perturbs a digest.
    Introspection { ticket: Ticket },
}

/// One session: this thread reads, parses, and submits; a paired writer
/// thread resolves tickets in order and streams responses back. The split
/// is what makes a session a *pipeline* — the reader can be many requests
/// ahead of the slowest response.
fn serve_session(stream: TcpStream, shared: &Arc<Shared>) {
    stream.set_nodelay(true).ok();
    // Short socket timeout = the reader's poll tick; idle and drain
    // detection are layered on top in `read_line_polled`.
    let poll = POLL_INTERVAL.min(shared.idle_timeout);
    stream.set_read_timeout(Some(poll)).ok();
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);

    let (tx, rx) = channel::<Item>();
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || writer_loop(stream, rx, &shared))
    };

    // Handshake: exactly one HELLO line, answered before anything else.
    let mut line = String::new();
    let outcome = read_line_polled(&mut reader, &mut line, poll, shared);
    let hello_ok = matches!(outcome, ReadOutcome::Line)
        && line.trim_end_matches(['\r', '\n']) == format!("HELLO {PROTOCOL_VERSION}");
    if !hello_ok {
        let message = match outcome {
            ReadOutcome::Drained => "server draining".to_string(),
            ReadOutcome::Idle => format!("idle timeout ({:?})", shared.idle_timeout),
            _ => format!(
                "unsupported handshake (want 'HELLO {PROTOCOL_VERSION}'): {}",
                line.trim_end_matches(['\r', '\n'])
            ),
        };
        let _ = tx.send(Item::Ready(Response::Error { message }));
        drop(tx);
        let _ = writer.join();
        return;
    }
    let _ = tx.send(Item::Raw(format!("OK {PROTOCOL_VERSION}")));

    loop {
        line.clear();
        match read_line_polled(&mut reader, &mut line, poll, shared) {
            ReadOutcome::Line => {}
            // Draining and the socket went quiet: everything the client
            // flushed before the drain has been submitted. Stop reading;
            // the writer still delivers every in-flight response.
            ReadOutcome::Drained => break,
            ReadOutcome::Idle => {
                // Idle timeout: tell the client why, best-effort, and close.
                let _ = tx.send(Item::Ready(Response::Error {
                    message: format!("idle timeout ({:?})", shared.idle_timeout),
                }));
                break;
            }
            ReadOutcome::Eof | ReadOutcome::Failed => break,
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue; // blank keep-alive lines are tolerated
        }
        let request = match Request::from_trace_line(trimmed) {
            Ok(request) => request,
            Err(e) => {
                // One malformed line costs one error response; the
                // session — and its pipeline position — survives.
                let _ = tx.send(Item::Ready(Response::Error { message: format!("protocol: {e}") }));
                continue;
            }
        };
        // The log line wants the compact Display form, not the wire form.
        let display = format!("{request}");
        let introspection = matches!(request, Request::Metrics | Request::Slowlog);
        let submitted = {
            let mut slot = shared.engine.lock().expect("engine lock");
            let slot = &mut *slot;
            match slot.engine.as_mut() {
                Some(engine) => {
                    // Introspections keep their pipeline position but
                    // consume no sequence number (see Item::Introspection).
                    let seq = if introspection {
                        0
                    } else {
                        slot.next_seq += 1;
                        slot.next_seq - 1
                    };
                    Some((seq, engine.submit(request)))
                }
                None => None,
            }
        };
        let item = match submitted {
            Some((_, ticket)) if introspection => Item::Introspection { ticket },
            Some((seq, ticket)) => Item::Pending { seq, display, ticket },
            None => Item::Ready(Response::Error { message: "server draining".into() }),
        };
        if tx.send(item).is_err() {
            break; // writer died (socket gone); nothing left to serve
        }
    }

    drop(tx);
    let _ = writer.join();
}

/// The session's write half: resolve items in order, stream response
/// lines, and batch flushes to the pipeline's quiet moments. Socket write
/// failures do not abort the loop — tickets already submitted must still
/// be resolved so the server log records every served request.
fn writer_loop(stream: TcpStream, rx: Receiver<Item>, shared: &Arc<Shared>) {
    let mut w = BufWriter::new(stream);
    let mut client_gone = false;
    while let Ok(first) = rx.recv() {
        let mut next = Some(first);
        while let Some(item) = next {
            let line = match item {
                Item::Raw(line) => line,
                Item::Ready(response) => response.to_trace_line(),
                Item::Pending { seq, display, ticket } => {
                    let response = ticket.wait();
                    shared.log_line(seq, &display, &response);
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    response.to_trace_line()
                }
                Item::Introspection { ticket } => ticket.wait().to_trace_line(),
            };
            if !client_gone {
                let write = w.write_all(line.as_bytes()).and_then(|_| w.write_all(b"\n"));
                if write.is_err() {
                    client_gone = true;
                }
            }
            next = rx.try_recv().ok();
        }
        // Queue momentarily empty: push what we have to the client (and
        // the log file, so an external `cmp` right after a client run
        // never races buffered lines).
        if !client_gone && w.flush().is_err() {
            client_gone = true;
        }
        shared.flush_log();
    }
    if !client_gone {
        let _ = w.flush();
    }
    let _ = w.get_ref().shutdown(Shutdown::Both);
    shared.flush_log();
}
