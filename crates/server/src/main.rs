//! The `cut-server` binary: serve a [`ShardedEngine`] over TCP.
//!
//! ```text
//! cargo run --release -p cut_server --bin cut-server -- \
//!     --addr 127.0.0.1:7641 --shards 4 --rebalance --steal
//! ```
//!
//! All engine-side flags of the stress harness are exposed here, because
//! under a network split they are *server* properties: `--shards N`,
//! `--batch`, `--rebalance`, `--rebalance-window N`, `--steal`,
//! `--latency-proxy`, `--cache-entries N`. Serving-layer flags:
//! `--addr HOST:PORT`, `--max-conns N`, `--idle-timeout-ms N`, and
//! `--log PATH` (the deterministic operation log, byte-comparable to an
//! in-process `stress --dump-log` run — the CI loopback gate).
//!
//! Durability (`docs/DURABILITY.md`): `--data-dir PATH` attaches a
//! `cut_store::Store` — every applied request is write-ahead logged, and
//! on startup the directory is scanned and every durable graph adopted
//! (faulted in lazily on first touch), so a killed server restarted on
//! the same directory resumes exactly where the log ends. With it:
//! `--snapshot-every N` (WAL records between snapshot compactions),
//! `--resident-cap N` (spill the coldest graphs beyond N to disk), and
//! `--fsync` (fsync appends/snapshots — a power-loss knob; plain crash
//! durability needs only the default flush).
//!
//! Shutdown: send the line `shutdown` on stdin (the SIGTERM-equivalent
//! available without a signal-handling dependency); the server refuses
//! new connections, finishes and delivers all in-flight responses, then
//! prints final per-shard stats and exits. Killing the process instead
//! also works — clients see the socket close — it just skips the stats.

use std::io::BufRead;
use std::sync::Arc;
use std::time::Duration;

use cut_engine::{EngineConfig, PlacementOptions, ShardOptions};
use cut_server::{Server, ServerConfig};
use cut_store::{Store, StoreOptions};

struct Args {
    addr: String,
    shards: usize,
    batch: bool,
    rebalance: bool,
    rebalance_window: usize,
    steal: bool,
    latency_proxy: bool,
    cache_entries: usize,
    max_conns: usize,
    idle_timeout_ms: u64,
    log: Option<String>,
    data_dir: Option<String>,
    snapshot_every: Option<u64>,
    resident_cap: usize,
    fsync: bool,
    metrics_out: Option<String>,
    metrics_every_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ServerConfig::default();
    let mut args = Args {
        addr: "127.0.0.1:7641".to_string(),
        shards: 1,
        batch: false,
        rebalance: false,
        rebalance_window: PlacementOptions::default().window,
        steal: false,
        latency_proxy: false,
        cache_entries: EngineConfig::default().max_cache_entries,
        max_conns: defaults.max_conns,
        idle_timeout_ms: defaults.idle_timeout.as_millis() as u64,
        log: None,
        data_dir: None,
        snapshot_every: None,
        resident_cap: 0,
        fsync: false,
        metrics_out: None,
        metrics_every_ms: defaults.metrics_every.as_millis() as u64,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--addr" => args.addr = value(&mut i)?,
            "--shards" => {
                args.shards = value(&mut i)?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--batch" => args.batch = true,
            "--rebalance" => args.rebalance = true,
            "--rebalance-window" => {
                args.rebalance_window =
                    value(&mut i)?.parse().map_err(|e| format!("--rebalance-window: {e}"))?
            }
            "--steal" => args.steal = true,
            "--latency-proxy" => args.latency_proxy = true,
            "--cache-entries" => {
                args.cache_entries =
                    value(&mut i)?.parse().map_err(|e| format!("--cache-entries: {e}"))?
            }
            "--max-conns" => {
                args.max_conns = value(&mut i)?.parse().map_err(|e| format!("--max-conns: {e}"))?
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms =
                    value(&mut i)?.parse().map_err(|e| format!("--idle-timeout-ms: {e}"))?
            }
            "--log" => args.log = Some(value(&mut i)?),
            "--data-dir" => args.data_dir = Some(value(&mut i)?),
            "--snapshot-every" => {
                args.snapshot_every =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--snapshot-every: {e}"))?)
            }
            "--resident-cap" => {
                args.resident_cap =
                    value(&mut i)?.parse().map_err(|e| format!("--resident-cap: {e}"))?
            }
            "--fsync" => args.fsync = true,
            "--metrics-out" => args.metrics_out = Some(value(&mut i)?),
            "--metrics-every" => {
                args.metrics_every_ms =
                    value(&mut i)?.parse().map_err(|e| format!("--metrics-every: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "cut-server --addr HOST:PORT [--shards N] [--batch] [--rebalance] \
                     [--rebalance-window N] [--steal] [--latency-proxy] [--cache-entries N] \
                     [--max-conns N] [--idle-timeout-ms N] [--log PATH] [--data-dir PATH] \
                     [--snapshot-every N] [--resident-cap N] [--fsync] \
                     [--metrics-out PATH] [--metrics-every MS]\n\
                     send 'shutdown' on stdin for a graceful drain"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.shards == 0 || args.shards > 1024 {
        return Err(format!("--shards must be in 1..=1024 (got {})", args.shards));
    }
    if args.max_conns == 0 || args.max_conns > 4096 {
        return Err(format!("--max-conns must be in 1..=4096 (got {})", args.max_conns));
    }
    if args.idle_timeout_ms == 0 {
        return Err("--idle-timeout-ms must be at least 1".into());
    }
    if args.cache_entries == 0 {
        return Err("--cache-entries must be at least 1".into());
    }
    if args.rebalance_window == 0 {
        return Err("--rebalance-window must be at least 1".into());
    }
    if args.metrics_every_ms == 0 {
        return Err("--metrics-every must be at least 1 (milliseconds)".into());
    }
    if args.metrics_out.is_none()
        && args.metrics_every_ms != defaults.metrics_every.as_millis() as u64
    {
        return Err("--metrics-every needs --metrics-out".into());
    }
    if args.data_dir.is_none() {
        if args.resident_cap != 0 {
            return Err("--resident-cap needs --data-dir (spilled graphs live there)".into());
        }
        if args.snapshot_every.is_some() {
            return Err("--snapshot-every needs --data-dir".into());
        }
        if args.fsync {
            return Err("--fsync needs --data-dir".into());
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let store = args.data_dir.as_ref().map(|dir| {
        let opts = StoreOptions {
            snapshot_every: args.snapshot_every.unwrap_or(StoreOptions::default().snapshot_every),
            fsync: args.fsync,
        };
        let store = match Store::open(dir, opts) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: opening data dir {dir}: {e}");
                std::process::exit(1);
            }
        };
        let r = store.recovery_report();
        println!(
            "cut-server: recovered {} graphs from {dir} ({} WAL records, {} torn tails \
             truncated, {} tombstones collected, {} orphan tmps removed)",
            r.graphs, r.wal_records, r.torn_tails, r.tombstones_gcd, r.orphan_tmps
        );
        Arc::new(store)
    });
    let cfg = ServerConfig {
        shards: args.shards,
        opts: ShardOptions {
            cfg: EngineConfig {
                max_cache_entries: args.cache_entries,
                resident_cap: args.resident_cap,
                ..EngineConfig::default()
            },
            batch: args.batch,
            placement: PlacementOptions {
                rebalance: args.rebalance,
                window: args.rebalance_window,
                steal: args.steal,
                latency_proxy: args.latency_proxy,
                ..PlacementOptions::default()
            },
            store: store.map(|s| s as Arc<dyn cut_engine::GraphStore>),
            ..ShardOptions::default()
        },
        max_conns: args.max_conns,
        idle_timeout: Duration::from_millis(args.idle_timeout_ms),
        log_path: args.log.clone(),
        metrics_out: args.metrics_out.clone(),
        metrics_every: Duration::from_millis(args.metrics_every_ms),
    };

    let server = match Server::bind(&args.addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "cut-server listening on {} (shards={} batch={} rebalance={} steal={} latency-proxy={} \
         max-conns={} idle-timeout={}ms{})",
        server.local_addr(),
        args.shards,
        args.batch,
        args.rebalance,
        args.steal,
        args.latency_proxy,
        args.max_conns,
        args.idle_timeout_ms,
        args.log.as_deref().map(|p| format!(" log={p}")).unwrap_or_default(),
    );
    if let Some(path) = &args.metrics_out {
        println!(
            "cut-server: exporting cut-metrics/1 JSON to {path} every {}ms",
            args.metrics_every_ms
        );
    }

    // The SIGTERM-equivalent: a `shutdown` line on stdin triggers the
    // graceful drain. EOF on stdin (e.g. a backgrounded shell job) is
    // deliberately ignored — only the explicit word drains the server.
    let handle = server.handle();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim() == "shutdown" {
                println!("cut-server: shutdown requested, draining");
                handle.shutdown();
                return;
            }
        }
        // EOF: park rather than drain — killing the process is the other
        // supported stop, and it should stay an explicit choice.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    });

    let per_shard = server.run();
    let mut queries = 0u64;
    let mut mutations = 0u64;
    println!("cut-server: drained; per-shard totals:");
    for (shard, stats) in per_shard.iter().enumerate() {
        queries += stats.queries;
        mutations += stats.mutations;
        println!(
            "  shard {shard}: {} queries, {} mutations, hit rate {:.1}%",
            stats.queries,
            stats.mutations,
            stats.hit_rate() * 100.0
        );
    }
    println!("cut-server: {queries} queries + {mutations} mutations served; bye");
}
