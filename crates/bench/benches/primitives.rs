//! E8 wall-clock companion: substrate primitives.

use ampc_model::{AmpcConfig, Executor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::gen;
use rand::Rng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(10);
    let n = 4096usize;
    let mut rng = rng_for("bench-e8", 0);

    let next: Vec<u32> = (0..n as u32).map(|i| (i + 1).min(n as u32 - 1)).collect();
    let ones = vec![1u64; n];
    group.bench_function(BenchmarkId::new("chain_aggregate", n), |b| {
        b.iter(|| {
            let mut exec = Executor::new(AmpcConfig::new(n, 0.5));
            ampc_primitives::chain_aggregate(&mut exec, &next, &ones, "bench")
        })
    });

    let t = gen::random_tree(n, &mut rng);
    let tedges: Vec<(u32, u32)> = t.edges().iter().map(|e| (e.u, e.v)).collect();
    group.bench_function(BenchmarkId::new("root_forest", n), |b| {
        b.iter(|| {
            let mut exec = Executor::new(AmpcConfig::new(n, 0.5));
            ampc_primitives::root_forest(&mut exec, n, &tedges)
        })
    });

    let keys: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    group.bench_function(BenchmarkId::new("sample_sort", n), |b| {
        b.iter(|| {
            let mut exec = Executor::new(AmpcConfig::new(n, 0.5));
            ampc_primitives::sample_sort(&mut exec, &keys)
        })
    });

    let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-5..5)).collect();
    group.bench_function(BenchmarkId::new("min_prefix_sum", n), |b| {
        b.iter(|| {
            let mut exec = Executor::new(AmpcConfig::new(n, 0.5));
            ampc_primitives::min_prefix_sum(&mut exec, &vals)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
