//! E4 wall-clock companion: sequential vs in-model decomposition.

use ampc_model::{AmpcConfig, Executor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::gen;
use cut_tree::{low_depth_decomposition, Hld, RootedForest};
use mincut_core::model::ampc_low_depth_decomposition;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("low_depth_decomp");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let mut rng = rng_for("bench-e4", n as u64);
        let g = gen::random_tree(n, &mut rng);
        let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &edges, |b, edges| {
            b.iter(|| {
                let f = RootedForest::from_edges(n, edges);
                let h = Hld::new(&f);
                low_depth_decomposition(&f, &h)
            })
        });
        group.bench_with_input(BenchmarkId::new("in_model", n), &edges, |b, edges| {
            b.iter(|| {
                let mut exec = Executor::new(AmpcConfig::new(n, 0.5));
                ampc_low_depth_decomposition(&mut exec, n, edges)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
