//! E1 wall-clock companion: in-model AMPC-MinCut, AMPC vs MPC mode.

use ampc_model::AmpcConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::gen;
use mincut_core::mincut::MinCutOptions;
use mincut_core::model::ampc_min_cut;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mincut_rounds");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let mut rng = rng_for("bench-e1", n as u64);
        let g = gen::connected_gnm(n, 3 * n, 1..=8, &mut rng);
        let opts = MinCutOptions { epsilon: 0.5, base_size: 32, repetitions: 1, seed: 7 };
        group.bench_with_input(BenchmarkId::new("ampc", n), &g, |b, g| {
            b.iter(|| ampc_min_cut(g, &opts, &AmpcConfig::new(g.n(), 0.5)))
        });
        group.bench_with_input(BenchmarkId::new("mpc", n), &g, |b, g| {
            b.iter(|| ampc_min_cut(g, &opts, &AmpcConfig::new(g.n(), 0.5).mpc()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
