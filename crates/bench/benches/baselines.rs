//! E9 wall-clock companion: Karger / Karger–Stein vs the paper's engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::gen;
use mincut_core::baselines::{karger, karger_stein};
use mincut_core::mincut::{approx_min_cut, MinCutOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let n = 256usize;
    let mut rng = rng_for("bench-e9", 0);
    let g = gen::connected_gnm(n, 3 * n, 1..=8, &mut rng);

    group.bench_function(BenchmarkId::new("karger_x20", n), |b| b.iter(|| karger(&g, 20, 5)));
    group.bench_function(BenchmarkId::new("karger_stein", n), |b| b.iter(|| karger_stein(&g, 5)));
    let opts = MinCutOptions { epsilon: 0.5, base_size: 32, repetitions: 1, seed: 5 };
    group.bench_function(BenchmarkId::new("ampc_mincut_ref", n), |b| {
        b.iter(|| approx_min_cut(&g, &opts))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
