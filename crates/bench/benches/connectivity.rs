//! E7 wall-clock companion: connectivity on the 1-vs-2-cycle workload.

use ampc_model::{AmpcConfig, Executor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::gen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let mut rng = rng_for("bench-e7", n as u64);
        let g = gen::one_or_two_cycles(n, false, &mut rng);
        let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        group.bench_with_input(BenchmarkId::new("ampc", n), &edges, |b, edges| {
            b.iter(|| {
                let mut exec = Executor::new(AmpcConfig::new(n, 0.5));
                ampc_primitives::connectivity(&mut exec, n, edges)
            })
        });
        group.bench_with_input(BenchmarkId::new("mpc", n), &edges, |b, edges| {
            b.iter(|| {
                let mut exec = Executor::new(AmpcConfig::new(n, 0.5).mpc());
                ampc_primitives::connectivity(&mut exec, n, edges)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
