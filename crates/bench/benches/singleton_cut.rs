//! E3 wall-clock companion: the three singleton-cut engines.

use ampc_model::{AmpcConfig, Executor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::gen;
use mincut_core::contraction::contraction_oracle;
use mincut_core::model::ampc_smallest_singleton_cut;
use mincut_core::priorities::exponential_priorities;
use mincut_core::singleton::smallest_singleton_cut;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("singleton_cut");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let mut rng = rng_for("bench-e3", n as u64);
        let g = gen::connected_gnm(n, 3 * n, 1..=10, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        group.bench_with_input(BenchmarkId::new("oracle", n), &(&g, &prio), |b, (g, p)| {
            b.iter(|| contraction_oracle(g, p))
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &(&g, &prio), |b, (g, p)| {
            b.iter(|| smallest_singleton_cut(g, p))
        });
        group.bench_with_input(BenchmarkId::new("in_model", n), &(&g, &prio), |b, (g, p)| {
            b.iter(|| {
                let mut exec = Executor::new(AmpcConfig::new(g.n(), 0.5));
                ampc_smallest_singleton_cut(&mut exec, g, p)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
