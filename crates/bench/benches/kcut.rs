//! E6 wall-clock companion: APX-SPLIT across k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::gen;
use mincut_core::kcut::{apx_split, KCutOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcut");
    group.sample_size(10);
    let mut rng = rng_for("bench-e6", 0);
    let g = gen::planted_partition(6, 20, 0.5, 0.02, &mut rng);
    if !g.is_connected() {
        return;
    }
    for &k in &[2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("apx_split", k), &g, |b, g| {
            let mut opts = KCutOptions::new(k);
            opts.mincut.repetitions = 2;
            b.iter(|| apx_split(g, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
