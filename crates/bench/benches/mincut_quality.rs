//! E2 wall-clock companion: reference AMPC-MinCut vs exact Stoer–Wagner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cut_bench::rng_for;
use cut_graph::{gen, stoer_wagner};
use mincut_core::mincut::{approx_min_cut, MinCutOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mincut_quality");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let mut rng = rng_for("bench-e2", n as u64);
        let g = gen::connected_gnm(n, 3 * n, 1..=10, &mut rng);
        let opts = MinCutOptions { epsilon: 0.5, base_size: 32, repetitions: 2, seed: 1 };
        group.bench_with_input(BenchmarkId::new("ampc_mincut_ref", n), &g, |b, g| {
            b.iter(|| approx_min_cut(g, &opts))
        });
        group.bench_with_input(BenchmarkId::new("stoer_wagner", n), &g, |b, g| {
            b.iter(|| stoer_wagner(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
