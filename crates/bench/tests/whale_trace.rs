//! Replay of the pinned whale trace (`traces/whale.trace`): an
//! adversarial s-t-heavy phase mix over one large sparse graph, generated
//! by `stress --phases whale --ops 2000 --seed 7`. The trace pins three
//! things at once:
//!
//! 1. **Determinism** — the response log digests to the committed
//!    constant, so workload generation, request formatting, and every
//!    engine answer are all frozen.
//! 2. **Kernel byte-identity** — a kernelized engine replays the exact
//!    same log, byte for byte. Counters may move; responses may not.
//! 3. **Kernel effectiveness** — the reduction genuinely fires on this
//!    mix (rules applied, s-t serves) and sheds at least half the
//!    vertices (the same `vertex_ratio <= 0.5` gate CI enforces).
//!
//! If an intentional engine change moves the digest, regenerate with the
//! command above and update `WHALE_DIGEST` in the same commit.

use cut_engine::{Engine, EngineConfig, Response, Workload};

const WHALE_TRACE: &str = include_str!("../traces/whale.trace");

/// The digest `stress --trace-in traces/whale.trace` prints, at any shard
/// count, with `--kernel` on or off.
const WHALE_DIGEST: u64 = 0xda29_c44a_450a_6ca4;

/// FNV-1a, exactly as the stress driver folds its response log.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Replay the workload through one engine, building the stress driver's
/// log format (`{i:06} {request} -> {response}`, no timing).
fn replay(workload: &Workload, cfg: EngineConfig) -> (String, Engine) {
    let mut engine = Engine::with_config(cfg);
    let mut log = String::with_capacity(workload.len() * 64);
    for (i, request) in workload.all_requests().enumerate() {
        let response = engine.execute(request.clone());
        assert!(
            !matches!(response, Response::Error { .. }),
            "whale trace op {i} errored: {response}"
        );
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }
    (log, engine)
}

#[test]
fn whale_trace_digest_is_pinned_and_kernel_invariant() {
    let workload = Workload::from_trace(WHALE_TRACE).expect("committed trace parses");

    let (plain_log, plain) = replay(&workload, EngineConfig::default());
    let (kernel_log, kernelized) =
        replay(&workload, EngineConfig { kernel: true, ..EngineConfig::default() });

    assert_eq!(
        fnv1a(plain_log.as_bytes()),
        WHALE_DIGEST,
        "unkernelized whale digest moved — regenerate traces/whale.trace \
         and update WHALE_DIGEST if the change is intentional"
    );
    assert!(plain_log == kernel_log, "kernelized replay diverged from the unkernelized log");

    // The replay must have exercised the kernel, not bypassed it.
    let stats = kernelized.stats();
    assert!(stats.index.kernel_rules_applied() > 0, "no reduction rules fired");
    assert!(stats.kernel_cut_serves > 0, "kernel never served a cut");
    assert!(stats.index.kernel_builds > 0, "kernel never built");
    assert!(stats.index.kernel_patches > 0, "whale insert phase never patched");
    let ratio = stats.index.kernel_vertex_ratio();
    assert!(ratio <= 0.5, "whale kernel kept {ratio:.4} of vertices; the gate requires <= 0.5");

    // The plain engine's counters prove the baseline truly ran unkernelized.
    assert_eq!(plain.stats().index.kernel_builds, 0);
    assert_eq!(plain.stats().kernel_cut_serves, 0);
}
