//! E4 — Lemma 3 / Observation 6: the generalized low-depth decomposition
//! is valid (Definition 1), has height `O(log² n)`, and is computed in
//! `O(1/ε)` AMPC rounds.
//!
//! Expect: height / log²(n) bounded by a small constant across tree
//! shapes; validity OK everywhere; near-flat AMPC rounds.

use ampc_model::{AmpcConfig, Executor};
use cut_bench::{f2, header, rng_for, row};
use cut_graph::gen;
use cut_tree::{validate_decomposition, RootedForest};
use mincut_core::model::ampc_low_depth_decomposition;

fn main() {
    println!("## E4 — generalized low-depth decomposition (Lemma 3, Observation 6)\n");
    header(&["shape", "n", "height", "log2(n)^2", "height/log^2", "AMPC rounds", "valid"]);
    for exp in [8usize, 10, 12, 14] {
        let n = 1usize << exp;
        let mut rng = rng_for("e4", exp as u64);
        let shapes: Vec<(&str, cut_graph::Graph)> = vec![
            ("random", gen::random_tree(n, &mut rng)),
            ("path", gen::path(n)),
            ("star", gen::star(n)),
            ("caterpillar", gen::caterpillar(n / 4, 3)),
            ("binary", gen::balanced_tree(2, exp - 1)),
        ];
        for (name, g) in shapes {
            let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
            let mut exec = Executor::new(AmpcConfig::new(g.n(), 0.5));
            let d = ampc_low_depth_decomposition(&mut exec, g.n(), &edges);
            let f = RootedForest::from_edges(g.n(), &edges);
            let valid = validate_decomposition(&f, &d.label).is_ok();
            let lg = (g.n() as f64).log2();
            row(&[
                name.to_string(),
                g.n().to_string(),
                d.height.to_string(),
                f2(lg * lg),
                f2(d.height as f64 / (lg * lg)),
                exec.rounds().to_string(),
                valid.to_string(),
            ]);
            assert!(valid);
        }
    }
    println!("\nShape check: height/log²n bounded (≤ ~1); rounds near-constant in n.");
}
