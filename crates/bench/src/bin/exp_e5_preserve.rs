//! E5 — Lemma 2: contracting an n-vertex graph down to n/t vertices
//! either creates a small singleton cut (≤ (2+ε)·λ) or preserves a fixed
//! minimum cut, with probability ≥ 1/t^(1-ε/3).
//!
//! Workload: a planted min cut of weight λ; "preserved" = no planted
//! crossing edge contracted; "small singleton" = tracked singleton cut
//! ≤ (2+ε)λ. Expect the empirical success rate to dominate the bound.

use cut_bench::{f2, header, rng_for, row};
use cut_graph::gen;
use mincut_core::contraction::contract_prefix;
use mincut_core::priorities::exponential_priorities;
use mincut_core::singleton::smallest_singleton_cut;

fn main() {
    println!("## E5 — Lemma 2: preservation-or-singleton probability\n");
    let n = 256usize;
    let half = n / 2;
    let lambda = 4u64;
    let eps = 0.5;
    let trials = 400;
    header(&["t", "empirical P[preserved or small singleton]", "bound 1/t^(1-eps/3)"]);
    for t in [2u32, 4, 8, 16] {
        let mut success = 0;
        for trial in 0..trials {
            let mut rng = rng_for("e5", (t as u64) << 32 | trial);
            let g = gen::planted_cut(half, 3 * half, lambda as usize, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            let target = n / t as usize;
            let (_, labels) = contract_prefix(&g, &prio, target);
            // Preserved: every planted crossing edge still crosses.
            let preserved = g
                .edges()
                .iter()
                .filter(|e| (e.u < half as u32) != (e.v < half as u32))
                .all(|e| labels[e.u as usize] != labels[e.v as usize]);
            // Small singleton observed during the whole contraction.
            let sc = smallest_singleton_cut(&g, &prio);
            let small_singleton = sc.weight as f64 <= (2.0 + eps) * lambda as f64;
            if preserved || small_singleton {
                success += 1;
            }
        }
        let p = success as f64 / trials as f64;
        let bound = 1.0 / (t as f64).powf(1.0 - eps / 3.0);
        row(&[t.to_string(), f2(p), f2(bound)]);
        assert!(p + 0.05 >= bound, "t={t}: {p} vs {bound}");
    }
    println!("\nShape check: empirical probability ≥ the Lemma 2 bound at every t.");
}
