//! E8 — substrate round counts (Lemma 4, Theorems 4–5 functionality):
//! rooting, chain ranking, min-prefix-sum, sample sort, MSF — AMPC vs MPC.
//!
//! Expect: AMPC near-constant rounds per primitive; MPC growing with
//! log n for the pointer-chasing ones (rooting, ranking, MSF); sorting
//! and aggregation constant in both (they need volume, not adaptivity).

use ampc_model::{AmpcConfig, ExecMode, Executor};
use cut_bench::{header, rng_for, row};
use cut_graph::gen;
use rand::Rng;

fn run_all(n: usize, mode: ExecMode) -> [usize; 5] {
    let mut rng = rng_for("e8", n as u64);
    let mk = || {
        let mut c = AmpcConfig::new(n, 0.5);
        c.mode = mode;
        Executor::new(c)
    };
    // chain ranking on a path (worst case for pointer chasing)
    let next: Vec<u32> = (0..n as u32).map(|i| (i + 1).min(n as u32 - 1)).collect();
    let mut e1 = mk();
    let _ = ampc_primitives::chain_aggregate(&mut e1, &next, &vec![1; n], "rank");
    // rooting a random tree
    let t = gen::random_tree(n, &mut rng);
    let tedges: Vec<(u32, u32)> = t.edges().iter().map(|e| (e.u, e.v)).collect();
    let mut e2 = mk();
    let _ = ampc_primitives::root_forest(&mut e2, n, &tedges);
    // min prefix sum
    let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-5..5)).collect();
    let mut e3 = mk();
    let _ = ampc_primitives::min_prefix_sum(&mut e3, &vals);
    // sample sort
    let keys: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let mut e4 = mk();
    let _ = ampc_primitives::sample_sort(&mut e4, &keys);
    // MSF
    let g = gen::connected_gnm(n, 3 * n, 1..=1, &mut rng);
    let prio = mincut_core::exponential_priorities(&g, &mut rng);
    let pedges: Vec<ampc_primitives::mst::PrioEdge> = g
        .edges()
        .iter()
        .zip(&prio)
        .map(|(e, &p)| ampc_primitives::mst::PrioEdge { u: e.u, v: e.v, prio: p })
        .collect();
    let mut e5 = mk();
    let _ = ampc_primitives::minimum_spanning_forest(&mut e5, n, &pedges);
    [e1.rounds(), e2.rounds(), e3.rounds(), e4.rounds(), e5.rounds()]
}

fn main() {
    println!("## E8 — substrate primitive rounds (Lemma 4, Theorems 4–5)\n");
    header(&["n", "mode", "chain rank", "rooting", "min-prefix", "sort", "MSF"]);
    for exp in [8usize, 10, 12, 14] {
        let n = 1usize << exp;
        for (mode, name) in [(ExecMode::Ampc, "AMPC"), (ExecMode::Mpc, "MPC")] {
            let r = run_all(n, mode);
            row(&[
                n.to_string(),
                name.to_string(),
                r[0].to_string(),
                r[1].to_string(),
                r[2].to_string(),
                r[3].to_string(),
                r[4].to_string(),
            ]);
        }
    }
    println!("\nShape check: pointer-chasing primitives (rank/rooting/MSF) show the");
    println!("AMPC-vs-MPC gap; aggregation and sorting are flat in both models.");
}
