//! E1 — Theorem 1 / Corollary 1: AMPC-MinCut round complexity vs the
//! MPC-shaped baseline.
//!
//! Paper claim: `(2+ε)`-approximate Min Cut in `O(log log n)` AMPC rounds;
//! Ghaffari–Nowicki needs `O(log n · log log n)` MPC rounds. Expect:
//! near-flat AMPC rounds-per-level, MPC rounds growing with log n,
//! MPC/AMPC ratio growing with n.

use ampc_model::AmpcConfig;
use cut_bench::{f2, header, rng_for, row};
use cut_graph::gen;
use mincut_core::mincut::MinCutOptions;
use mincut_core::model::ampc_min_cut;

fn main() {
    println!("## E1 — AMPC-MinCut rounds: AMPC vs MPC baseline (Theorem 1 / Corollary 1)\n");
    header(&[
        "n",
        "m",
        "levels",
        "AMPC rounds",
        "AMPC excl. MSF",
        "MPC rounds",
        "MPC/AMPC",
        "AMPC/level",
        "value=MPC value",
    ]);
    for exp in [8usize, 9, 10, 11, 12] {
        let n = 1usize << exp;
        let mut rng = rng_for("e1", exp as u64);
        let g = gen::connected_gnm(n, 3 * n, 1..=8, &mut rng);
        let opts = MinCutOptions { epsilon: 0.5, base_size: 32, repetitions: 1, seed: 7 };
        let ampc = ampc_min_cut(&g, &opts, &AmpcConfig::new(n, 0.5));
        let mpc = ampc_min_cut(&g, &opts, &AmpcConfig::new(n, 0.5).mpc());
        row(&[
            n.to_string(),
            g.m().to_string(),
            ampc.levels.to_string(),
            ampc.rounds_total.to_string(),
            ampc.rounds_excl_mst.to_string(),
            mpc.rounds_total.to_string(),
            f2(mpc.rounds_total as f64 / ampc.rounds_total as f64),
            f2(ampc.rounds_total as f64 / ampc.levels as f64),
            (ampc.cut.weight == mpc.cut.weight).to_string(),
        ]);
    }
    println!("\nShape check: the MPC/AMPC ratio must grow with n (the log n factor);");
    println!("AMPC rounds-per-level stays near-constant (Theorem 3's O(1/eps)).");
}
