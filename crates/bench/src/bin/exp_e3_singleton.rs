//! E3 — Theorem 3: singleton-cut tracking is exact and needs `O(1/ε)`
//! AMPC rounds (vs `Θ(log n)`-ish in MPC mode).
//!
//! Expect: tracking rounds flat in n for AMPC, growing for MPC; output
//! equal to the contraction oracle everywhere.

use ampc_model::{AmpcConfig, Executor};
use cut_bench::{header, rng_for, row};
use cut_graph::gen;
use mincut_core::contraction::contraction_oracle;
use mincut_core::model::ampc_smallest_singleton_cut;
use mincut_core::priorities::exponential_priorities;

fn main() {
    println!("## E3 — SmallestSingletonCut: exactness and rounds (Theorem 3)\n");
    header(&[
        "n",
        "m",
        "AMPC track rounds",
        "AMPC MSF rounds",
        "MPC track rounds",
        "max mach. I/O",
        "== oracle",
    ]);
    for exp in [6usize, 8, 10, 12] {
        let n = 1usize << exp;
        let mut rng = rng_for("e3", exp as u64);
        let g = gen::connected_gnm(n, 3 * n, 1..=10, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        let oracle = contraction_oracle(&g, &prio);

        let mut ax = Executor::new(AmpcConfig::new(n, 0.5));
        let arep = ampc_smallest_singleton_cut(&mut ax, &g, &prio);
        let mut mx = Executor::new(AmpcConfig::new(n, 0.5).mpc());
        let mrep = ampc_smallest_singleton_cut(&mut mx, &g, &prio);

        row(&[
            n.to_string(),
            g.m().to_string(),
            arep.tracking_rounds.to_string(),
            arep.mst_rounds.to_string(),
            mrep.tracking_rounds.to_string(),
            ax.stats().max_machine_io().to_string(),
            (arep.cut.weight == oracle.min_singleton && mrep.cut.weight == oracle.min_singleton)
                .to_string(),
        ]);
        assert_eq!(arep.cut.weight, oracle.min_singleton);
    }
    println!("\nShape check: AMPC tracking rounds stay near-constant as n grows 64x;");
    println!("MPC tracking rounds grow with log n (doubling-based primitives).");
}
