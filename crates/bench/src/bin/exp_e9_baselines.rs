//! E9 — §2 baselines: Karger's single contraction succeeds with
//! probability `Ω(1/n²)`-ish, Karger–Stein with `Ω(1/log n)` per run, and
//! the boosted variants find the exact cut; AMPC-MinCut matches quality.
//!
//! Expect: per-run KS success rate ≫ per-run Karger success rate; both
//! boosted baselines and AMPC-MinCut reach the planted cut.

use cut_bench::{f2, header, rng_for, row};
use cut_graph::{gen, stoer_wagner};
use mincut_core::baselines::{karger_once, karger_stein};
use mincut_core::mincut::{approx_min_cut, MinCutOptions};

fn main() {
    println!("## E9 — contraction baselines (§2, Lemma 1)\n");
    header(&[
        "n",
        "OPT",
        "P[karger run hits OPT]",
        "P[KS run hits OPT]",
        "AMPC-MinCut",
        "KS boosted",
    ]);
    for exp in [5usize, 6, 7] {
        let n = 1usize << exp;
        let mut rng = rng_for("e9", exp as u64);
        let g = gen::connected_gnm(n, 3 * n, 1..=6, &mut rng);
        let opt = stoer_wagner(&g).weight;

        let trials = 200;
        let mut k_hits = 0;
        let mut ks_hits = 0;
        for t in 0..trials {
            use rand::SeedableRng;
            let mut r = rand::rngs::SmallRng::seed_from_u64(t as u64);
            if karger_once(&g, &mut r).weight == opt {
                k_hits += 1;
            }
            if karger_stein(&g, t as u64).weight == opt {
                ks_hits += 1;
            }
        }
        let ampc = approx_min_cut(
            &g,
            &MinCutOptions { epsilon: 0.5, base_size: 16, repetitions: 4, seed: 1 },
        );
        let ks_boost = mincut_core::baselines::karger_stein_boosted(&g, 8, 42);
        row(&[
            n.to_string(),
            opt.to_string(),
            f2(k_hits as f64 / trials as f64),
            f2(ks_hits as f64 / trials as f64),
            ampc.weight.to_string(),
            ks_boost.weight.to_string(),
        ]);
    }
    println!("\nShape check: KS per-run success rate dominates Karger's and decays");
    println!("slowly (the Ω(1/log n) of §2); Karger's decays much faster with n.");
}
