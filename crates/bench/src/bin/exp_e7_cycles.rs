//! E7 — the 1-vs-2-cycle workload (§1): AMPC solves it in `O(1/ε)`
//! rounds; the conjecture says MPC needs `Ω(log n)`.
//!
//! Expect: AMPC rounds near-flat; MPC rounds growing ~linearly in log n.

use ampc_model::{AmpcConfig, Executor};
use cut_bench::{header, rng_for, row};
use cut_graph::gen;

fn main() {
    println!("## E7 — 1-vs-2 cycles: connectivity rounds (§1 motivation)\n");
    header(&["n", "log2 n", "AMPC rounds", "MPC rounds", "MPC/AMPC"]);
    for exp in [8usize, 10, 12, 14, 16] {
        let n = 1usize << exp;
        let mut rng = rng_for("e7", exp as u64);
        let two = exp % 2 == 0;
        let g = gen::one_or_two_cycles(n, two, &mut rng);
        let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();

        let mut ax = Executor::new(AmpcConfig::new(n, 0.5));
        let la = ampc_primitives::connectivity(&mut ax, n, &edges);
        let mut mx = Executor::new(AmpcConfig::new(n, 0.5).mpc());
        let lm = ampc_primitives::connectivity(&mut mx, n, &edges);
        assert_eq!(la, lm);
        let comps = la.iter().collect::<std::collections::HashSet<_>>().len();
        assert_eq!(comps, if two { 2 } else { 1 });

        row(&[
            n.to_string(),
            exp.to_string(),
            ax.rounds().to_string(),
            mx.rounds().to_string(),
            format!("{:.1}", mx.rounds() as f64 / ax.rounds() as f64),
        ]);
    }
    println!("\nShape check: AMPC column ~flat; MPC column grows with log n.");
}
