//! E2 — Theorem 1 approximation quality: `OPT ≤ AMPC-MinCut ≤ (2+ε)·OPT`.
//!
//! Expect: ratio 1.00 on almost every instance (the algorithm usually
//! finds the exact cut), never above 2+ε.

use cut_bench::{f2, header, rng_for, row};
use cut_graph::{gen, stoer_wagner};
use mincut_core::mincut::{approx_min_cut, MinCutOptions};

fn main() {
    println!("## E2 — approximation quality vs Stoer–Wagner (Theorem 1)\n");
    header(&["family", "n", "m", "OPT", "AMPC-MinCut", "ratio", "bound 2+eps"]);
    let opts = MinCutOptions { epsilon: 0.5, base_size: 32, repetitions: 4, seed: 11 };
    let mut worst: f64 = 0.0;
    for trial in 0..3u64 {
        let mut rng = rng_for("e2", trial);
        let cases: Vec<(&str, cut_graph::Graph)> = vec![
            ("gnm-weighted", gen::connected_gnm(256, 768, 1..=20, &mut rng)),
            ("planted-cut", gen::planted_cut(128, 400, 3, &mut rng)),
            ("planted-partition", gen::planted_partition(2, 100, 0.25, 0.01, &mut rng)),
            ("wheel", gen::wheel(200)),
            ("barbell", gen::barbell(40)),
            ("grid", gen::grid(12, 16)),
        ];
        for (name, g) in cases {
            if !g.is_connected() {
                continue;
            }
            let exact = stoer_wagner(&g).weight;
            let approx = approx_min_cut(&g, &opts).weight;
            let ratio = approx as f64 / exact.max(1) as f64;
            worst = worst.max(ratio);
            row(&[
                name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                exact.to_string(),
                approx.to_string(),
                f2(ratio),
                "2.50".to_string(),
            ]);
        }
    }
    println!("\nworst ratio observed: {} (must be <= 2.50)", f2(worst));
    assert!(worst <= 2.5);
}
