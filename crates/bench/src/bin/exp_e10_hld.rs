//! E10 — Observations 1–3: structural facts of the heavy-light
//! decomposition and binarized paths.
//!
//! * Observation 1: ≤ log₂ n light edges (hence heavy paths) on any
//!   root-to-vertex path;
//! * Observation 2: heavy paths partition the vertices, each ends at a
//!   leaf;
//! * Observation 3: the binarized path over L leaves has 2L-1 nodes and
//!   ⌊log₂ L⌋ + 1 height.

use cut_bench::{f2, header, rng_for, row};
use cut_graph::gen;
use cut_tree::{binpath, Hld, RootedForest};

fn main() {
    println!("## E10 — heavy-light and binarized-path structure (Observations 1–3)\n");
    header(&["shape", "n", "max light edges to root", "log2 n", "heavy paths", "max path len"]);
    for exp in [8usize, 10, 12, 14, 16] {
        let n = 1usize << exp;
        let mut rng = rng_for("e10", exp as u64);
        let shapes: Vec<(&str, cut_graph::Graph)> = vec![
            ("random", gen::random_tree(n, &mut rng)),
            ("caterpillar", gen::caterpillar(n / 3, 2)),
        ];
        for (name, g) in shapes {
            let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
            let f = RootedForest::from_edges(g.n(), &edges);
            let h = Hld::new(&f);
            let max_light = (0..g.n() as u32).map(|v| h.light_edges_to_root(&f, v)).max().unwrap();
            let max_len = h.paths.iter().map(|p| p.len()).max().unwrap();
            assert!(max_light as f64 <= (g.n() as f64).log2());
            row(&[
                name.to_string(),
                g.n().to_string(),
                max_light.to_string(),
                f2((g.n() as f64).log2()),
                h.path_count().to_string(),
                max_len.to_string(),
            ]);
        }
    }
    println!("\nObservation 3 spot checks (L, nodes, height ⌈log2 L⌉+1):");
    for len in [1u64, 2, 3, 5, 8, 100, 1000] {
        let expect = (len as f64).log2().ceil() as u32 + 1;
        println!(
            "  L={len}: nodes={} (2L-1={}), height={} (⌈log2 L⌉+1={})",
            binpath::nodes(len),
            2 * len - 1,
            binpath::height(len),
            expect
        );
        assert_eq!(binpath::nodes(len), 2 * len - 1);
        assert!(binpath::height(len) <= expect.max(1));
    }
}
