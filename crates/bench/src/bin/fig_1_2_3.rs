//! F1–F3 — regenerate the paper's three illustrative figures as text:
//! Figure 1 (heavy-light decomposition with subtree sizes), Figure 2 (the
//! meta tree), Figure 3 (an MST with levels and the contraction-time
//! intervals of edges with respect to a vertex).

use cut_graph::{Edge, Graph};
use cut_tree::{Hld, RootedForest};
use mincut_core::singleton::SingletonEngine;

fn main() {
    // A 10-vertex tree in the spirit of Figure 1 (the paper's exact
    // instance is only given as a drawing; this reconstruction has the
    // same vertex count and a comparable mix of heavy-path lengths).
    let edges = [(0u32, 1u32), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6), (4, 7), (5, 8), (8, 9)];
    let f = RootedForest::from_edges(10, &edges);
    let h = Hld::new(&f);

    println!("## Figure 1 — heavy-light decomposition");
    println!("(vertex: subtree size, heavy child)\n");
    for v in 0..10u32 {
        let hc = h.heavy_child[v as usize];
        println!(
            "  vertex {v}: subtree={}, heavy child={}",
            f.subtree[v as usize],
            if hc == u32::MAX { "—".to_string() } else { hc.to_string() }
        );
    }
    println!("\nheavy paths:");
    for (i, p) in h.paths.iter().enumerate() {
        println!("  P{i} = {p:?}");
    }

    println!("\n## Figure 2 — the meta tree (heavy paths contracted)");
    for i in 0..h.path_count() as u32 {
        match h.meta_parent(i) {
            u32::MAX => println!("  P{i} (root)"),
            p => println!(
                "  P{i} -> P{p} via light edge from vertex {}",
                h.path_parent_vertex[i as usize]
            ),
        }
    }

    // Figure 3: an MST with unique contraction times, decomposition
    // levels, and edge time-intervals w.r.t. a chosen vertex v.
    println!("\n## Figure 3 — MST, levels, and time intervals w.r.t. a vertex");
    let g = Graph::new(
        9,
        vec![
            Edge::new(0, 1, 1), // tree edges with priorities = positions
            Edge::new(1, 2, 1),
            Edge::new(1, 3, 1),
            Edge::new(0, 4, 1),
            Edge::new(4, 5, 1),
            Edge::new(4, 6, 1),
            Edge::new(0, 7, 1),
            Edge::new(2, 8, 1), // non-tree-ish extras below
            Edge::new(5, 8, 1),
            Edge::new(3, 6, 1),
        ],
    );
    let prio: Vec<u64> = (1..=g.m() as u64).collect();
    let eng = SingletonEngine::new(&g, &prio);
    println!("\nlevels (low-depth decomposition labels): {:?}", eng.label);
    let v = 1u32;
    println!("ldr_time({v}) = {}", eng.ldr[v as usize]);
    let per_leader = eng.leader_intervals(&g);
    println!("time intervals of edges with respect to vertex {v}:");
    for &(s, t, w) in &per_leader[v as usize] {
        println!("  interval [{s}, {t}] weight {w}  (contained in [0, {}])", eng.ldr[v as usize]);
    }
    let cut = eng.smallest(&g);
    println!(
        "\nsmallest singleton cut of the whole process: weight={} at (leader {}, time {})",
        cut.weight, cut.leader, cut.time
    );
}
