//! E6 — Theorem 2: APX-SPLIT is a `(4+ε)`-approximation of Min k-Cut and
//! runs in `O(k log log n)` rounds (linear in k).
//!
//! Part A: quality vs brute-force optimum on small graphs.
//! Part B: in-model rounds vs k (each greedy iteration runs one
//! AMPC-MinCut per component; the level cost is the component maximum).

use ampc_model::AmpcConfig;
use cut_bench::{f2, header, rng_for, row};
use cut_graph::{brute, gen};
use mincut_core::kcut::{apx_split, KCutOptions};
use mincut_core::mincut::MinCutOptions;
use mincut_core::model::ampc_min_cut;

fn main() {
    println!("## E6 — APX-SPLIT Min k-Cut (Theorem 2)\n");
    println!("### A. quality vs brute-force optimum (n ≤ 11)\n");
    header(&["n", "k", "OPT_k", "APX-SPLIT", "ratio", "bound 4+eps"]);
    let mut worst: f64 = 0.0;
    for trial in 0..4u64 {
        let mut rng = rng_for("e6a", trial);
        use rand::Rng;
        let n = rng.gen_range(8..12);
        let g = gen::connected_gnm(n, 2 * n, 1..=6, &mut rng);
        for k in 2..=4usize {
            let (opt, _) = brute::min_kcut(&g, k);
            let mut opts = KCutOptions::new(k);
            opts.exact_below = 0; // force the approximate inner solver
            opts.mincut.base_size = 4;
            opts.mincut.repetitions = 4;
            let r = apx_split(&g, &opts);
            let ratio = r.weight as f64 / opt.max(1) as f64;
            worst = worst.max(ratio);
            row(&[
                n.to_string(),
                k.to_string(),
                opt.to_string(),
                r.weight.to_string(),
                f2(ratio),
                "4.50".to_string(),
            ]);
        }
    }
    println!("\nworst ratio: {} (must be ≤ 4.50)\n", f2(worst));
    assert!(worst <= 4.5);

    println!("### B. in-model rounds vs k (O(k log log n) shape)\n");
    header(&["k", "iterations", "rounds total", "rounds/k"]);
    let n = 512usize;
    let mut rng = rng_for("e6b", 0);
    let g = gen::planted_partition(8, n / 8, 0.4, 0.01, &mut rng);
    if g.is_connected() {
        for k in [2usize, 3, 4, 5, 6] {
            // Greedy loop with in-model round accounting per iteration:
            // each iteration's cost is the max over its components.
            let mut removed: Vec<u32> = Vec::new();
            let mut rounds = 0usize;
            let mut iters = 0usize;
            loop {
                let current = g.without_edges(&removed);
                let comp = current.components();
                let ncomp = comp.iter().copied().max().unwrap() as usize + 1;
                if ncomp >= k {
                    break;
                }
                iters += 1;
                let mut iter_rounds = 0usize;
                let mut best: Option<(u64, Vec<u32>)> = None;
                for c in 0..ncomp as u32 {
                    let members: Vec<u32> =
                        (0..g.n() as u32).filter(|&v| comp[v as usize] == c).collect();
                    if members.len() < 2 {
                        continue;
                    }
                    let (sub, back) = current.induced(&members);
                    let opts =
                        MinCutOptions { epsilon: 0.5, base_size: 32, repetitions: 1, seed: 3 };
                    let rep = ampc_min_cut(&sub, &opts, &AmpcConfig::new(g.n(), 0.5));
                    iter_rounds = iter_rounds.max(rep.rounds_total);
                    let side: Vec<u32> = rep.cut.side.iter().map(|&v| back[v as usize]).collect();
                    if best.as_ref().is_none_or(|(w, _)| rep.cut.weight < *w) {
                        best = Some((rep.cut.weight, side));
                    }
                }
                rounds += iter_rounds;
                let (_, side) = best.expect("splittable component exists");
                let mut mask = vec![false; g.n()];
                for &v in &side {
                    mask[v as usize] = true;
                }
                for (i, e) in g.edges().iter().enumerate() {
                    if !removed.contains(&(i as u32)) && mask[e.u as usize] != mask[e.v as usize] {
                        removed.push(i as u32);
                    }
                }
            }
            row(&[
                k.to_string(),
                iters.to_string(),
                rounds.to_string(),
                f2(rounds as f64 / k as f64),
            ]);
        }
        println!("\nShape check: rounds grow ~linearly in k (rounds/k roughly flat).");
    } else {
        println!("(workload disconnected for this seed; part B skipped)");
    }
}
