//! Stress driver for the cut-query engine.
//!
//! Generates a seeded workload (see `cut_engine::workload`), replays it
//! through one `Engine`, and reports throughput, per-action latency
//! percentiles, and the epoch cache's hit rate. The full operation log
//! (request + response per op, no timing) is folded into an FNV-1a digest:
//! two runs with the same `--seed` print the same digest, which is the
//! determinism check the harness tests rely on.
//!
//! ```text
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7
//! ```
//!
//! Flags: `--ops N` `--seed S` `--graphs G` `--initial-n N` `--zipf Z`
//! `--mix default|read-only|write-heavy` `--dump-log PATH`.

use std::collections::BTreeMap;
use std::time::Instant;

use cut_engine::{ActionMix, Engine, Workload, WorkloadConfig};

struct Args {
    ops: usize,
    seed: u64,
    graphs: usize,
    initial_n: usize,
    zipf: f64,
    mix: ActionMix,
    mix_name: String,
    dump_log: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ops: 10_000,
        seed: 7,
        graphs: 8,
        initial_n: 48,
        zipf: 1.1,
        mix: ActionMix::default(),
        mix_name: "default".to_string(),
        dump_log: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--ops" => args.ops = value(&mut i)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--graphs" => {
                args.graphs = value(&mut i)?.parse().map_err(|e| format!("--graphs: {e}"))?
            }
            "--initial-n" => {
                args.initial_n = value(&mut i)?.parse().map_err(|e| format!("--initial-n: {e}"))?
            }
            "--zipf" => args.zipf = value(&mut i)?.parse().map_err(|e| format!("--zipf: {e}"))?,
            "--mix" => {
                args.mix_name = value(&mut i)?;
                args.mix = match args.mix_name.as_str() {
                    "default" => ActionMix::default(),
                    "read-only" => ActionMix::read_only(),
                    "write-heavy" => ActionMix::write_heavy(),
                    other => return Err(format!("unknown mix '{other}'")),
                };
            }
            "--dump-log" => args.dump_log = Some(value(&mut i)?),
            "--help" | "-h" => {
                println!(
                    "stress --ops N --seed S [--graphs G] [--initial-n N] [--zipf Z] \
                     [--mix default|read-only|write-heavy] [--dump-log PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    // Validate up front so bad flags are CLI errors, not workload panics.
    if args.graphs == 0 {
        return Err("--graphs must be at least 1".into());
    }
    if args.initial_n < 8 {
        return Err("--initial-n must be at least 8".into());
    }
    Ok(args)
}

/// FNV-1a over the log bytes — stable across runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn percentile(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted_nanos.len() - 1) as f64).round() as usize;
    sorted_nanos[rank.min(sorted_nanos.len() - 1)]
}

fn fmt_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let cfg = WorkloadConfig {
        ops: args.ops,
        seed: args.seed,
        graphs: args.graphs,
        initial_n: args.initial_n,
        zipf_exponent: args.zipf,
        mix: args.mix,
        ..WorkloadConfig::default()
    };

    println!(
        "cut-engine stress: ops={} seed={} graphs={} initial-n={} zipf={} mix={}",
        cfg.ops, cfg.seed, cfg.graphs, cfg.initial_n, cfg.zipf_exponent, args.mix_name
    );

    let t_gen = Instant::now();
    let workload = Workload::generate(&cfg);
    println!(
        "generated {} requests ({} create + {} ops) in {}",
        workload.len(),
        workload.prologue.len(),
        workload.operations.len(),
        fmt_nanos(t_gen.elapsed().as_nanos() as u64)
    );

    let mut engine = Engine::new();
    let mut log = String::with_capacity(workload.len() * 64);
    let mut latencies: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut errors = 0usize;

    let t_run = Instant::now();
    for (i, request) in workload.all_requests().enumerate() {
        let kind = request.kind();
        let t_op = Instant::now();
        let response = engine.execute(request.clone());
        let nanos = t_op.elapsed().as_nanos() as u64;
        latencies.entry(kind).or_default().push(nanos);
        if matches!(response, cut_engine::Response::Error { .. }) {
            errors += 1;
        }
        // The log line carries no timing, so it is identical across runs
        // with the same seed.
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }
    let wall = t_run.elapsed();

    let stats = engine.stats();
    let total_ops = workload.len();
    let ops_per_sec = total_ops as f64 / wall.as_secs_f64();

    println!();
    println!(
        "replayed {total_ops} ops in {:.3}s  ({ops_per_sec:.0} ops/sec, {errors} errors)",
        wall.as_secs_f64()
    );
    println!(
        "cache: {} hits / {} misses over {} queries  (hit rate {:.1}%)",
        stats.cache_hits,
        stats.cache_misses,
        stats.queries,
        stats.hit_rate() * 100.0
    );

    println!();
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "action", "count", "p50", "p90", "p99", "max", "total"
    );
    for (kind, nanos) in &mut latencies {
        nanos.sort_unstable();
        let total: u64 = nanos.iter().sum();
        println!(
            "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            kind,
            nanos.len(),
            fmt_nanos(percentile(nanos, 50.0)),
            fmt_nanos(percentile(nanos, 90.0)),
            fmt_nanos(percentile(nanos, 99.0)),
            fmt_nanos(*nanos.last().unwrap()),
            fmt_nanos(total),
        );
    }

    println!();
    println!("log digest: {:#018x}  ({} log bytes)", fnv1a(log.as_bytes()), log.len());
    println!("(re-run with the same --seed: the digest must not change)");

    if let Some(path) = &args.dump_log {
        if let Err(e) = std::fs::write(path, &log) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("operation log written to {path}");
    }
}
