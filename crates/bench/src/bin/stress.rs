//! Stress driver for the cut-query engine.
//!
//! Generates a seeded workload (see `cut_engine::workload`) and replays it
//! through the engine, reporting throughput, per-action latency
//! percentiles, and the epoch cache's hit rate. The full operation log
//! (request + response per op, no timing) is folded into an FNV-1a digest:
//! two runs with the same `--seed` print the same digest, which is the
//! determinism check the harness tests rely on.
//!
//! `--shards 1` (the default) replays through the single-threaded
//! `Engine::execute` path; `--shards N` pipelines the same stream through
//! an N-worker `ShardedEngine` (submission-order responses, so the digest
//! is identical for any shard count) and additionally reports per-shard
//! occupancy. `--batch` turns on the shard workers' read batching (runs of
//! queued same-graph queries share one index snapshot; mutations are
//! barriers); `--rebalance` turns on adaptive placement (load-driven graph
//! migration between shards, reported in the placement section); `--steal`
//! lets idle workers steal tail runs of same-graph queries from the
//! longest queue. None of these change a response, so the digest is
//! invariant across every flag combination; the report sections show what
//! each layer absorbed. Comparing the ops/sec lines across flags is the
//! one-flag benchmark for each feature.
//!
//! ```text
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7 --shards 4
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7 --shards 4 --batch
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7 --shards 4 \
//!     --rebalance --steal
//! ```
//!
//! Flags: `--ops N` `--seed S` `--graphs G` `--initial-n N` `--zipf Z`
//! `--mix default|read-only|write-heavy` `--shards N` `--batch`
//! `--rebalance` `--rebalance-window N` `--steal` `--cache-entries N`
//! `--dump-log PATH`. See `docs/SHARDING.md` for tuning guidance.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use cut_engine::{
    ActionMix, Engine, EngineConfig, EngineStats, PlacementOptions, PlacementReport, Request,
    Response, ShardOptions, ShardedEngine, Ticket, Workload, WorkloadConfig, BATCH_BUCKET_LABELS,
    QUERY_KINDS,
};
// FNV-1a over the log bytes — stable across runs and platforms.
use cut_graph::hash::fnv1a;

struct Args {
    ops: usize,
    seed: u64,
    graphs: usize,
    initial_n: usize,
    zipf: f64,
    mix: ActionMix,
    mix_name: String,
    shards: usize,
    batch: bool,
    rebalance: bool,
    rebalance_window: usize,
    steal: bool,
    cache_entries: usize,
    dump_log: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ops: 10_000,
        seed: 7,
        graphs: 8,
        initial_n: 48,
        zipf: 1.1,
        mix: ActionMix::default(),
        mix_name: "default".to_string(),
        shards: 1,
        batch: false,
        rebalance: false,
        rebalance_window: PlacementOptions::default().window,
        steal: false,
        cache_entries: EngineConfig::default().max_cache_entries,
        dump_log: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--ops" => args.ops = value(&mut i)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--graphs" => {
                args.graphs = value(&mut i)?.parse().map_err(|e| format!("--graphs: {e}"))?
            }
            "--initial-n" => {
                args.initial_n = value(&mut i)?.parse().map_err(|e| format!("--initial-n: {e}"))?
            }
            "--zipf" => args.zipf = value(&mut i)?.parse().map_err(|e| format!("--zipf: {e}"))?,
            "--mix" => {
                args.mix_name = value(&mut i)?;
                args.mix = match args.mix_name.as_str() {
                    "default" => ActionMix::default(),
                    "read-only" => ActionMix::read_only(),
                    "write-heavy" => ActionMix::write_heavy(),
                    other => return Err(format!("unknown mix '{other}'")),
                };
            }
            "--shards" => {
                args.shards = value(&mut i)?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--batch" => args.batch = true,
            "--rebalance" => args.rebalance = true,
            "--rebalance-window" => {
                args.rebalance_window =
                    value(&mut i)?.parse().map_err(|e| format!("--rebalance-window: {e}"))?
            }
            "--steal" => args.steal = true,
            "--cache-entries" => {
                args.cache_entries =
                    value(&mut i)?.parse().map_err(|e| format!("--cache-entries: {e}"))?
            }
            "--dump-log" => args.dump_log = Some(value(&mut i)?),
            "--help" | "-h" => {
                println!(
                    "stress --ops N --seed S [--graphs G] [--initial-n N] [--zipf Z] \
                     [--mix default|read-only|write-heavy] [--shards N] [--batch] \
                     [--rebalance] [--rebalance-window N] [--steal] [--cache-entries N] \
                     [--dump-log PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    // Validate up front so bad flags are CLI errors, not workload panics.
    if args.graphs == 0 {
        return Err("--graphs must be at least 1".into());
    }
    if args.initial_n < 8 {
        return Err("--initial-n must be at least 8".into());
    }
    // One worker thread per shard; cap well past any plausible core count
    // so a typo can't exhaust thread resources (which aborts, not errors).
    if args.shards == 0 || args.shards > 1024 {
        return Err(format!("--shards must be in 1..=1024 (got {})", args.shards));
    }
    if args.cache_entries == 0 {
        return Err("--cache-entries must be at least 1".into());
    }
    if args.rebalance_window == 0 {
        return Err("--rebalance-window must be at least 1".into());
    }
    Ok(args)
}

fn percentile(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted_nanos.len() - 1) as f64).round() as usize;
    sorted_nanos[rank.min(sorted_nanos.len() - 1)]
}

fn fmt_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let cfg = WorkloadConfig {
        ops: args.ops,
        seed: args.seed,
        graphs: args.graphs,
        initial_n: args.initial_n,
        zipf_exponent: args.zipf,
        mix: args.mix,
        ..WorkloadConfig::default()
    };

    println!(
        "cut-engine stress: ops={} seed={} graphs={} initial-n={} zipf={} mix={} shards={} \
         batch={} rebalance={} steal={} cache-entries={}",
        cfg.ops,
        cfg.seed,
        cfg.graphs,
        cfg.initial_n,
        cfg.zipf_exponent,
        args.mix_name,
        args.shards,
        args.batch,
        args.rebalance,
        args.steal,
        args.cache_entries
    );

    let t_gen = Instant::now();
    let workload = Workload::generate(&cfg);
    println!(
        "generated {} requests ({} create + {} ops) in {}",
        workload.len(),
        workload.prologue.len(),
        workload.operations.len(),
        fmt_nanos(t_gen.elapsed().as_nanos() as u64)
    );

    let engine_cfg =
        EngineConfig { max_cache_entries: args.cache_entries, ..EngineConfig::default() };
    let sharded_path = args.shards > 1 || args.batch || args.rebalance || args.steal;
    let mut report = if !sharded_path {
        run_single(&workload, engine_cfg)
    } else {
        let placement = PlacementOptions {
            rebalance: args.rebalance,
            window: args.rebalance_window,
            steal: args.steal,
            ..PlacementOptions::default()
        };
        let opts = ShardOptions {
            cfg: engine_cfg,
            batch: args.batch,
            placement,
            ..ShardOptions::default()
        };
        run_sharded(&workload, args.shards, opts)
    };

    let stats = report.stats;
    let total_ops = workload.len();
    let ops_per_sec = total_ops as f64 / report.wall.as_secs_f64();

    println!();
    println!(
        "replayed {total_ops} ops in {:.3}s  ({ops_per_sec:.0} ops/sec, {} errors)",
        report.wall.as_secs_f64(),
        report.errors
    );
    println!(
        "cache: {} hits / {} misses over {} queries  (hit rate {:.1}%, {} lru evictions)",
        stats.cache_hits,
        stats.cache_misses,
        stats.queries,
        stats.hit_rate() * 100.0,
        stats.index.lru_evictions,
    );
    print_index_efficiency(&stats, args.batch);

    if let Some(latencies) = &mut report.latencies {
        println!();
        println!(
            "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "action", "count", "p50", "p90", "p99", "max", "total"
        );
        for (kind, nanos) in latencies.iter_mut() {
            nanos.sort_unstable();
            let total: u64 = nanos.iter().sum();
            println!(
                "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                kind,
                nanos.len(),
                fmt_nanos(percentile(nanos, 50.0)),
                fmt_nanos(percentile(nanos, 90.0)),
                fmt_nanos(percentile(nanos, 99.0)),
                fmt_nanos(*nanos.last().unwrap()),
                fmt_nanos(total),
            );
        }
    }

    if let Some(occupancy) = &report.occupancy {
        let routed_total: u64 = occupancy.iter().map(|(r, _)| *r).sum::<u64>().max(1);
        println!();
        println!(
            "{:<8} {:>8} {:>7} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
            "shard",
            "routed",
            "share",
            "graphs",
            "queries",
            "mutations",
            "hit-rate",
            "mig-in",
            "mig-out",
            "steals"
        );
        for (shard, (routed, s)) in occupancy.iter().enumerate() {
            // Graphs owned now: arrivals (creates + migrations in) minus
            // departures (drops + migrations out).
            let owned = (s.graphs_created + s.migrations_in) as i64
                - (s.graphs_dropped + s.migrations_out) as i64;
            println!(
                "{:<8} {:>8} {:>6.1}% {:>7} {:>9} {:>9} {:>8.1}% {:>7} {:>7} {:>7}",
                shard,
                routed,
                *routed as f64 / routed_total as f64 * 100.0,
                owned,
                s.queries,
                s.mutations,
                s.hit_rate() * 100.0,
                s.migrations_in,
                s.migrations_out,
                s.steal_batches,
            );
        }
        let max_share = occupancy.iter().map(|(r, _)| *r).max().unwrap_or(0) as f64
            / routed_total as f64
            * 100.0;
        println!("max shard occupancy: {max_share:.1}% of routed requests");
    }

    if let Some(placement) = &report.placement {
        let stats = &report.stats;
        println!();
        println!(
            "placement: {} rebalances, {} migrations (generation {})",
            placement.rebalances, placement.migrations, placement.generation
        );
        if stats.steal_batches > 0 {
            println!(
                "stealing: {} runs / {} reads served by idle shards (mean run {:.1})",
                stats.steal_batches,
                stats.steal_reads,
                stats.steal_reads as f64 / stats.steal_batches as f64,
            );
        }
        if !placement.assignments.is_empty() {
            let assignment: Vec<String> = placement
                .assignments
                .iter()
                .map(|(name, shard)| format!("{name}->s{shard}"))
                .collect();
            println!("final assignment: {}", assignment.join("  "));
        }
    }

    println!();
    println!(
        "log digest: {:#018x}  ({} log bytes)",
        fnv1a(report.log.as_bytes()),
        report.log.len()
    );
    println!("(re-run with the same --seed: the digest must not change)");

    if let Some(path) = &args.dump_log {
        if let Err(e) = std::fs::write(path, &report.log) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("operation log written to {path}");
    }
}

/// The index-efficiency section: how much per-request work the index
/// layer (and, when enabled, the shard workers' read batching) absorbed.
fn print_index_efficiency(stats: &EngineStats, batch: bool) {
    let idx = &stats.index;
    println!();
    println!(
        "index: csr builds={} reuses={} (reuse rate {:.1}%)  dsu fast-path={} rebuilds={}",
        idx.csr_builds,
        idx.csr_reuses,
        idx.reuse_rate() * 100.0,
        idx.dsu_fast_hits,
        idx.dsu_rebuilds,
    );

    let any_kind = stats.builds_by_kind.iter().zip(&stats.reuse_by_kind).any(|(b, r)| *b + *r > 0);
    if any_kind {
        println!("{:<16} {:>8} {:>8} {:>9}", "action", "builds", "avoided", "avoid%");
        for (kind, label) in QUERY_KINDS.iter().enumerate() {
            let (builds, avoided) = (stats.builds_by_kind[kind], stats.reuse_by_kind[kind]);
            if builds + avoided == 0 {
                continue;
            }
            println!(
                "{:<16} {:>8} {:>8} {:>8.1}%",
                label,
                builds,
                avoided,
                avoided as f64 / (builds + avoided) as f64 * 100.0,
            );
        }
    }

    if batch {
        let avg = if stats.batches == 0 {
            0.0
        } else {
            stats.batched_reads as f64 / stats.batches as f64
        };
        println!(
            "batching: {} read batches over {} reads (mean size {:.2})",
            stats.batches, stats.batched_reads, avg,
        );
        let hist: Vec<String> = BATCH_BUCKET_LABELS
            .iter()
            .zip(&stats.batch_hist)
            .filter(|(_, count)| **count > 0)
            .map(|(label, count)| format!("{label}:{count}"))
            .collect();
        println!("batch sizes: {}", if hist.is_empty() { "-".into() } else { hist.join("  ") });
    }
}

/// What a replay produced, whichever execution front ran it.
struct RunReport {
    /// The deterministic `index request -> response` log.
    log: String,
    errors: usize,
    wall: std::time::Duration,
    /// Engine counters (summed across shards on the sharded path).
    stats: cut_engine::EngineStats,
    /// Per-action latency samples — single-shard path only (per-op timing
    /// is meaningless when ops overlap).
    latencies: Option<BTreeMap<&'static str, Vec<u64>>>,
    /// `(requests routed, final per-shard stats)` — sharded path only.
    occupancy: Option<Vec<(u64, cut_engine::EngineStats)>>,
    /// Adaptive-placement summary — sharded path only.
    placement: Option<PlacementReport>,
}

/// Replay through the single-threaded `Engine::execute` path, timing each
/// op individually.
fn run_single(workload: &Workload, cfg: EngineConfig) -> RunReport {
    let mut engine = Engine::with_config(cfg);
    let mut log = String::with_capacity(workload.len() * 64);
    let mut latencies: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut errors = 0usize;

    let t_run = Instant::now();
    for (i, request) in workload.all_requests().enumerate() {
        let kind = request.kind();
        let t_op = Instant::now();
        let response = engine.execute(request.clone());
        let nanos = t_op.elapsed().as_nanos() as u64;
        latencies.entry(kind).or_default().push(nanos);
        if matches!(response, Response::Error { .. }) {
            errors += 1;
        }
        // The log line carries no timing, so it is identical across runs
        // with the same seed.
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }
    let wall = t_run.elapsed();

    RunReport {
        log,
        errors,
        wall,
        stats: engine.stats(),
        latencies: Some(latencies),
        occupancy: None,
        placement: None,
    }
}

/// Replay through an N-shard `ShardedEngine`, keeping a bounded window of
/// in-flight tickets so shards overlap while memory stays flat. Responses
/// are collected in submission order, so the log (and its digest) is
/// byte-identical to the single-shard path.
fn run_sharded(workload: &Workload, shards: usize, opts: ShardOptions) -> RunReport {
    // The placement section only belongs in reports where the adaptive
    // layer was on; a plain --shards/--batch run keeps its old shape.
    let adaptive = opts.placement.rebalance || opts.placement.steal;
    /// In-flight cap: deep enough to keep every shard busy (and to give
    /// batching workers real runs to coalesce), small enough that pending
    /// tickets never hold more than a sliver of the log.
    const WINDOW: usize = 1024;

    let mut engine = ShardedEngine::with_options(shards, opts);
    let mut log = String::with_capacity(workload.len() * 64);
    let mut errors = 0usize;
    let mut inflight: VecDeque<(usize, &Request, Ticket)> = VecDeque::new();

    fn drain(entry: (usize, &Request, Ticket), log: &mut String, errors: &mut usize) {
        let (i, request, ticket) = entry;
        let response = ticket.wait();
        if matches!(response, Response::Error { .. }) {
            *errors += 1;
        }
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }

    let t_run = Instant::now();
    for (i, request) in workload.all_requests().enumerate() {
        let ticket = engine.submit(request.clone());
        inflight.push_back((i, request, ticket));
        if inflight.len() >= WINDOW {
            drain(inflight.pop_front().expect("non-empty window"), &mut log, &mut errors);
        }
    }
    while let Some(entry) = inflight.pop_front() {
        drain(entry, &mut log, &mut errors);
    }
    let wall = t_run.elapsed();

    let routed = engine.routed().to_vec();
    let placement = engine.placement_report();
    let per_shard = engine.shutdown();
    let mut stats = cut_engine::EngineStats::default();
    for s in &per_shard {
        stats.merge(s);
    }

    RunReport {
        log,
        errors,
        wall,
        stats,
        latencies: None,
        occupancy: Some(routed.into_iter().zip(per_shard).collect()),
        placement: adaptive.then_some(placement),
    }
}
