//! Stress driver for the cut-query engine.
//!
//! Generates a seeded workload (see `cut_engine::workload`) and replays it
//! through the engine, reporting throughput, latency, and the epoch
//! cache's hit rate. The full operation log (request + response per op, no
//! timing) is folded into an FNV-1a digest: two runs with the same
//! workload flags print the same digest, which is the determinism check
//! the harness tests rely on.
//!
//! Two replay modes:
//!
//! - **Closed loop** (default): each window of requests is kept full as
//!   fast as the engine drains it; the report shows ops/sec and, on
//!   single-threaded runs, per-action service-time percentiles.
//! - **Open loop** (`--arrival`, `--phases`): the workload carries a
//!   deterministic arrival schedule; the harness submits each request at
//!   its timestamp regardless of how the engine is keeping up, and
//!   reports **latency under load** (completion − scheduled arrival) per
//!   phase, plus queue-depth-over-time samples. This is the regime where
//!   bursts and popularity drift actually hurt — and where `--rebalance
//!   --steal --latency-proxy` earn their keep.
//!
//! `--shards 1` (the default) replays through the single-threaded
//! `Engine::execute` path; `--shards N` pipelines the same stream through
//! an N-worker `ShardedEngine` (submission-order responses, so the digest
//! is identical for any shard count) and additionally reports per-shard
//! occupancy. `--batch` turns on read batching, `--rebalance` adaptive
//! placement, `--steal` work stealing, `--latency-proxy` measured serve
//! times as the rebalancer's load signal. None of these change a
//! response, so the digest is invariant across every flag combination.
//!
//! A workload can be saved and replayed byte-identically: `--trace-out
//! PATH` writes the timestamped request stream, `--trace-in PATH` replays
//! it (same requests, same schedule, same digest).
//!
//! **Remote mode** (`--remote ADDR`, optionally `--connections N`): the
//! same seeded workload drives a `cut-server` over real TCP sockets
//! instead of an in-process engine. Requests route to connections by
//! graph name (the shard-router trick), so per-graph ordering is
//! preserved; open-loop percentiles become *end-to-end client-observed*
//! latency, and a per-connection throughput table is reported. At one
//! connection the operation log — and therefore the digest — is
//! byte-identical to an in-process run of the same flags, which is the
//! CI loopback gate. Engine-side flags (`--shards`, `--batch`,
//! `--rebalance`, `--steal`, `--latency-proxy`, `--cache-entries`) are
//! *server* properties under a network split: pass them to `cut-server`,
//! not to a `--remote` stress run.
//!
//! `--json-out PATH` writes the whole report as a machine-readable
//! `BENCH_*.json` artifact with the same schema (`cut-stress/1`) local
//! and remote.
//!
//! **Telemetry** (`docs/OBSERVABILITY.md`): every run finishes with a
//! `stats metrics` broadcast — outside the digest-logged stream, so the
//! digest is byte-identical with and without it — and reports queue-wait
//! and serve-time percentiles from the merged lifecycle-span histograms
//! (per phase on local open-loop runs, via metrics barriers at phase
//! boundaries). `--metrics-out PATH` additionally writes the raw
//! end-of-run snapshot as a `cut-metrics/1` JSON artifact, and
//! `--metrics-text PATH` the same snapshot in Prometheus text
//! exposition.
//!
//! ```text
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7 --shards 4
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7 --shards 4 \
//!     --phases bursty --arrival poisson:20000 --rebalance --steal --latency-proxy
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --trace-out /tmp/run.trace
//! cargo run --release -p cut_bench --bin stress -- --trace-in /tmp/run.trace --shards 4
//! cargo run --release -p cut_server --bin cut-server -- --shards 4 &
//! cargo run --release -p cut_bench --bin stress -- --ops 10000 --seed 7 \
//!     --phases bursty --remote 127.0.0.1:7641 --connections 4 --json-out BENCH_remote.json
//! ```
//!
//! Flags: `--ops N` `--seed S` `--graphs G` `--initial-n N` `--zipf Z`
//! `--mix default|read-only|write-heavy` `--shards N` `--batch`
//! `--rebalance` `--rebalance-window N` `--steal` `--latency-proxy`
//! `--arrival closed|steady:R|poisson:R|bursts:B:P|diurnal:L:H`
//! `--phases single|bursty|diurnal|flash` `--trace-out PATH`
//! `--trace-in PATH` `--cache-entries N` `--dump-log PATH`
//! `--remote ADDR` `--connections N` `--json-out PATH`
//! `--metrics-out PATH` `--metrics-text PATH`. See
//! `docs/WORKLOADS.md` for the workload model, `docs/SHARDING.md` for
//! placement tuning, and `docs/PROTOCOL.md` for the wire format behind
//! `--remote`.
//!
//! **Durable mode** (`--data-dir PATH`, plus `--snapshot-every N`,
//! `--resident-cap N`, `--fsync`): the engine write-ahead logs every
//! applied request into a `cut_store::Store`, recovering whatever the
//! directory already holds on startup, and the report gains `durability`
//! and `recovery` sections (text and JSON — null in the JSON when the
//! run was remote or not durable). The digest is invariant under all of
//! it, including a `--resident-cap` far below `--graphs`: spilling cold
//! graphs to disk and faulting them back must never change a response.
//! See `docs/DURABILITY.md`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cut_client::{ClientError, Connection, ReconnectPolicy, RemoteTicket};
use cut_engine::{
    ActionMix, ArrivalProcess, Engine, EngineConfig, EngineStats, GraphStore, Histogram,
    PlacementOptions, PlacementReport, Registry, Request, Response, ShardOptions, ShardedEngine,
    Ticket, Timeline, Workload, WorkloadConfig, BATCH_BUCKET_LABELS, QUERY_KINDS,
};
// FNV-1a over the log bytes — stable across runs and platforms.
use cut_graph::hash::fnv1a;
use cut_store::{Store, StoreOptions};

/// `--arrival` before rates are turned into a concrete process (the
/// time-varying shapes need the op count to pick sane periods).
#[derive(Debug, Clone, Copy, PartialEq)]
enum ArrivalArg {
    Closed,
    Steady(f64),
    Poisson(f64),
    /// `bursts:BASE:PEAK`.
    Bursts(f64, f64),
    /// `diurnal:LOW:HIGH`.
    Diurnal(f64, f64),
}

impl ArrivalArg {
    fn parse(spec: &str) -> Result<ArrivalArg, String> {
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or("");
        let mut rate = |what: &str| -> Result<f64, String> {
            let tok = parts.next().ok_or(format!("--arrival {kind} needs {what}"))?;
            let v: f64 = tok.parse().map_err(|_| format!("bad {what} '{tok}'"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{what} must be positive (got {tok})"));
            }
            Ok(v)
        };
        let arg = match kind {
            "closed" => ArrivalArg::Closed,
            "steady" => ArrivalArg::Steady(rate("a rate")?),
            "poisson" => ArrivalArg::Poisson(rate("a rate")?),
            "bursts" => ArrivalArg::Bursts(rate("a base rate")?, rate("a peak rate")?),
            "diurnal" => ArrivalArg::Diurnal(rate("a low rate")?, rate("a high rate")?),
            other => return Err(format!("unknown arrival process '{other}'")),
        };
        if let Some(extra) = parts.next() {
            return Err(format!("trailing '{extra}' in --arrival {spec}"));
        }
        Ok(arg)
    }

    /// The baseline ops/sec this spec implies (used by `--phases` presets).
    fn base_rate(&self) -> Option<f64> {
        match *self {
            ArrivalArg::Closed => None,
            ArrivalArg::Steady(r) | ArrivalArg::Poisson(r) => Some(r),
            ArrivalArg::Bursts(base, _) => Some(base),
            ArrivalArg::Diurnal(low, high) => Some((low + high) / 2.0),
        }
    }

    /// Materialize for a single-phase run of `ops` operations.
    fn materialize(&self, ops: usize) -> ArrivalProcess {
        match *self {
            ArrivalArg::Closed => ArrivalProcess::Closed,
            ArrivalArg::Steady(rate) => ArrivalProcess::Steady { rate },
            ArrivalArg::Poisson(rate) => ArrivalProcess::Poisson { rate },
            ArrivalArg::Bursts(base, peak) => {
                // ~3 on/off cycles across the run, bursts 1/3 of each.
                let mean = (2.0 * base + peak) / 3.0;
                let period = (ops as f64 / mean / 3.0).max(1e-6);
                ArrivalProcess::Bursts { base, peak, period, burst: period / 3.0 }
            }
            ArrivalArg::Diurnal(low, high) => {
                // Two full day cycles across the run.
                let mean = (low + high) / 2.0;
                let period = (ops as f64 / mean / 2.0).max(1e-6);
                ArrivalProcess::Diurnal { low, high, period }
            }
        }
    }
}

struct Args {
    ops: usize,
    seed: u64,
    graphs: usize,
    initial_n: usize,
    zipf: f64,
    mix: ActionMix,
    mix_name: String,
    shards: usize,
    batch: bool,
    rebalance: bool,
    rebalance_window: usize,
    steal: bool,
    latency_proxy: bool,
    arrival: ArrivalArg,
    phases: String,
    trace_out: Option<String>,
    trace_in: Option<String>,
    cache_entries: usize,
    dump_log: Option<String>,
    remote: Option<String>,
    connections: usize,
    json_out: Option<String>,
    metrics_out: Option<String>,
    metrics_text: Option<String>,
    data_dir: Option<String>,
    snapshot_every: Option<u64>,
    resident_cap: usize,
    fsync: bool,
    no_dynconn: bool,
    kernel: bool,
    kernel_threshold: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ops: 10_000,
        seed: 7,
        graphs: 8,
        initial_n: 48,
        zipf: 1.1,
        mix: ActionMix::default(),
        mix_name: "default".to_string(),
        shards: 1,
        batch: false,
        rebalance: false,
        rebalance_window: PlacementOptions::default().window,
        steal: false,
        latency_proxy: false,
        arrival: ArrivalArg::Closed,
        phases: "single".to_string(),
        trace_out: None,
        trace_in: None,
        cache_entries: EngineConfig::default().max_cache_entries,
        dump_log: None,
        remote: None,
        connections: 1,
        json_out: None,
        metrics_out: None,
        metrics_text: None,
        data_dir: None,
        snapshot_every: None,
        resident_cap: 0,
        fsync: false,
        no_dynconn: false,
        kernel: false,
        kernel_threshold: EngineConfig::default().kernel_threshold,
    };
    let mut connections_given = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--ops" => args.ops = value(&mut i)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--graphs" => {
                args.graphs = value(&mut i)?.parse().map_err(|e| format!("--graphs: {e}"))?
            }
            "--initial-n" => {
                args.initial_n = value(&mut i)?.parse().map_err(|e| format!("--initial-n: {e}"))?
            }
            "--zipf" => args.zipf = value(&mut i)?.parse().map_err(|e| format!("--zipf: {e}"))?,
            "--mix" => {
                args.mix_name = value(&mut i)?;
                args.mix = match args.mix_name.as_str() {
                    "default" => ActionMix::default(),
                    "read-only" => ActionMix::read_only(),
                    "write-heavy" => ActionMix::write_heavy(),
                    other => return Err(format!("unknown mix '{other}'")),
                };
            }
            "--shards" => {
                args.shards = value(&mut i)?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--batch" => args.batch = true,
            "--rebalance" => args.rebalance = true,
            "--rebalance-window" => {
                args.rebalance_window =
                    value(&mut i)?.parse().map_err(|e| format!("--rebalance-window: {e}"))?
            }
            "--steal" => args.steal = true,
            "--latency-proxy" => args.latency_proxy = true,
            "--arrival" => args.arrival = ArrivalArg::parse(&value(&mut i)?)?,
            "--phases" => args.phases = value(&mut i)?,
            "--trace-out" => args.trace_out = Some(value(&mut i)?),
            "--trace-in" => args.trace_in = Some(value(&mut i)?),
            "--cache-entries" => {
                args.cache_entries =
                    value(&mut i)?.parse().map_err(|e| format!("--cache-entries: {e}"))?
            }
            "--dump-log" => args.dump_log = Some(value(&mut i)?),
            "--remote" => args.remote = Some(value(&mut i)?),
            "--connections" => {
                connections_given = true;
                args.connections =
                    value(&mut i)?.parse().map_err(|e| format!("--connections: {e}"))?
            }
            "--json-out" => args.json_out = Some(value(&mut i)?),
            "--metrics-out" => args.metrics_out = Some(value(&mut i)?),
            "--metrics-text" => args.metrics_text = Some(value(&mut i)?),
            "--data-dir" => args.data_dir = Some(value(&mut i)?),
            "--snapshot-every" => {
                args.snapshot_every =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--snapshot-every: {e}"))?)
            }
            "--resident-cap" => {
                args.resident_cap =
                    value(&mut i)?.parse().map_err(|e| format!("--resident-cap: {e}"))?
            }
            "--fsync" => args.fsync = true,
            "--no-dynconn" => args.no_dynconn = true,
            "--kernel" => args.kernel = true,
            "--kernel-threshold" => {
                args.kernel_threshold =
                    value(&mut i)?.parse().map_err(|e| format!("--kernel-threshold: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "stress --ops N --seed S [--graphs G] [--initial-n N] [--zipf Z] \
                     [--mix default|read-only|write-heavy] [--shards N] [--batch] \
                     [--rebalance] [--rebalance-window N] [--steal] [--latency-proxy] \
                     [--arrival closed|steady:R|poisson:R|bursts:B:P|diurnal:L:H] \
                     [--phases single|bursty|diurnal|flash|write-storm|whale] \
                     [--trace-out PATH] [--trace-in PATH] [--cache-entries N] [--no-dynconn] \
                     [--kernel] [--kernel-threshold N] \
                     [--dump-log PATH] [--remote ADDR [--connections N]] \
                     [--json-out PATH] [--metrics-out PATH] [--metrics-text PATH] \
                     [--data-dir PATH [--snapshot-every N] \
                     [--resident-cap N] [--fsync]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    // Validate up front so bad flags are CLI errors, not workload panics.
    if args.graphs == 0 {
        return Err("--graphs must be at least 1".into());
    }
    if args.initial_n < 8 {
        return Err("--initial-n must be at least 8".into());
    }
    // One worker thread per shard; cap well past any plausible core count
    // so a typo can't exhaust thread resources (which aborts, not errors).
    if args.shards == 0 || args.shards > 1024 {
        return Err(format!("--shards must be in 1..=1024 (got {})", args.shards));
    }
    if args.cache_entries == 0 {
        return Err("--cache-entries must be at least 1".into());
    }
    if args.rebalance_window == 0 {
        return Err("--rebalance-window must be at least 1".into());
    }
    if !matches!(
        args.phases.as_str(),
        "single" | "bursty" | "diurnal" | "flash" | "write-storm" | "whale"
    ) {
        return Err(format!(
            "--phases must be single|bursty|diurnal|flash|write-storm|whale (got '{}')",
            args.phases
        ));
    }
    if args.kernel_threshold == 0 {
        return Err("--kernel-threshold must be at least 1".into());
    }
    if args.phases != "single" && args.arrival == ArrivalArg::Closed {
        // Presets are open-loop shapes; give them a sane default pace
        // rather than erroring (20k ops/sec keeps CI runs short).
        args.arrival = ArrivalArg::Poisson(20_000.0);
    }
    if connections_given && args.remote.is_none() {
        return Err("--connections only makes sense with --remote".into());
    }
    if args.connections == 0 || args.connections > 256 {
        return Err(format!("--connections must be in 1..=256 (got {})", args.connections));
    }
    if args.data_dir.is_none() {
        if args.resident_cap != 0 {
            return Err("--resident-cap needs --data-dir (spilled graphs live there)".into());
        }
        if args.snapshot_every.is_some() {
            return Err("--snapshot-every needs --data-dir".into());
        }
        if args.fsync {
            return Err("--fsync needs --data-dir".into());
        }
    }
    if args.remote.is_some() && args.data_dir.is_some() {
        // Durability is an engine property; under a network split it
        // belongs on the cut-server command line.
        return Err(
            "--remote drives a cut-server: durability flags (--data-dir, --snapshot-every, \
             --resident-cap, --fsync) belong on the cut-server command line, not here"
                .into(),
        );
    }
    if args.remote.is_some() {
        // Under a network split the engine lives in the server process;
        // accepting these here would silently configure nothing.
        let engine_flags_touched = args.shards != 1
            || args.batch
            || args.rebalance
            || args.steal
            || args.latency_proxy
            || args.rebalance_window != PlacementOptions::default().window
            || args.cache_entries != EngineConfig::default().max_cache_entries
            || args.no_dynconn
            || args.kernel
            || args.kernel_threshold != EngineConfig::default().kernel_threshold;
        if engine_flags_touched {
            return Err(
                "--remote drives a cut-server: engine flags (--shards, --batch, --rebalance, \
                 --rebalance-window, --steal, --latency-proxy, --cache-entries, --no-dynconn, \
                 --kernel, --kernel-threshold) belong on the cut-server command line, not here"
                    .into(),
            );
        }
    }
    Ok(args)
}

/// How long an open-loop collector parks on a ticket (or its intake
/// channel) when a non-blocking sweep found nothing. A bounded park in
/// place of a spin: the recv wakes early the moment the awaited answer
/// lands, so only answers landing on *other* tickets can be stamped up
/// to this much late.
const COLLECTOR_PARK: Duration = Duration::from_micros(200);

fn percentile(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted_nanos.len() - 1) as f64).round() as usize;
    sorted_nanos[rank.min(sorted_nanos.len() - 1)]
}

/// Decode a `stats metrics` response into a registry. A malformed
/// snapshot is a harness/engine bug, not a workload error — abort loudly.
fn decode_metrics(response: Response) -> Registry {
    match response {
        Response::Metrics { snapshot } => Registry::from_wire(&snapshot).unwrap_or_else(|e| {
            eprintln!("error: undecodable metrics snapshot: {e}");
            std::process::exit(1);
        }),
        other => {
            eprintln!("error: stats metrics answered: {other}");
            std::process::exit(1);
        }
    }
}

fn fmt_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Build (or load) the workload the flags describe.
fn build_workload(args: &Args) -> Result<Workload, String> {
    if let Some(path) = &args.trace_in {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading trace {path}: {e}"))?;
        return Workload::from_trace(&text).map_err(|e| format!("parsing trace {path}: {e}"));
    }
    let cfg = WorkloadConfig {
        ops: args.ops,
        seed: args.seed,
        graphs: args.graphs,
        initial_n: args.initial_n,
        zipf_exponent: args.zipf,
        mix: args.mix,
        // The whale preset's huge sparse g000: ~10× the default graph
        // size, the shape the kernel's reductions are built to shrink.
        whale_n: if args.phases == "whale" { 480 } else { 0 },
        ..WorkloadConfig::default()
    };
    let rate = args.arrival.base_rate().unwrap_or(20_000.0);
    let timeline = match args.phases.as_str() {
        "single" => Timeline::single("main", args.ops, args.arrival.materialize(args.ops)),
        "bursty" => Timeline::bursty(args.ops, rate, args.mix, args.zipf),
        "diurnal" => Timeline::diurnal(args.ops, rate, args.mix, args.zipf),
        "flash" => Timeline::flash(args.ops, rate, args.mix, args.zipf),
        "write-storm" => Timeline::write_storm(args.ops, rate, args.mix, args.zipf),
        "whale" => Timeline::whale(args.ops, rate, args.mix, args.zipf),
        other => return Err(format!("unknown phases preset '{other}'")),
    };
    // `single` + `closed` must stay the legacy closed-loop workload.
    if args.phases == "single" && args.arrival == ArrivalArg::Closed {
        return Ok(Workload::generate(&cfg));
    }
    Ok(Workload::generate_timeline(&cfg, &timeline))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // Under --trace-in the generation flags do not describe the workload
    // (the trace does) — print only what is actually in effect.
    if let Some(path) = &args.trace_in {
        println!(
            "cut-engine stress: trace={path} shards={} batch={} rebalance={} steal={} \
             latency-proxy={} cache-entries={} dynconn={} kernel={}",
            args.shards,
            args.batch,
            args.rebalance,
            args.steal,
            args.latency_proxy,
            args.cache_entries,
            !args.no_dynconn,
            args.kernel
        );
    } else {
        println!(
            "cut-engine stress: ops={} seed={} graphs={} initial-n={} zipf={} mix={} shards={} \
             batch={} rebalance={} steal={} latency-proxy={} arrival={:?} phases={} \
             cache-entries={} dynconn={} kernel={}",
            args.ops,
            args.seed,
            args.graphs,
            args.initial_n,
            args.zipf,
            args.mix_name,
            args.shards,
            args.batch,
            args.rebalance,
            args.steal,
            args.latency_proxy,
            args.arrival,
            args.phases,
            args.cache_entries,
            !args.no_dynconn,
            args.kernel
        );
    }

    let t_gen = Instant::now();
    let workload = match build_workload(&args) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{} {} requests ({} create + {} ops, {}) in {}",
        if args.trace_in.is_some() { "loaded" } else { "generated" },
        workload.len(),
        workload.prologue.len(),
        workload.operations.len(),
        if workload.is_open_loop() { "open-loop" } else { "closed-loop" },
        fmt_nanos(t_gen.elapsed().as_nanos() as u64)
    );

    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::write(path, workload.to_trace()) {
            eprintln!("error: writing trace {path}: {e}");
            std::process::exit(1);
        }
        println!("workload trace written to {path}");
    }

    // Durable mode: open (and recover) the store before any engine runs,
    // and keep the handle so the report can read its counters afterwards.
    let store = args.data_dir.as_ref().map(|dir| {
        let opts = StoreOptions {
            snapshot_every: args.snapshot_every.unwrap_or(StoreOptions::default().snapshot_every),
            fsync: args.fsync,
        };
        let store = match Store::open(dir, opts) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: opening data dir {dir}: {e}");
                std::process::exit(1);
            }
        };
        let r = store.recovery_report();
        println!(
            "durable: recovered {} graphs from {dir} ({} WAL records, {} torn tails truncated, \
             {} tombstones collected, {} orphan tmps removed)",
            r.graphs, r.wal_records, r.torn_tails, r.tombstones_gcd, r.orphan_tmps
        );
        Arc::new(store)
    });

    let engine_cfg = EngineConfig {
        max_cache_entries: args.cache_entries,
        resident_cap: args.resident_cap,
        dynamic_index: !args.no_dynconn,
        kernel: args.kernel,
        kernel_threshold: args.kernel_threshold,
        ..EngineConfig::default()
    };
    let placement = PlacementOptions {
        rebalance: args.rebalance,
        window: args.rebalance_window,
        steal: args.steal,
        latency_proxy: args.latency_proxy,
        ..PlacementOptions::default()
    };
    let opts = ShardOptions {
        cfg: engine_cfg.clone(),
        batch: args.batch,
        placement,
        store: store.clone().map(|s| s as Arc<dyn GraphStore>),
        ..ShardOptions::default()
    };
    let sharded_path = args.shards > 1
        || args.batch
        || args.rebalance
        || args.steal
        || args.latency_proxy
        || workload.is_open_loop();
    let mut report = if let Some(addr) = &args.remote {
        println!("remote: driving cut-server at {addr} over {} connection(s)", args.connections);
        if workload.is_open_loop() {
            run_remote_open(&workload, addr, args.connections)
        } else {
            run_remote_closed(&workload, addr, args.connections)
        }
    } else if workload.is_open_loop() {
        run_open_loop(&workload, args.shards, opts)
    } else if !sharded_path {
        run_single(&workload, engine_cfg, store.clone())
    } else {
        run_sharded(&workload, args.shards, opts)
    };

    let stats = report.stats;
    let total_ops = workload.len();
    let ops_per_sec = total_ops as f64 / report.wall.as_secs_f64();

    println!();
    println!(
        "replayed {total_ops} ops in {:.3}s  ({ops_per_sec:.0} ops/sec, {} errors)",
        report.wall.as_secs_f64(),
        report.errors
    );
    // Cache and index counters live in the engine; under --remote that is
    // the server's process, so there is nothing truthful to print here.
    if args.remote.is_none() {
        println!(
            "cache: {} hits / {} misses over {} queries  (hit rate {:.1}%, {} lru evictions)",
            stats.cache_hits,
            stats.cache_misses,
            stats.queries,
            stats.hit_rate() * 100.0,
            stats.index.lru_evictions,
        );
        print_index_efficiency(&stats, args.batch);
    }

    if let Some(latencies) = &mut report.latencies {
        println!();
        println!(
            "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "action", "count", "p50", "p90", "p99", "max", "total"
        );
        for (kind, nanos) in latencies.iter_mut() {
            nanos.sort_unstable();
            let total: u64 = nanos.iter().sum();
            println!(
                "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                kind,
                nanos.len(),
                fmt_nanos(percentile(nanos, 50.0)),
                fmt_nanos(percentile(nanos, 90.0)),
                fmt_nanos(percentile(nanos, 99.0)),
                fmt_nanos(*nanos.last().unwrap()),
                fmt_nanos(total),
            );
        }
    }

    if let Some(open) = &mut report.open {
        println!();
        println!(
            "open-loop latency under load ({}completion − scheduled arrival):",
            if args.remote.is_some() { "end-to-end client-observed: " } else { "" }
        );
        println!(
            "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
            "phase", "ops", "p50", "p95", "p99", "max", "q-mean", "q-max"
        );
        let mut all: Vec<u64> = Vec::new();
        for phase in &mut open.phases {
            phase.lat.sort_unstable();
            all.extend_from_slice(&phase.lat);
            let q_mean = if phase.depth_samples == 0 {
                0.0
            } else {
                phase.depth_sum as f64 / phase.depth_samples as f64
            };
            println!(
                "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9.1} {:>8}",
                phase.name,
                phase.lat.len(),
                fmt_nanos(percentile(&phase.lat, 50.0)),
                fmt_nanos(percentile(&phase.lat, 95.0)),
                fmt_nanos(percentile(&phase.lat, 99.0)),
                fmt_nanos(phase.lat.last().copied().unwrap_or(0)),
                q_mean,
                phase.depth_max,
            );
        }
        all.sort_unstable();
        println!(
            "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "overall",
            all.len(),
            fmt_nanos(percentile(&all, 50.0)),
            fmt_nanos(percentile(&all, 95.0)),
            fmt_nanos(percentile(&all, 99.0)),
            fmt_nanos(all.last().copied().unwrap_or(0)),
        );
        println!(
            "schedule horizon {} (offered {:.0} ops/sec); replay wall {}",
            fmt_nanos(open.horizon_nanos),
            if open.horizon_nanos == 0 {
                0.0
            } else {
                all.len() as f64 / (open.horizon_nanos as f64 / 1e9)
            },
            fmt_nanos(report.wall.as_nanos() as u64),
        );
    }

    if let Some(occupancy) = &report.occupancy {
        let routed_total: u64 = occupancy.iter().map(|(r, _)| *r).sum::<u64>().max(1);
        let busy_total: u64 = occupancy.iter().map(|(_, s)| s.serve_nanos).sum::<u64>().max(1);
        println!();
        println!(
            "{:<8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
            "shard",
            "routed",
            "share",
            "busy",
            "graphs",
            "queries",
            "mutations",
            "hit-rate",
            "mig-in",
            "mig-out",
            "steals"
        );
        for (shard, (routed, s)) in occupancy.iter().enumerate() {
            // Graphs owned now: arrivals (creates + migrations in) minus
            // departures (drops + migrations out).
            let owned = (s.graphs_created + s.migrations_in) as i64
                - (s.graphs_dropped + s.migrations_out) as i64;
            println!(
                "{:<8} {:>8} {:>6.1}% {:>6.1}% {:>7} {:>9} {:>9} {:>8.1}% {:>7} {:>7} {:>7}",
                shard,
                routed,
                *routed as f64 / routed_total as f64 * 100.0,
                s.serve_nanos as f64 / busy_total as f64 * 100.0,
                owned,
                s.queries,
                s.mutations,
                s.hit_rate() * 100.0,
                s.migrations_in,
                s.migrations_out,
                s.steal_batches,
            );
        }
        let max_share = occupancy.iter().map(|(r, _)| *r).max().unwrap_or(0) as f64
            / routed_total as f64
            * 100.0;
        let max_busy = occupancy.iter().map(|(_, s)| s.serve_nanos).max().unwrap_or(0) as f64
            / busy_total as f64
            * 100.0;
        println!(
            "max shard occupancy: {max_share:.1}% of routed requests, {max_busy:.1}% of busy time"
        );
    }

    if let Some(placement) = &report.placement {
        let stats = &report.stats;
        println!();
        println!(
            "placement: {} rebalances, {} migrations (generation {}){}",
            placement.rebalances,
            placement.migrations,
            placement.generation,
            if args.latency_proxy { "  [latency proxy]" } else { "" }
        );
        if stats.steal_batches > 0 {
            println!(
                "stealing: {} runs / {} reads served by idle shards (mean run {:.1})",
                stats.steal_batches,
                stats.steal_reads,
                stats.steal_reads as f64 / stats.steal_batches as f64,
            );
        }
        if !placement.assignments.is_empty() {
            let assignment: Vec<String> = placement
                .assignments
                .iter()
                .map(|(name, shard)| format!("{name}->s{shard}"))
                .collect();
            println!("final assignment: {}", assignment.join("  "));
        }
    }

    if let Some(conn_stats) = &report.connections {
        println!();
        println!("per-connection throughput:");
        println!("{:<12} {:>10} {:>8} {:>12}", "connection", "ops", "errors", "ops/sec");
        for (c, (ops, errs)) in conn_stats.iter().enumerate() {
            println!(
                "{:<12} {:>10} {:>8} {:>12.0}",
                c,
                ops,
                errs,
                *ops as f64 / report.wall.as_secs_f64()
            );
        }
    }

    if let Some(metrics) = &report.metrics {
        let overall_q = metrics.histogram("request_queue_wait_nanos");
        let overall_s = metrics.histogram("request_serve_nanos");
        if let (Some(q), Some(s)) = (overall_q, overall_s) {
            println!();
            println!(
                "telemetry: queue-wait / serve-time per named request (merged across shards):"
            );
            println!(
                "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "phase", "ops", "qw-p50", "qw-p99", "qw-max", "sv-p50", "sv-p99", "sv-max"
            );
            let row = |name: &str, q: &Histogram, s: &Histogram| {
                println!(
                    "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    name,
                    s.count(),
                    fmt_nanos(q.quantile(0.5)),
                    fmt_nanos(q.quantile(0.99)),
                    fmt_nanos(q.max()),
                    fmt_nanos(s.quantile(0.5)),
                    fmt_nanos(s.quantile(0.99)),
                    fmt_nanos(s.max()),
                );
            };
            if let Some(open) = &report.open {
                for (phase, (ph_q, ph_s)) in open.phases.iter().zip(&open.phase_telemetry) {
                    row(&phase.name, ph_q, ph_s);
                }
            }
            row("overall", q, s);
        }
    }

    if let Some(store) = &store {
        let c = store.counters();
        let r = store.recovery_report();
        println!();
        println!(
            "durability: {} WAL appends, {} snapshots + {} compactions, {} spills / {} \
             fault-ins, {} records replayed{}",
            c.wal_appends,
            c.snapshots,
            c.compactions,
            c.spills,
            c.fault_ins,
            c.replayed,
            if args.fsync { "  [fsync]" } else { "" }
        );
        println!(
            "recovery: {} graphs adopted, {} WAL records, {} torn tails truncated, {} \
             tombstones collected, {} orphan tmps removed",
            r.graphs, r.wal_records, r.torn_tails, r.tombstones_gcd, r.orphan_tmps
        );
    }

    let digest = fnv1a(report.log.as_bytes());
    println!();
    println!("log digest: {:#018x}  ({} log bytes)", digest, report.log.len());
    println!("(re-run with the same --seed: the digest must not change)");

    if let Some(path) = &args.dump_log {
        if let Err(e) = std::fs::write(path, &report.log) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("operation log written to {path}");
    }

    if let Some(path) = &args.json_out {
        let json =
            render_json(&args, &workload, &mut report, digest, ops_per_sec, store.as_deref());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("json report written to {path}");
    }

    if let Some(path) = &args.metrics_out {
        match &report.metrics {
            Some(metrics) => {
                if let Err(e) = std::fs::write(path, metrics.render_json()) {
                    eprintln!("error: writing {path}: {e}");
                    std::process::exit(1);
                }
                println!("metrics snapshot (cut-metrics/1) written to {path}");
            }
            None => {
                eprintln!("error: no metrics snapshot collected for --metrics-out");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.metrics_text {
        match &report.metrics {
            Some(metrics) => {
                if let Err(e) = std::fs::write(path, metrics.render_text()) {
                    eprintln!("error: writing {path}: {e}");
                    std::process::exit(1);
                }
                println!("metrics exposition (Prometheus text) written to {path}");
            }
            None => {
                eprintln!("error: no metrics snapshot collected for --metrics-text");
                std::process::exit(1);
            }
        }
    }
}

/// The index-efficiency section: how much per-request work the index
/// layer (and, when enabled, the shard workers' read batching) absorbed.
fn print_index_efficiency(stats: &EngineStats, batch: bool) {
    let idx = &stats.index;
    println!();
    println!(
        "index: csr builds={} reuses={} (reuse rate {:.1}%)  dsu fast-path={} rebuilds={} \
         resizes={}",
        idx.csr_builds,
        idx.csr_reuses,
        idx.reuse_rate() * 100.0,
        idx.dsu_fast_hits,
        idx.dsu_rebuilds,
        idx.dsu_resizes,
    );
    println!(
        "cut gate: recomputes={} certified-skips={}",
        stats.cut_recomputes, stats.cut_certified_skips,
    );
    if idx.kernel_rules_applied() + stats.kernel_cut_serves + stats.kernel_cut_fallbacks > 0 {
        println!(
            "kernel: builds={} reuses={} patches={} rules(deg1={} deg2={} heavy={}) \
             vertex-ratio={:.3}",
            idx.kernel_builds,
            idx.kernel_reuses,
            idx.kernel_patches,
            idx.kernel_rules_deg1,
            idx.kernel_rules_deg2,
            idx.kernel_rules_heavy,
            idx.kernel_vertex_ratio(),
        );
        println!(
            "kernel cuts: serves={} fallbacks={} parallel={} helpers-borrowed={}",
            stats.kernel_cut_serves,
            stats.kernel_cut_fallbacks,
            stats.kernel_parallel_cuts,
            stats.kernel_helpers_borrowed,
        );
    }

    let any_kind = stats.builds_by_kind.iter().zip(&stats.reuse_by_kind).any(|(b, r)| *b + *r > 0);
    if any_kind {
        println!("{:<16} {:>8} {:>8} {:>9}", "action", "builds", "avoided", "avoid%");
        for (kind, label) in QUERY_KINDS.iter().enumerate() {
            let (builds, avoided) = (stats.builds_by_kind[kind], stats.reuse_by_kind[kind]);
            if builds + avoided == 0 {
                continue;
            }
            println!(
                "{:<16} {:>8} {:>8} {:>8.1}%",
                label,
                builds,
                avoided,
                avoided as f64 / (builds + avoided) as f64 * 100.0,
            );
        }
    }

    if batch {
        let avg = if stats.batches == 0 {
            0.0
        } else {
            stats.batched_reads as f64 / stats.batches as f64
        };
        println!(
            "batching: {} read batches over {} reads (mean size {:.2})",
            stats.batches, stats.batched_reads, avg,
        );
        let hist: Vec<String> = BATCH_BUCKET_LABELS
            .iter()
            .zip(&stats.batch_hist)
            .filter(|(_, count)| **count > 0)
            .map(|(label, count)| format!("{label}:{count}"))
            .collect();
        println!("batch sizes: {}", if hist.is_empty() { "-".into() } else { hist.join("  ") });
    }
}

/// Per-phase open-loop measurements.
struct PhaseLatency {
    name: String,
    /// Completion − scheduled arrival, nanos, one per operation.
    lat: Vec<u64>,
    /// Queue-depth samples (in-flight count at each submission).
    depth_sum: u64,
    depth_max: u64,
    depth_samples: u64,
}

/// What the open-loop replay measured on top of the common report.
struct OpenLoopReport {
    phases: Vec<PhaseLatency>,
    /// Last scheduled arrival (the offered-load horizon).
    horizon_nanos: u64,
    /// Per-phase `(queue_wait, serve_time)` interval histograms, diffed
    /// from the metrics barriers submitted at phase boundaries — local
    /// runs only (remote phase boundaries are not cross-connection
    /// barriers, so per-phase numbers would lie). Parallel to `phases`;
    /// empty when not collected.
    phase_telemetry: Vec<(Histogram, Histogram)>,
}

/// What a replay produced, whichever execution front ran it.
struct RunReport {
    /// The deterministic `index request -> response` log.
    log: String,
    errors: usize,
    wall: std::time::Duration,
    /// Engine counters (summed across shards on the sharded path).
    stats: cut_engine::EngineStats,
    /// Per-action latency samples — single-shard closed-loop path only
    /// (per-op service timing is meaningless when ops overlap).
    latencies: Option<BTreeMap<&'static str, Vec<u64>>>,
    /// `(requests routed, final per-shard stats)` — sharded path only.
    occupancy: Option<Vec<(u64, cut_engine::EngineStats)>>,
    /// Adaptive-placement summary — sharded path only.
    placement: Option<PlacementReport>,
    /// Latency-under-load measurements — open-loop path only.
    open: Option<OpenLoopReport>,
    /// `(ops submitted, error responses)` per connection — remote path
    /// only (prologue setup is excluded from open-loop counts).
    connections: Option<Vec<(u64, u64)>>,
    /// End-of-run merged telemetry snapshot (the `stats metrics`
    /// broadcast): request lifecycle histograms plus engine/store
    /// counters. The metrics requests that produce it ride outside the
    /// digest-logged stream, so the log is byte-identical with and
    /// without collection.
    metrics: Option<Registry>,
}

/// Replay through the single-threaded `Engine::execute` path, timing each
/// op individually.
fn run_single(workload: &Workload, cfg: EngineConfig, store: Option<Arc<Store>>) -> RunReport {
    let mut engine = Engine::with_config(cfg);
    if let Some(store) = store {
        // A single engine owns every durable graph; adopt them all so a
        // re-run on a populated --data-dir resumes where the log ends.
        engine.attach_store(Arc::clone(&store) as Arc<dyn GraphStore>);
        for name in store.names() {
            engine.adopt_stored(&name);
        }
    }
    let mut log = String::with_capacity(workload.len() * 64);
    let mut latencies: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut errors = 0usize;

    let t_run = Instant::now();
    for (i, request) in workload.all_requests().enumerate() {
        let kind = request.kind();
        let t_op = Instant::now();
        let response = engine.execute(request.clone());
        let nanos = t_op.elapsed().as_nanos() as u64;
        latencies.entry(kind).or_default().push(nanos);
        if matches!(response, Response::Error { .. }) {
            errors += 1;
        }
        // The log line carries no timing, so it is identical across runs
        // with the same seed.
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }
    let wall = t_run.elapsed();
    // Snapshot outside the logged stream: the single-threaded path has no
    // worker spans, but engine and store counters still export.
    let metrics = decode_metrics(engine.execute(Request::Metrics));

    RunReport {
        log,
        errors,
        wall,
        stats: engine.stats(),
        latencies: Some(latencies),
        occupancy: None,
        placement: None,
        open: None,
        connections: None,
        metrics: Some(metrics),
    }
}

/// Replay through an N-shard `ShardedEngine`, keeping a bounded window of
/// in-flight tickets so shards overlap while memory stays flat. Responses
/// are collected in submission order, so the log (and its digest) is
/// byte-identical to the single-shard path.
fn run_sharded(workload: &Workload, shards: usize, opts: ShardOptions) -> RunReport {
    // The placement section only belongs in reports where the adaptive
    // layer was on; a plain --shards/--batch run keeps its old shape.
    let adaptive = opts.placement.rebalance || opts.placement.steal;
    /// In-flight cap: deep enough to keep every shard busy (and to give
    /// batching workers real runs to coalesce), small enough that pending
    /// tickets never hold more than a sliver of the log.
    const WINDOW: usize = 1024;

    let mut engine = ShardedEngine::with_options(shards, opts);
    let mut log = String::with_capacity(workload.len() * 64);
    let mut errors = 0usize;
    let mut inflight: VecDeque<(usize, &Request, Ticket)> = VecDeque::new();

    fn drain(entry: (usize, &Request, Ticket), log: &mut String, errors: &mut usize) {
        let (i, request, ticket) = entry;
        let response = ticket.wait();
        if matches!(response, Response::Error { .. }) {
            *errors += 1;
        }
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }

    let t_run = Instant::now();
    for (i, request) in workload.all_requests().enumerate() {
        let ticket = engine.submit(request.clone());
        inflight.push_back((i, request, ticket));
        if inflight.len() >= WINDOW {
            drain(inflight.pop_front().expect("non-empty window"), &mut log, &mut errors);
        }
    }
    while let Some(entry) = inflight.pop_front() {
        drain(entry, &mut log, &mut errors);
    }
    let wall = t_run.elapsed();
    // A metrics barrier after the last logged op: the merged snapshot
    // covers every named request of the run, and the request itself rides
    // outside the digest-logged stream.
    let metrics = decode_metrics(engine.submit(Request::Metrics).wait());

    let routed = engine.routed().to_vec();
    let placement = engine.placement_report();
    let per_shard = engine.shutdown();
    let mut stats = cut_engine::EngineStats::default();
    for s in &per_shard {
        stats.merge(s);
    }

    RunReport {
        log,
        errors,
        wall,
        stats,
        latencies: None,
        occupancy: Some(routed.into_iter().zip(per_shard).collect()),
        placement: adaptive.then_some(placement),
        open: None,
        connections: None,
        metrics: Some(metrics),
    }
}

/// Replay an open-loop workload: submit each operation at its scheduled
/// arrival regardless of engine backlog, and measure latency under load
/// (completion − scheduled arrival) per phase.
///
/// Always drives the sharded front-end (its response stream is
/// byte-identical to the plain engine at any shard count, so the digest is
/// comparable across every execution shape). A collector thread polls
/// in-flight tickets with [`Ticket::try_wait`] so completions are stamped
/// when they happen, not when an earlier slow request finally resolves.
fn run_open_loop(workload: &Workload, shards: usize, opts: ShardOptions) -> RunReport {
    assert!(workload.is_open_loop(), "open-loop replay needs an arrival schedule");
    let adaptive = opts.placement.rebalance || opts.placement.steal;
    let mut engine = ShardedEngine::with_options(shards, opts);
    let mut log = String::with_capacity(workload.len() * 64);
    let mut errors = 0usize;

    let t_run = Instant::now();
    // Prologue: closed-loop, untimed — registering the graph population is
    // setup, not offered load.
    for (i, request) in workload.prologue.iter().enumerate() {
        let response = engine.execute(request.clone());
        if matches!(response, Response::Error { .. }) {
            errors += 1;
        }
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }

    // Metrics barriers bracket each phase: a baseline after the prologue,
    // one at each phase boundary, one after the last operation. Broadcast
    // merges have Stats barrier semantics — a snapshot submitted after
    // phase k's last operation covers exactly phases <= k — so diffing
    // consecutive snapshots yields per-phase interval histograms. None of
    // these ride the logged stream: the digest is byte-identical with or
    // without them.
    let mut metric_tickets: Vec<Ticket> = vec![engine.submit(Request::Metrics)];

    // Collector: polls outstanding tickets, stamping each completion as it
    // lands; results come back keyed by operation index.
    let completed = Arc::new(AtomicU64::new(0));
    let (tx, rx) = std::sync::mpsc::channel::<(usize, u64, Ticket)>();
    let t0 = Instant::now();
    let collector = {
        let completed = Arc::clone(&completed);
        std::thread::spawn(move || {
            let mut outstanding: VecDeque<(usize, u64, Ticket)> = VecDeque::new();
            let mut done: Vec<(usize, u64, Response)> = Vec::new();
            let mut closed = false;
            loop {
                loop {
                    match rx.try_recv() {
                        Ok(item) => outstanding.push_back(item),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            closed = true;
                            break;
                        }
                    }
                }
                let mut progressed = false;
                let mut i = 0;
                while i < outstanding.len() {
                    if let Some(response) = outstanding[i].2.try_wait() {
                        let now = t0.elapsed().as_nanos() as u64;
                        let (op, sched, _) = outstanding.remove(i).expect("index in range");
                        done.push((op, now.saturating_sub(sched), response));
                        completed.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    } else {
                        i += 1;
                    }
                }
                if closed && outstanding.is_empty() {
                    return done;
                }
                if !progressed {
                    // Nothing landed this sweep: park on the oldest
                    // outstanding ticket instead of hot-polling — the
                    // recv wakes the instant that answer arrives, so its
                    // stamp stays exact, and the timeout bounds staleness
                    // for answers landing on younger tickets.
                    if let Some(front) = outstanding.front_mut() {
                        if let Some(response) = front.2.wait_timeout(COLLECTOR_PARK) {
                            let now = t0.elapsed().as_nanos() as u64;
                            let (op, sched, _) = outstanding.pop_front().expect("non-empty");
                            done.push((op, now.saturating_sub(sched), response));
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        // Queue empty, pacer still running: block for the
                        // next submission rather than spinning on try_recv.
                        match rx.recv_timeout(COLLECTOR_PARK) {
                            Ok(item) => outstanding.push_back(item),
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => closed = true,
                        }
                    }
                }
            }
        })
    };

    // Pace the submissions against the schedule.
    let mut phases: Vec<PhaseLatency> = workload
        .phases
        .iter()
        .map(|(name, ops)| PhaseLatency {
            name: name.clone(),
            lat: Vec::with_capacity(*ops),
            depth_sum: 0,
            depth_max: 0,
            depth_samples: 0,
        })
        .collect();
    let mut cur_phase = 0usize;
    for (op, request) in workload.operations.iter().enumerate() {
        if let Some(p) = workload.phase_of(op) {
            // Entering a new phase: snapshot the end of every phase
            // crossed (empty phases get a duplicate boundary).
            for _ in cur_phase..p {
                metric_tickets.push(engine.submit(Request::Metrics));
            }
            cur_phase = p;
        }
        let sched = workload.arrivals[op];
        loop {
            let now = t0.elapsed().as_nanos() as u64;
            if now >= sched {
                break;
            }
            let wait = sched - now;
            if wait > 100_000 {
                std::thread::sleep(Duration::from_nanos(wait - 50_000));
            } else {
                std::hint::spin_loop();
            }
        }
        let ticket = engine.submit(request.clone());
        tx.send((op, sched, ticket)).expect("collector alive until sender drops");
        let depth = (op as u64 + 1).saturating_sub(completed.load(Ordering::Relaxed));
        if let Some(p) = workload.phase_of(op) {
            phases[p].depth_sum += depth;
            phases[p].depth_max = phases[p].depth_max.max(depth);
            phases[p].depth_samples += 1;
        }
    }
    // End-of-run snapshots for the last phase (and any trailing empty
    // ones), keeping one end snapshot per phase plus the baseline.
    for _ in cur_phase..phases.len() {
        metric_tickets.push(engine.submit(Request::Metrics));
    }
    drop(tx);
    let mut done = collector.join().expect("collector thread panicked");
    let wall = t_run.elapsed();
    let snapshots: Vec<Registry> =
        metric_tickets.into_iter().map(|t| decode_metrics(t.wait())).collect();

    // Assemble the log in submission order and bucket latencies per phase.
    done.sort_unstable_by_key(|(op, _, _)| *op);
    let base = workload.prologue.len();
    for (op, latency, response) in done {
        if matches!(response, Response::Error { .. }) {
            errors += 1;
        }
        let request = &workload.operations[op];
        log.push_str(&format!("{:06} {request} -> {response}\n", base + op));
        if let Some(p) = workload.phase_of(op) {
            phases[p].lat.push(latency);
        }
    }

    // Phase k's interval histograms: end-of-k snapshot minus end-of-(k-1)
    // (the baseline for phase 0, which therefore excludes the prologue).
    let hist = |r: &Registry, name: &str| r.histogram(name).cloned().unwrap_or_default();
    let phase_telemetry: Vec<(Histogram, Histogram)> = (0..phases.len())
        .map(|k| {
            let (before, after) = (&snapshots[k], &snapshots[k + 1]);
            (
                hist(after, "request_queue_wait_nanos")
                    .diff(&hist(before, "request_queue_wait_nanos")),
                hist(after, "request_serve_nanos").diff(&hist(before, "request_serve_nanos")),
            )
        })
        .collect();

    let routed = engine.routed().to_vec();
    let placement = engine.placement_report();
    let per_shard = engine.shutdown();
    let mut stats = cut_engine::EngineStats::default();
    for s in &per_shard {
        stats.merge(s);
    }

    RunReport {
        log,
        errors,
        wall,
        stats,
        latencies: None,
        occupancy: Some(routed.into_iter().zip(per_shard).collect()),
        placement: adaptive.then_some(placement),
        open: Some(OpenLoopReport {
            phases,
            horizon_nanos: workload.arrivals.last().copied().unwrap_or(0),
            phase_telemetry,
        }),
        connections: None,
        metrics: snapshots.last().cloned(),
    }
}

/// Abort a remote run: a [`ClientError`] means the connection (or the
/// server) is gone, and the response stream — hence the log and digest —
/// can no longer be completed truthfully.
fn fatal_remote(op: usize, e: &ClientError) -> ! {
    eprintln!("error: remote run failed at op {op}: {e}");
    std::process::exit(1);
}

/// Which connection serves `request`: per-graph affinity via the same
/// FNV-1a trick the shard router uses, so every request touching a graph
/// rides one connection and per-graph ordering survives the fan-out.
/// Broadcasts (`list`, `stats` and its `metrics`/`slowlog` subcommands)
/// ride connection 0. At `connections == 1` the whole stream shares one
/// pipeline and the response log is byte-identical to an in-process run.
fn conn_for(request: &Request, connections: usize) -> usize {
    if connections <= 1 {
        return 0;
    }
    match request {
        Request::Create { name, .. }
        | Request::Drop { name }
        | Request::Mutate { name, .. }
        | Request::Query { name, .. } => (fnv1a(name.as_bytes()) % connections as u64) as usize,
        Request::ListGraphs | Request::Stats | Request::Metrics | Request::Slowlog => 0,
    }
}

/// Dial `connections` sockets, retrying with backoff so a freshly
/// backgrounded `cut-server` has time to bind (the CI loopback pattern).
fn open_connections(addr: &str, connections: usize) -> Vec<Connection> {
    let policy = ReconnectPolicy {
        attempts: 8,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(1),
    };
    (0..connections)
        .map(|c| {
            Connection::connect_with_retry(addr, &policy).unwrap_or_else(|e| {
                eprintln!("error: connecting to {addr} (connection {c}): {e}");
                std::process::exit(1);
            })
        })
        .collect()
}

/// Closed-loop replay against a remote `cut-server`: the same bounded
/// in-flight window as [`run_sharded`], but tickets resolve over the
/// wire. Responses are drained in global submission order (each
/// connection's stream is in-order, so cross-connection waits are safe).
fn run_remote_closed(workload: &Workload, addr: &str, connections: usize) -> RunReport {
    /// Same depth as the in-process window: deep enough to keep the
    /// server's shards busy across the network, bounded so client memory
    /// stays flat.
    const WINDOW: usize = 1024;

    fn drain_one(
        inflight: &mut VecDeque<(usize, &Request, usize, RemoteTicket)>,
        log: &mut String,
        errors: &mut usize,
        conn_stats: &mut [(u64, u64)],
    ) {
        let (i, request, c, ticket) = inflight.pop_front().expect("non-empty window");
        let response = ticket.wait().unwrap_or_else(|e| fatal_remote(i, &e));
        if matches!(response, Response::Error { .. }) {
            *errors += 1;
            conn_stats[c].1 += 1;
        }
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }

    let mut conns = open_connections(addr, connections);
    let mut log = String::with_capacity(workload.len() * 64);
    let mut errors = 0usize;
    let mut conn_stats = vec![(0u64, 0u64); connections];
    let mut inflight: VecDeque<(usize, &Request, usize, RemoteTicket)> = VecDeque::new();

    let t_run = Instant::now();
    for (i, request) in workload.all_requests().enumerate() {
        let c = conn_for(request, connections);
        let ticket = conns[c].submit(request).unwrap_or_else(|e| fatal_remote(i, &e));
        conn_stats[c].0 += 1;
        inflight.push_back((i, request, c, ticket));
        if inflight.len() >= WINDOW {
            drain_one(&mut inflight, &mut log, &mut errors, &mut conn_stats);
        }
    }
    while !inflight.is_empty() {
        drain_one(&mut inflight, &mut log, &mut errors, &mut conn_stats);
    }
    let wall = t_run.elapsed();
    // The server-merged telemetry snapshot, fetched after the last logged
    // op so its histograms cover the whole run (and never enter the log).
    let last = workload.len();
    let metrics = decode_metrics(
        conns[0].execute(&Request::Metrics).unwrap_or_else(|e| fatal_remote(last, &e)),
    );
    for conn in conns {
        conn.close();
    }

    RunReport {
        log,
        errors,
        wall,
        stats: EngineStats::default(),
        latencies: None,
        occupancy: None,
        placement: None,
        open: None,
        connections: Some(conn_stats),
        metrics: Some(metrics),
    }
}

/// Open-loop replay against a remote `cut-server`: the same paced
/// schedule as [`run_open_loop`], but submissions fan out over real
/// sockets and the measured latency is *end-to-end client-observed*
/// (response line parsed at the client − scheduled arrival).
///
/// The collector exploits per-connection response ordering: only each
/// connection's head ticket can land next, so it sweeps the heads
/// non-blockingly and, when nothing lands, parks on the oldest head via
/// [`RemoteTicket::wait_timeout`] instead of hot-polling.
fn run_remote_open(workload: &Workload, addr: &str, connections: usize) -> RunReport {
    assert!(workload.is_open_loop(), "open-loop replay needs an arrival schedule");
    let mut conns = open_connections(addr, connections);
    let mut log = String::with_capacity(workload.len() * 64);
    let mut errors = 0usize;
    let mut conn_stats = vec![(0u64, 0u64); connections];

    let t_run = Instant::now();
    // Prologue: serial and untimed — every graph must exist before the
    // paced stream begins, whichever connection its operations ride.
    for (i, request) in workload.prologue.iter().enumerate() {
        let c = conn_for(request, connections);
        let response = conns[c].execute(request).unwrap_or_else(|e| fatal_remote(i, &e));
        if matches!(response, Response::Error { .. }) {
            errors += 1;
        }
        log.push_str(&format!("{i:06} {request} -> {response}\n"));
    }

    let completed = Arc::new(AtomicU64::new(0));
    let (tx, rx) = std::sync::mpsc::channel::<(usize, u64, usize, RemoteTicket)>();
    let t0 = Instant::now();
    let collector = {
        let completed = Arc::clone(&completed);
        std::thread::spawn(move || {
            let mut queues: Vec<VecDeque<(usize, u64, RemoteTicket)>> =
                (0..connections).map(|_| VecDeque::new()).collect();
            let mut outstanding = 0usize;
            let mut done: Vec<(usize, usize, u64, Response)> = Vec::new();
            let mut closed = false;
            let settle = |entry: (usize, u64, RemoteTicket),
                          c: usize,
                          result: Result<Response, ClientError>,
                          done: &mut Vec<(usize, usize, u64, Response)>| {
                let now = t0.elapsed().as_nanos() as u64;
                let (op, sched, _ticket) = entry;
                let response = result.unwrap_or_else(|e| fatal_remote(op, &e));
                done.push((op, c, now.saturating_sub(sched), response));
                completed.fetch_add(1, Ordering::Relaxed);
            };
            loop {
                loop {
                    match rx.try_recv() {
                        Ok((op, sched, c, ticket)) => {
                            queues[c].push_back((op, sched, ticket));
                            outstanding += 1;
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            closed = true;
                            break;
                        }
                    }
                }
                let mut progressed = false;
                for (c, queue) in queues.iter_mut().enumerate() {
                    // In-order responses: only the head can land next.
                    while let Some(head) = queue.front_mut() {
                        let Some(result) = head.2.try_wait() else { break };
                        let entry = queue.pop_front().expect("non-empty queue");
                        outstanding -= 1;
                        settle(entry, c, result, &mut done);
                        progressed = true;
                    }
                }
                if closed && outstanding == 0 {
                    return done;
                }
                if !progressed {
                    // Park on the oldest head across connections — the
                    // recv wakes the instant that response arrives, so
                    // its stamp stays exact; heads of other connections
                    // wait at most one park interval for their sweep.
                    let oldest = (0..queues.len())
                        .filter(|&c| !queues[c].is_empty())
                        .min_by_key(|&c| queues[c].front().expect("non-empty queue").0);
                    match oldest {
                        Some(c) => {
                            let waited = queues[c]
                                .front_mut()
                                .expect("non-empty queue")
                                .2
                                .wait_timeout(COLLECTOR_PARK);
                            if let Some(result) = waited {
                                let entry = queues[c].pop_front().expect("non-empty queue");
                                outstanding -= 1;
                                settle(entry, c, result, &mut done);
                            }
                        }
                        // Nothing outstanding: block for the next
                        // submission rather than spinning on try_recv.
                        None => match rx.recv_timeout(COLLECTOR_PARK) {
                            Ok((op, sched, c, ticket)) => {
                                queues[c].push_back((op, sched, ticket));
                                outstanding += 1;
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => closed = true,
                        },
                    }
                }
            }
        })
    };

    // Pace the submissions against the schedule (same as the local path).
    let mut phases: Vec<PhaseLatency> = workload
        .phases
        .iter()
        .map(|(name, ops)| PhaseLatency {
            name: name.clone(),
            lat: Vec::with_capacity(*ops),
            depth_sum: 0,
            depth_max: 0,
            depth_samples: 0,
        })
        .collect();
    for (op, request) in workload.operations.iter().enumerate() {
        let sched = workload.arrivals[op];
        loop {
            let now = t0.elapsed().as_nanos() as u64;
            if now >= sched {
                break;
            }
            let wait = sched - now;
            if wait > 100_000 {
                std::thread::sleep(Duration::from_nanos(wait - 50_000));
            } else {
                std::hint::spin_loop();
            }
        }
        let c = conn_for(request, connections);
        let ticket = conns[c].submit(request).unwrap_or_else(|e| fatal_remote(op, &e));
        conn_stats[c].0 += 1;
        tx.send((op, sched, c, ticket)).expect("collector alive until sender drops");
        let depth = (op as u64 + 1).saturating_sub(completed.load(Ordering::Relaxed));
        if let Some(p) = workload.phase_of(op) {
            phases[p].depth_sum += depth;
            phases[p].depth_max = phases[p].depth_max.max(depth);
            phases[p].depth_samples += 1;
        }
    }
    drop(tx);
    let mut done = collector.join().expect("collector thread panicked");
    let wall = t_run.elapsed();
    // Overall server-merged snapshot only: a phase boundary on connection
    // 0 is not a barrier for requests in flight on other connections, so
    // per-phase telemetry would lie here — remote runs report the
    // end-of-run merge and leave the per-phase split to local runs.
    let last = workload.len();
    let metrics = decode_metrics(
        conns[0].execute(&Request::Metrics).unwrap_or_else(|e| fatal_remote(last, &e)),
    );
    for conn in conns {
        conn.close();
    }

    // Assemble the log in submission order and bucket latencies per phase.
    done.sort_unstable_by_key(|&(op, _, _, _)| op);
    let base = workload.prologue.len();
    for (op, c, latency, response) in done {
        if matches!(response, Response::Error { .. }) {
            errors += 1;
            conn_stats[c].1 += 1;
        }
        let request = &workload.operations[op];
        log.push_str(&format!("{:06} {request} -> {response}\n", base + op));
        if let Some(p) = workload.phase_of(op) {
            phases[p].lat.push(latency);
        }
    }

    RunReport {
        log,
        errors,
        wall,
        stats: EngineStats::default(),
        latencies: None,
        occupancy: None,
        placement: None,
        open: Some(OpenLoopReport {
            phases,
            horizon_nanos: workload.arrivals.last().copied().unwrap_or(0),
            phase_telemetry: Vec::new(),
        }),
        connections: Some(conn_stats),
        metrics: Some(metrics),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// enough for graph/mix/addr/path strings; no external dependency.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt_str(s: Option<&String>) -> String {
    s.map(|v| json_str(v)).unwrap_or_else(|| "null".to_string())
}

/// One histogram as a compact JSON percentile summary (the full bucket
/// vector lives in the `--metrics-out` cut-metrics/1 artifact; the stress
/// report only carries the digested view).
fn json_hist(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_nanos\": {}, \"p90_nanos\": {}, \"p99_nanos\": {}, \
         \"max_nanos\": {}}}",
        h.count(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
        h.max()
    )
}

/// Render the whole run as the `cut-stress/1` JSON artifact (`--json-out`).
/// Sections that the execution path did not measure are `null`, so the
/// schema is identical for local and remote, closed- and open-loop runs.
fn render_json(
    args: &Args,
    workload: &Workload,
    report: &mut RunReport,
    digest: u64,
    ops_per_sec: f64,
    store: Option<&Store>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"cut-stress/1\",\n");

    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"trace_in\": {},\n", json_opt_str(args.trace_in.as_ref())));
    out.push_str(&format!("    \"ops\": {},\n", args.ops));
    out.push_str(&format!("    \"seed\": {},\n", args.seed));
    out.push_str(&format!("    \"graphs\": {},\n", args.graphs));
    out.push_str(&format!("    \"initial_n\": {},\n", args.initial_n));
    out.push_str(&format!("    \"zipf\": {},\n", args.zipf));
    out.push_str(&format!("    \"mix\": {},\n", json_str(&args.mix_name)));
    out.push_str(&format!("    \"shards\": {},\n", args.shards));
    out.push_str(&format!("    \"batch\": {},\n", args.batch));
    out.push_str(&format!("    \"rebalance\": {},\n", args.rebalance));
    out.push_str(&format!("    \"rebalance_window\": {},\n", args.rebalance_window));
    out.push_str(&format!("    \"steal\": {},\n", args.steal));
    out.push_str(&format!("    \"latency_proxy\": {},\n", args.latency_proxy));
    out.push_str(&format!("    \"arrival\": {},\n", json_str(&format!("{:?}", args.arrival))));
    out.push_str(&format!("    \"phases\": {},\n", json_str(&args.phases)));
    out.push_str(&format!("    \"cache_entries\": {},\n", args.cache_entries));
    out.push_str(&format!("    \"dynconn\": {},\n", !args.no_dynconn));
    out.push_str(&format!("    \"kernel\": {},\n", args.kernel));
    out.push_str(&format!("    \"kernel_threshold\": {},\n", args.kernel_threshold));
    out.push_str(&format!("    \"remote\": {},\n", json_opt_str(args.remote.as_ref())));
    out.push_str(&format!(
        "    \"connections\": {}\n",
        if args.remote.is_some() { args.connections.to_string() } else { "null".to_string() }
    ));
    out.push_str("  },\n");

    out.push_str("  \"totals\": {\n");
    out.push_str(&format!("    \"ops\": {},\n", workload.len()));
    out.push_str(&format!("    \"wall_nanos\": {},\n", report.wall.as_nanos()));
    out.push_str(&format!("    \"ops_per_sec\": {ops_per_sec:.1},\n"));
    out.push_str(&format!("    \"errors\": {}\n", report.errors));
    out.push_str("  },\n");
    out.push_str(&format!("  \"digest\": {},\n", json_str(&format!("{digest:#018x}"))));
    out.push_str(&format!("  \"log_bytes\": {},\n", report.log.len()));

    // Engine-side counters are only truthful when the engine ran in this
    // process; a remote run reports them as null (they live server-side).
    if args.remote.is_some() {
        out.push_str("  \"cache\": null,\n");
    } else {
        let s = &report.stats;
        out.push_str("  \"cache\": {\n");
        out.push_str(&format!("    \"queries\": {},\n", s.queries));
        out.push_str(&format!("    \"mutations\": {},\n", s.mutations));
        out.push_str(&format!("    \"hits\": {},\n", s.cache_hits));
        out.push_str(&format!("    \"misses\": {},\n", s.cache_misses));
        out.push_str(&format!("    \"hit_rate\": {:.4},\n", s.hit_rate()));
        out.push_str(&format!("    \"lru_evictions\": {},\n", s.index.lru_evictions));
        out.push_str(&format!("    \"csr_builds\": {},\n", s.index.csr_builds));
        out.push_str(&format!("    \"csr_reuses\": {},\n", s.index.csr_reuses));
        out.push_str(&format!("    \"dsu_fast_hits\": {},\n", s.index.dsu_fast_hits));
        out.push_str(&format!("    \"dsu_rebuilds\": {},\n", s.index.dsu_rebuilds));
        out.push_str(&format!("    \"dsu_resizes\": {},\n", s.index.dsu_resizes));
        out.push_str(&format!("    \"cut_recomputes\": {},\n", s.cut_recomputes));
        out.push_str(&format!("    \"cut_certified_skips\": {},\n", s.cut_certified_skips));
        out.push_str(&format!("    \"batches\": {},\n", s.batches));
        out.push_str(&format!("    \"batched_reads\": {},\n", s.batched_reads));
        out.push_str(&format!("    \"cross_batches\": {},\n", s.cross_batches));
        out.push_str(&format!("    \"kernel_builds\": {},\n", s.index.kernel_builds));
        out.push_str(&format!("    \"kernel_reuses\": {},\n", s.index.kernel_reuses));
        out.push_str(&format!("    \"kernel_patches\": {},\n", s.index.kernel_patches));
        out.push_str(&format!(
            "    \"kernel_rules_applied\": {},\n",
            s.index.kernel_rules_applied()
        ));
        out.push_str(&format!(
            "    \"kernel_vertex_ratio\": {:.4},\n",
            s.index.kernel_vertex_ratio()
        ));
        out.push_str(&format!("    \"kernel_cut_serves\": {},\n", s.kernel_cut_serves));
        out.push_str(&format!("    \"kernel_cut_fallbacks\": {},\n", s.kernel_cut_fallbacks));
        out.push_str(&format!("    \"kernel_parallel_cuts\": {},\n", s.kernel_parallel_cuts));
        out.push_str(&format!("    \"kernel_helpers_borrowed\": {}\n", s.kernel_helpers_borrowed));
        out.push_str("  },\n");
    }

    match &mut report.latencies {
        Some(latencies) => {
            out.push_str("  \"actions\": [\n");
            let last = latencies.len().saturating_sub(1);
            for (row, (kind, nanos)) in latencies.iter_mut().enumerate() {
                nanos.sort_unstable();
                let total: u64 = nanos.iter().sum();
                out.push_str(&format!(
                    "    {{\"action\": {}, \"count\": {}, \"p50_nanos\": {}, \"p90_nanos\": {}, \
                     \"p99_nanos\": {}, \"max_nanos\": {}, \"total_nanos\": {}}}{}\n",
                    json_str(kind),
                    nanos.len(),
                    percentile(nanos, 50.0),
                    percentile(nanos, 90.0),
                    percentile(nanos, 99.0),
                    nanos.last().copied().unwrap_or(0),
                    total,
                    if row == last { "" } else { "," },
                ));
            }
            out.push_str("  ],\n");
        }
        None => out.push_str("  \"actions\": null,\n"),
    }

    match &mut report.open {
        Some(open) => {
            out.push_str("  \"open_loop\": {\n");
            out.push_str(&format!("    \"horizon_nanos\": {},\n", open.horizon_nanos));
            out.push_str("    \"phases\": [\n");
            let last = open.phases.len().saturating_sub(1);
            for (row, phase) in open.phases.iter_mut().enumerate() {
                phase.lat.sort_unstable();
                let q_mean = if phase.depth_samples == 0 {
                    0.0
                } else {
                    phase.depth_sum as f64 / phase.depth_samples as f64
                };
                out.push_str(&format!(
                    "      {{\"name\": {}, \"ops\": {}, \"p50_nanos\": {}, \"p95_nanos\": {}, \
                     \"p99_nanos\": {}, \"max_nanos\": {}, \"queue_depth_mean\": {:.2}, \
                     \"queue_depth_max\": {}}}{}\n",
                    json_str(&phase.name),
                    phase.lat.len(),
                    percentile(&phase.lat, 50.0),
                    percentile(&phase.lat, 95.0),
                    percentile(&phase.lat, 99.0),
                    phase.lat.last().copied().unwrap_or(0),
                    q_mean,
                    phase.depth_max,
                    if row == last { "" } else { "," },
                ));
            }
            out.push_str("    ]\n  },\n");
        }
        None => out.push_str("  \"open_loop\": null,\n"),
    }

    match &report.occupancy {
        Some(occupancy) => {
            out.push_str("  \"occupancy\": [\n");
            let last = occupancy.len().saturating_sub(1);
            for (shard, (routed, s)) in occupancy.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"shard\": {shard}, \"routed\": {routed}, \"serve_nanos\": {}, \
                     \"queries\": {}, \"mutations\": {}, \"hit_rate\": {:.4}, \
                     \"migrations_in\": {}, \"migrations_out\": {}, \"steal_batches\": {}}}{}\n",
                    s.serve_nanos,
                    s.queries,
                    s.mutations,
                    s.hit_rate(),
                    s.migrations_in,
                    s.migrations_out,
                    s.steal_batches,
                    if shard == last { "" } else { "," },
                ));
            }
            out.push_str("  ],\n");
        }
        None => out.push_str("  \"occupancy\": null,\n"),
    }

    match &report.placement {
        Some(p) => out.push_str(&format!(
            "  \"placement\": {{\"rebalances\": {}, \"migrations\": {}, \"generation\": {}}},\n",
            p.rebalances, p.migrations, p.generation
        )),
        None => out.push_str("  \"placement\": null,\n"),
    }

    // Request-lifecycle telemetry from the end-of-run `stats metrics`
    // snapshot; null when the path records no worker spans (the
    // single-threaded local front). Per-phase interval histograms exist
    // only for local open-loop runs (see `OpenLoopReport`).
    let span_hists = report.metrics.as_ref().and_then(|m| {
        Some((m.histogram("request_queue_wait_nanos")?, m.histogram("request_serve_nanos")?))
    });
    match span_hists {
        Some((q, s)) => {
            out.push_str("  \"telemetry\": {\n");
            out.push_str(&format!("    \"queue_wait\": {},\n", json_hist(q)));
            out.push_str(&format!("    \"serve\": {},\n", json_hist(s)));
            match &report.open {
                Some(open) if !open.phase_telemetry.is_empty() => {
                    out.push_str("    \"phases\": [\n");
                    let last = open.phase_telemetry.len().saturating_sub(1);
                    for (row, (phase, (ph_q, ph_s))) in
                        open.phases.iter().zip(&open.phase_telemetry).enumerate()
                    {
                        out.push_str(&format!(
                            "      {{\"name\": {}, \"queue_wait\": {}, \"serve\": {}}}{}\n",
                            json_str(&phase.name),
                            json_hist(ph_q),
                            json_hist(ph_s),
                            if row == last { "" } else { "," },
                        ));
                    }
                    out.push_str("    ]\n");
                }
                _ => out.push_str("    \"phases\": null\n"),
            }
            out.push_str("  },\n");
        }
        None => out.push_str("  \"telemetry\": null,\n"),
    }

    // Durability counters live with the store; a remote run (or a run
    // without --data-dir) reports both sections as null. Same schema
    // either way, so downstream tooling never branches on shape.
    match store {
        Some(store) => {
            let c = store.counters();
            let r = store.recovery_report();
            out.push_str("  \"durability\": {\n");
            out.push_str(&format!("    \"wal_appends\": {},\n", c.wal_appends));
            out.push_str(&format!("    \"snapshots\": {},\n", c.snapshots));
            out.push_str(&format!("    \"compactions\": {},\n", c.compactions));
            out.push_str(&format!("    \"spills\": {},\n", c.spills));
            out.push_str(&format!("    \"fault_ins\": {},\n", c.fault_ins));
            out.push_str(&format!("    \"replayed_records\": {},\n", c.replayed));
            out.push_str(&format!("    \"fsync\": {}\n", args.fsync));
            out.push_str("  },\n");
            out.push_str("  \"recovery\": {\n");
            out.push_str(&format!("    \"graphs\": {},\n", r.graphs));
            out.push_str(&format!("    \"wal_records\": {},\n", r.wal_records));
            out.push_str(&format!("    \"torn_tails\": {},\n", r.torn_tails));
            out.push_str(&format!("    \"tombstones_gcd\": {},\n", r.tombstones_gcd));
            out.push_str(&format!("    \"orphan_tmps\": {}\n", r.orphan_tmps));
            out.push_str("  },\n");
        }
        None => {
            out.push_str("  \"durability\": null,\n");
            out.push_str("  \"recovery\": null,\n");
        }
    }

    match &report.connections {
        Some(conn_stats) => {
            out.push_str("  \"connections\": [\n");
            let last = conn_stats.len().saturating_sub(1);
            for (c, (ops, errs)) in conn_stats.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"connection\": {c}, \"ops\": {ops}, \"errors\": {errs}, \
                     \"ops_per_sec\": {:.1}}}{}\n",
                    *ops as f64 / report.wall.as_secs_f64(),
                    if c == last { "" } else { "," },
                ));
            }
            out.push_str("  ]\n");
        }
        None => out.push_str("  \"connections\": null\n"),
    }

    out.push_str("}\n");
    out
}
