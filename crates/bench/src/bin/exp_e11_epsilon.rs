//! E11 (ablation) — the ε knob: local memory `N^ε` vs rounds.
//!
//! The model's whole premise is trading machine memory for rounds:
//! `O(1/ε)`-round primitives walk `N^ε`-hop chains per round. Expect
//! rounds to *fall* as ε grows (bigger adaptive budget), for the same
//! outputs; and the ε_approx knob of the schedule to trade branching
//! (work) against levels.

use ampc_model::{AmpcConfig, Executor};
use cut_bench::{f2, header, rng_for, row};
use cut_graph::gen;
use mincut_core::mincut::MinCutOptions;
use mincut_core::model::ampc_smallest_singleton_cut;
use mincut_core::priorities::exponential_priorities;

fn main() {
    println!("## E11 (ablation) — memory exponent ε vs rounds\n");
    let n = 2048usize;
    let mut rng = rng_for("e11", 0);
    let g = gen::connected_gnm(n, 3 * n, 1..=8, &mut rng);
    let prio = exponential_priorities(&g, &mut rng);

    println!("### A. singleton tracking rounds vs ε (n={n})\n");
    header(&["eps", "local capacity N^eps", "tracking rounds", "MSF rounds", "weight"]);
    let mut last = usize::MAX;
    for eps in [0.3f64, 0.5, 0.7, 0.9] {
        let cfg = AmpcConfig::new(n, eps);
        let cap = cfg.local_capacity();
        let mut exec = Executor::new(cfg);
        let rep = ampc_smallest_singleton_cut(&mut exec, &g, &prio);
        row(&[
            f2(eps),
            cap.to_string(),
            rep.tracking_rounds.to_string(),
            rep.mst_rounds.to_string(),
            rep.cut.weight.to_string(),
        ]);
        assert!(
            rep.tracking_rounds <= last.saturating_add(6),
            "rounds should fall (or stay flat) as eps grows"
        );
        last = rep.tracking_rounds;
    }

    println!("\n### B. approximation-ε vs schedule shape (levels × branching)\n");
    header(&["eps_approx", "levels(n=2^20)", "branch at t=100"]);
    for eps in [0.2f64, 0.5, 0.9] {
        let opts = MinCutOptions { epsilon: eps, base_size: 32, repetitions: 1, seed: 0 };
        let levels = mincut_core::mincut::schedule_levels(1 << 20, &opts);
        let (branch, _) = opts.schedule(100.0);
        row(&[f2(eps), levels.to_string(), branch.to_string()]);
    }
    println!("\nShape check: rounds decrease in memory-ε; larger approximation-ε");
    println!("contracts faster (fewer levels) at the cost of a weaker bound.");
}
