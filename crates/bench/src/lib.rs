//! Shared helpers for the experiment binaries (`src/bin/exp_*.rs`) and
//! criterion benches. See DESIGN.md §4 for the experiment index.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deterministic RNG for a named experiment and trial.
pub fn rng_for(experiment: &str, trial: u64) -> SmallRng {
    let h = cut_graph::hash::fnv1a(experiment.as_bytes());
    SmallRng::seed_from_u64(h ^ trial.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Print a markdown table header.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Print a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: u64 = rng_for("e1", 0).gen();
        let b: u64 = rng_for("e1", 0).gen();
        let c: u64 = rng_for("e2", 0).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
