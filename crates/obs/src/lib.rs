//! `cut_obs` — deterministic telemetry substrate for the cut engine.
//!
//! The engine's determinism contract (response streams byte-identical at
//! every shard count) forbids telemetry that feeds measurements back into
//! behaviour. This crate therefore separates the two concerns that usually
//! get tangled:
//!
//! - **What happened** (counters, histogram bucket occupancy, span
//!   attribution) is recorded shard-locally with plain `&mut` mutation —
//!   no locks, no atomics on the hot path — and combined only at
//!   introspection time through explicit [`Registry::merge`] /
//!   [`SlowLog::merge`], mirroring how `EngineStats` has always merged.
//! - **When it happened** flows through a pluggable [`Clock`].
//!   [`MonotonicClock`] reads real time in production; [`TestClock`] hands
//!   out consecutive integers so span arithmetic (queue wait + serve time
//!   == wall time) is exact and assertable under test.
//!
//! Snapshots cross thread and wire boundaries as single-line strings
//! ([`Registry::to_wire`] / [`SlowLog::to_wire`]): the same codec backs the
//! `stats\tmetrics` broadcast merge in `cut_engine` and the `cut/1` network
//! protocol, so there is exactly one serialised form to keep honest.
//! Human-facing expositions are derived views: [`Registry::render_text`]
//! (Prometheus text format) and [`Registry::render_json`] (`cut-metrics/1`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Version tag leading every serialised registry snapshot.
pub const METRICS_WIRE_VERSION: &str = "cut-metrics/1";
/// Version tag leading every serialised slow-log snapshot.
pub const SLOWLOG_WIRE_VERSION: &str = "cut-slowlog/1";

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// Source of span timestamps, in nanoseconds from an arbitrary origin.
///
/// Only differences of readings are ever interpreted, so the origin is
/// private to each clock instance. Implementations must be monotone
/// non-decreasing per instance; they need not be steady across instances.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current reading in nanoseconds since this clock's origin.
    fn now(&self) -> u64;
}

/// Production clock: wall-independent monotonic time via [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic counting clock for tests: every reading is the previous
/// reading plus one, starting from zero. Two readings are never equal, and
/// the k-th reading taken process-wide through one instance is exactly k.
#[derive(Debug, Default)]
pub struct TestClock {
    ticks: AtomicU64,
}

impl TestClock {
    pub fn new() -> Self {
        TestClock { ticks: AtomicU64::new(0) }
    }
}

impl Clock for TestClock {
    fn now(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of buckets in every histogram: bucket 0 holds the value 0 and
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, so the full `u64`
/// range is covered with no configuration and `merge` is plain addition.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-bucket log2-scale histogram of `u64` samples (typically
/// nanoseconds). Identical bucket layout everywhere makes `merge`
/// associative and commutative by construction, which the broadcast
/// merge in the engine relies on.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .finish()
    }
}

/// Index of the bucket holding `value`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { counts: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample. No allocation, no branching beyond the bucket
    /// index computation.
    pub fn observe(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket occupancy.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Fold `other` into `self`: bucket-wise addition plus count/sum/extrema.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// The interval histogram between `self` (a later cumulative snapshot)
    /// and an `earlier` snapshot of the same series: bucket-wise
    /// subtraction plus count/sum. An interval's true extrema are not
    /// recoverable from two cumulative snapshots, so `min`/`max` are
    /// re-derived from the occupied bucket bounds — exact to within one
    /// bucket width, the same promise `quantile` makes.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (later, old)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            let d = later.saturating_sub(*old);
            out.counts[i] = d;
            if d > 0 {
                out.min = out.min.min(bucket_lower(i));
                out.max = out.max.max(bucket_upper(i).min(self.max));
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Approximate quantile `q` in `[0.0, 1.0]`: the midpoint of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the observed extrema. Exact to within one bucket width (a factor of
    /// two), which is all a log-scale layout can promise; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min(), self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Shard-local metrics registry: named counters, gauges, and histograms.
///
/// Ownership model mirrors `EngineStats`: each worker owns one registry
/// outright and mutates it through `&mut self`; cross-shard views exist
/// only as merged snapshots taken at a barrier. There is deliberately no
/// interior mutability anywhere in this type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `by` to the named counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Set the named gauge to `value` (last write wins; merge sums).
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record `value` into the named histogram, creating it empty first.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`. Counters and gauges add (a gauge merged
    /// across shards reads as the fleet total, e.g. resident graphs);
    /// histograms merge bucket-wise. Associative and commutative, so the
    /// broadcast merge may combine shard partials in any grouping.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot += *v;
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    // -- expositions --------------------------------------------------------

    /// Prometheus text exposition (text/plain version 0.0.4 shape):
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`. Empty buckets
    /// are elided except the mandatory `+Inf` bound.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in hist.buckets().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_upper(i));
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        out
    }

    /// `cut-metrics/1` JSON exposition. Histogram buckets appear as
    /// `[lower, upper, count]` triples for occupied buckets only, so the
    /// document is exact (no cumulative reconstruction needed) and compact.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"format\": \"cut-metrics/1\",\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {value}", json_escape(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {value}", json_escape(name));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_escape(name),
                hist.count(),
                hist.sum(),
                hist.min(),
                hist.max()
            );
            let mut first = true;
            for (b, &c) in hist.buckets().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "[{}, {}, {c}]", bucket_lower(b), bucket_upper(b));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    // -- wire codec ---------------------------------------------------------

    /// Single-line canonical form, suitable for embedding in a `cut/1`
    /// response token after percent-encoding. Layout:
    ///
    /// ```text
    /// cut-metrics/1 c <n> (<name> <val>)* g <n> (<name> <val>)*
    ///               h <n> (<name> <count> <sum> <min> <max> <k> (<idx>:<cnt>)*)*
    /// ```
    ///
    /// Names are percent-escaped; histogram buckets are sparse (occupied
    /// only). `from_wire` accepts exactly this shape.
    pub fn to_wire(&self) -> String {
        let mut out = String::from(METRICS_WIRE_VERSION);
        let _ = write!(out, " c {}", self.counters.len());
        for (name, value) in &self.counters {
            let _ = write!(out, " {} {value}", escape(name));
        }
        let _ = write!(out, " g {}", self.gauges.len());
        for (name, value) in &self.gauges {
            let _ = write!(out, " {} {value}", escape(name));
        }
        let _ = write!(out, " h {}", self.histograms.len());
        for (name, hist) in &self.histograms {
            let occupied: Vec<(usize, u64)> = hist
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect();
            let _ = write!(
                out,
                " {} {} {} {} {} {}",
                escape(name),
                hist.count(),
                hist.sum(),
                hist.min(),
                hist.max,
                occupied.len()
            );
            for (i, c) in occupied {
                let _ = write!(out, " {i}:{c}");
            }
        }
        out
    }

    /// Parse a [`Registry::to_wire`] line. Strict: any malformed token is
    /// an error, so a corrupted snapshot can never merge silently.
    pub fn from_wire(line: &str) -> Result<Registry, String> {
        let mut t = line.split_whitespace();
        let version = t.next().ok_or("empty metrics snapshot")?;
        if version != METRICS_WIRE_VERSION {
            return Err(format!("unknown metrics version '{version}'"));
        }
        expect_tag(&mut t, "c")?;
        let n: usize = parse_next(&mut t, "counter count")?;
        let mut reg = Registry::new();
        for _ in 0..n {
            let name = unescape(next(&mut t, "counter name")?)?;
            let value: u64 = parse_next(&mut t, "counter value")?;
            reg.counters.insert(name, value);
        }
        expect_tag(&mut t, "g")?;
        let n: usize = parse_next(&mut t, "gauge count")?;
        for _ in 0..n {
            let name = unescape(next(&mut t, "gauge name")?)?;
            let value: u64 = parse_next(&mut t, "gauge value")?;
            reg.gauges.insert(name, value);
        }
        expect_tag(&mut t, "h")?;
        let n: usize = parse_next(&mut t, "histogram count")?;
        for _ in 0..n {
            let name = unescape(next(&mut t, "histogram name")?)?;
            let count: u64 = parse_next(&mut t, "histogram sample count")?;
            let sum: u64 = parse_next(&mut t, "histogram sum")?;
            let min: u64 = parse_next(&mut t, "histogram min")?;
            let max: u64 = parse_next(&mut t, "histogram max")?;
            let k: usize = parse_next(&mut t, "histogram bucket count")?;
            let mut hist = Histogram::new();
            let mut total = 0u64;
            for _ in 0..k {
                let pair = next(&mut t, "histogram bucket")?;
                let (idx, cnt) =
                    pair.split_once(':').ok_or_else(|| format!("malformed bucket '{pair}'"))?;
                let idx: usize = idx.parse().map_err(|e| format!("bucket index '{idx}': {e}"))?;
                if idx >= HISTOGRAM_BUCKETS {
                    return Err(format!("bucket index {idx} out of range"));
                }
                let cnt: u64 = cnt.parse().map_err(|e| format!("bucket count '{cnt}': {e}"))?;
                hist.counts[idx] = cnt;
                total += cnt;
            }
            if total != count {
                return Err(format!("histogram '{name}' bucket total {total} != count {count}"));
            }
            hist.count = count;
            hist.sum = sum;
            hist.min = if count == 0 { u64::MAX } else { min };
            hist.max = max;
            reg.histograms.insert(name, hist);
        }
        if let Some(extra) = t.next() {
            return Err(format!("trailing token '{extra}' in metrics snapshot"));
        }
        Ok(reg)
    }
}

// ---------------------------------------------------------------------------
// Spans and the slow-query log
// ---------------------------------------------------------------------------

/// Annotation bits attached to a [`Span`].
pub mod span_flags {
    /// Served as part of a coalesced read batch.
    pub const BATCHED: u32 = 1 << 0;
    /// Served by a thief shard via a steal handoff.
    pub const STOLEN: u32 = 1 << 1;
    /// Serving this request faulted the graph in from the store.
    pub const FAULT_IN: u32 = 1 << 2;
    /// Serving this request spilled some graph to the store.
    pub const SPILL: u32 = 1 << 3;

    /// Render set bits as a stable `+`-joined list (empty string if none).
    pub fn render(flags: u32) -> String {
        let mut parts = Vec::new();
        if flags & BATCHED != 0 {
            parts.push("batched");
        }
        if flags & STOLEN != 0 {
            parts.push("stolen");
        }
        if flags & FAULT_IN != 0 {
            parts.push("fault-in");
        }
        if flags & SPILL != 0 {
            parts.push("spill");
        }
        parts.join("+")
    }
}

/// Lifecycle record for one request: enqueue → dequeue (queue wait) →
/// serve end, with serve time attributed to index builds and store
/// appends (the remainder is compute). All stamps come from one
/// [`Clock`] instance, so differences are meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Request kind (`"query"`, `"mutate"`, ...).
    pub kind: String,
    /// Graph name, or `"*"` for broadcasts.
    pub target: String,
    /// Shard that served the request (the thief for stolen runs).
    pub shard: u64,
    /// Clock reading when the request entered a shard queue.
    pub enqueue: u64,
    /// Clock reading when a worker picked it up; serve starts here.
    pub dequeue: u64,
    /// Clock reading when the response was produced.
    pub end: u64,
    /// Serve-time share spent (re)building CSR indexes.
    pub index_nanos: u64,
    /// Serve-time share spent appending to / snapshotting the store.
    pub store_nanos: u64,
    /// [`span_flags`] annotations.
    pub flags: u32,
}

impl Span {
    /// Time spent queued: dequeue − enqueue.
    pub fn queue_nanos(&self) -> u64 {
        self.dequeue.saturating_sub(self.enqueue)
    }

    /// Time spent serving: end − dequeue.
    pub fn serve_nanos(&self) -> u64 {
        self.end.saturating_sub(self.dequeue)
    }

    /// End-to-end span: end − enqueue. Equals queue + serve exactly,
    /// because serve starts at the dequeue stamp.
    pub fn wall_nanos(&self) -> u64 {
        self.end.saturating_sub(self.enqueue)
    }

    /// Serve time not attributed to index builds or store appends.
    pub fn compute_nanos(&self) -> u64 {
        self.serve_nanos().saturating_sub(self.index_nanos).saturating_sub(self.store_nanos)
    }
}

/// Fixed-capacity log of the worst-N spans seen by one shard, ordered by
/// serve time (descending), ties broken by enqueue stamp then target so
/// merged dumps are deterministic for a fixed set of spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowLog {
    cap: usize,
    entries: Vec<Span>,
}

fn slower(a: &Span, b: &Span) -> std::cmp::Ordering {
    b.serve_nanos()
        .cmp(&a.serve_nanos())
        .then(a.enqueue.cmp(&b.enqueue))
        .then(a.target.cmp(&b.target))
        .then(a.shard.cmp(&b.shard))
}

impl SlowLog {
    pub fn new(cap: usize) -> Self {
        SlowLog { cap, entries: Vec::with_capacity(cap.min(64)) }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Admit `span` if it ranks among the worst `cap` seen so far.
    pub fn record(&mut self, span: Span) {
        if self.cap == 0 {
            return;
        }
        if self.entries.len() == self.cap {
            if let Some(last) = self.entries.last() {
                if slower(&span, last) != std::cmp::Ordering::Less {
                    return;
                }
            }
            self.entries.pop();
        }
        let at = self.entries.partition_point(|e| slower(e, &span) == std::cmp::Ordering::Less);
        self.entries.insert(at, span);
    }

    /// Worst spans, slowest first.
    pub fn entries(&self) -> &[Span] {
        &self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold `other`'s entries in, keeping the merged worst-N under the
    /// larger of the two capacities.
    pub fn merge(&mut self, other: &SlowLog) {
        self.cap = self.cap.max(other.cap);
        for span in &other.entries {
            self.record(span.clone());
        }
    }

    /// Human-readable dump, one line per span, slowest first.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.entries.iter().enumerate() {
            let flags = span_flags::render(s.flags);
            let _ = writeln!(
                out,
                "#{i} {} {} shard={} queue={}ns serve={}ns (index={}ns store={}ns compute={}ns){}{}",
                s.kind,
                s.target,
                s.shard,
                s.queue_nanos(),
                s.serve_nanos(),
                s.index_nanos,
                s.store_nanos,
                s.compute_nanos(),
                if flags.is_empty() { "" } else { " " },
                flags
            );
        }
        out
    }

    /// Single-line canonical form:
    ///
    /// ```text
    /// cut-slowlog/1 <cap> <n> (<kind> <target> <shard> <enqueue> <dequeue>
    ///               <end> <index> <store> <flags>)*
    /// ```
    pub fn to_wire(&self) -> String {
        let mut out = String::from(SLOWLOG_WIRE_VERSION);
        let _ = write!(out, " {} {}", self.cap, self.entries.len());
        for s in &self.entries {
            let _ = write!(
                out,
                " {} {} {} {} {} {} {} {} {}",
                escape(&s.kind),
                escape(&s.target),
                s.shard,
                s.enqueue,
                s.dequeue,
                s.end,
                s.index_nanos,
                s.store_nanos,
                s.flags
            );
        }
        out
    }

    /// Parse a [`SlowLog::to_wire`] line.
    pub fn from_wire(line: &str) -> Result<SlowLog, String> {
        let mut t = line.split_whitespace();
        let version = t.next().ok_or("empty slowlog snapshot")?;
        if version != SLOWLOG_WIRE_VERSION {
            return Err(format!("unknown slowlog version '{version}'"));
        }
        let cap: usize = parse_next(&mut t, "slowlog cap")?;
        let n: usize = parse_next(&mut t, "slowlog entry count")?;
        let mut log = SlowLog::new(cap);
        for _ in 0..n {
            let span = Span {
                kind: unescape(next(&mut t, "span kind")?)?,
                target: unescape(next(&mut t, "span target")?)?,
                shard: parse_next(&mut t, "span shard")?,
                enqueue: parse_next(&mut t, "span enqueue")?,
                dequeue: parse_next(&mut t, "span dequeue")?,
                end: parse_next(&mut t, "span end")?,
                index_nanos: parse_next(&mut t, "span index nanos")?,
                store_nanos: parse_next(&mut t, "span store nanos")?,
                flags: parse_next(&mut t, "span flags")?,
            };
            log.record(span);
        }
        if let Some(extra) = t.next() {
            return Err(format!("trailing token '{extra}' in slowlog snapshot"));
        }
        Ok(log)
    }
}

// ---------------------------------------------------------------------------
// Token helpers (same percent scheme as the cut/1 name codec)
// ---------------------------------------------------------------------------

/// Percent-escape a string into a single whitespace-free token. Empty
/// strings become `%-` so token counts stay fixed.
pub fn escape(s: &str) -> String {
    if s.is_empty() {
        return "%-".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' => out.push_str("%25"),
            b' ' => out.push_str("%20"),
            b'\t' => out.push_str("%09"),
            b'\n' => out.push_str("%0a"),
            b'\r' => out.push_str("%0d"),
            _ => out.push(b as char),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(token: &str) -> Result<String, String> {
    if token == "%-" {
        return Ok(String::new());
    }
    let bytes = token.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 3 > bytes.len() {
                return Err(format!("truncated escape in '{token}'"));
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3])
                .map_err(|_| format!("bad escape in '{token}'"))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| format!("bad escape '%{hex}' in '{token}'"))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("invalid utf-8 in '{token}'"))
}

fn next<'a>(t: &mut std::str::SplitWhitespace<'a>, what: &str) -> Result<&'a str, String> {
    t.next().ok_or_else(|| format!("missing {what}"))
}

fn parse_next<T: std::str::FromStr>(
    t: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let tok = next(t, what)?;
    tok.parse().map_err(|e| format!("{what} '{tok}': {e}"))
}

fn expect_tag(t: &mut std::str::SplitWhitespace<'_>, tag: &str) -> Result<(), String> {
    let tok = next(t, tag)?;
    if tok != tag {
        return Err(format!("expected section '{tag}', got '{tok}'"));
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_layout_covers_u64_without_gaps() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
        }
        // Adjacent buckets tile the line: upper(i) + 1 == lower(i+1).
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1));
        }
    }

    #[test]
    fn histogram_observe_and_quantile_track_extrema() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 1, 7, 100, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 100_109);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100_000);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(1.0) <= 100_000);
        assert!(h.quantile(0.5) >= 1);
    }

    #[test]
    fn histogram_diff_recovers_the_interval() {
        let mut earlier = Histogram::new();
        for v in [1u64, 8, 8, 300] {
            earlier.observe(v);
        }
        let mut later = earlier.clone();
        for v in [2u64, 9, 5_000] {
            later.observe(v);
        }
        let d = later.diff(&earlier);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 2 + 9 + 5_000);
        // Interval extrema are bucket-bound approximations: min from the
        // lowest occupied bucket, max clamped by the later snapshot's max.
        assert!(d.min() <= 2, "min {} should bound the interval low end", d.min());
        assert!(d.max() >= 5_000 && d.max() <= later.max());
        // Bucket-wise: diffing against itself is empty; against new() is identity.
        assert!(later.diff(&later).is_empty());
        assert_eq!(later.diff(&Histogram::new()).buckets(), later.buckets());
    }

    #[test]
    fn registry_wire_round_trips_exactly() {
        let mut r = Registry::new();
        r.inc("requests_total", 41);
        r.inc("engine queries", 7); // space in name exercises escaping
        r.set_gauge("graphs_resident", 3);
        r.observe("queue_wait_nanos", 0);
        r.observe("queue_wait_nanos", 1023);
        r.observe("serve_nanos", u64::MAX);
        let wire = r.to_wire();
        assert!(!wire.contains('\n'));
        let back = Registry::from_wire(&wire).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn registry_from_wire_rejects_corruption() {
        let mut r = Registry::new();
        r.inc("a", 1);
        r.observe("h", 9);
        let wire = r.to_wire();
        // Every truncation of whole tokens must fail, never mis-parse.
        let tokens: Vec<&str> = wire.split(' ').collect();
        for k in 0..tokens.len() {
            let partial = tokens[..k].join(" ");
            assert!(
                Registry::from_wire(&partial).is_err(),
                "truncation to {k} tokens parsed: '{partial}'"
            );
        }
        assert!(Registry::from_wire(&format!("{wire} junk")).is_err());
        // Bucket total mismatching the sample count is rejected.
        let forged = wire.replace(" 1 1 4:1", " 2 1 4:1");
        if forged != wire {
            assert!(Registry::from_wire(&forged).is_err());
        }
    }

    #[test]
    fn registry_merge_adds_counters_gauges_and_buckets() {
        let mut a = Registry::new();
        a.inc("x", 1);
        a.set_gauge("g", 2);
        a.observe("h", 5);
        let mut b = Registry::new();
        b.inc("x", 2);
        b.inc("y", 3);
        b.set_gauge("g", 4);
        b.observe("h", 500);
        b.observe("h2", 1);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.gauge("g"), 6);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().max(), 500);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    fn render_text_lists_every_family_with_types() {
        let mut r = Registry::new();
        r.inc("requests_total", 2);
        r.set_gauge("graphs_resident", 1);
        r.observe("serve_nanos", 10);
        let text = r.render_text();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 2"));
        assert!(text.contains("# TYPE graphs_resident gauge"));
        assert!(text.contains("# TYPE serve_nanos histogram"));
        assert!(text.contains("serve_nanos_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("serve_nanos_sum 10"));
        assert!(text.contains("serve_nanos_count 1"));
    }

    /// Reconstruct per-bucket counts from the cumulative `_bucket{le=...}`
    /// lines of the Prometheus exposition and check they match the
    /// histogram exactly (the satellite-3 "render_text round-trips bucket
    /// counts" requirement, deterministic half; the proptest below covers
    /// arbitrary samples).
    fn text_buckets_match(hist: &Histogram, name: &str, text: &str) {
        let mut cumulative_prev = 0u64;
        let mut reconstructed = [0u64; HISTOGRAM_BUCKETS];
        for line in text.lines() {
            let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{le=\"")) else {
                continue;
            };
            let (le, count) = rest.split_once("\"} ").expect("bucket line shape");
            if le == "+Inf" {
                continue;
            }
            let le: u64 = le.parse().expect("le bound");
            let cum: u64 = count.parse().expect("cumulative count");
            reconstructed[bucket_index(le)] = cum - cumulative_prev;
            cumulative_prev = cum;
        }
        assert_eq!(&reconstructed, hist.buckets(), "bucket counts for {name}");
    }

    #[test]
    fn render_text_round_trips_bucket_counts() {
        let mut r = Registry::new();
        for v in [0u64, 1, 2, 3, 1024, 1024, u64::MAX] {
            r.observe("lat", v);
        }
        text_buckets_match(r.histogram("lat").unwrap(), "lat", &r.render_text());
    }

    #[test]
    fn slowlog_keeps_worst_n_sorted() {
        let mut log = SlowLog::new(3);
        for (i, serve) in [5u64, 50, 1, 500, 20, 7].iter().enumerate() {
            log.record(Span {
                kind: "query".into(),
                target: format!("g{i}"),
                shard: 0,
                enqueue: i as u64,
                dequeue: i as u64,
                end: i as u64 + serve,
                index_nanos: 0,
                store_nanos: 0,
                flags: 0,
            });
        }
        let serves: Vec<u64> = log.entries().iter().map(|s| s.serve_nanos()).collect();
        assert_eq!(serves, vec![500, 50, 20]);
    }

    #[test]
    fn slowlog_merge_and_wire_round_trip() {
        let mk = |shard: u64, serve: u64, target: &str| Span {
            kind: "query".into(),
            target: target.into(),
            shard,
            enqueue: 10,
            dequeue: 12,
            end: 12 + serve,
            index_nanos: 1,
            store_nanos: 2,
            flags: span_flags::BATCHED | span_flags::STOLEN,
        };
        let mut a = SlowLog::new(2);
        a.record(mk(0, 100, "a"));
        a.record(mk(0, 10, "b"));
        let mut b = SlowLog::new(2);
        b.record(mk(1, 50, "c"));
        b.record(mk(1, 200, "d"));
        let wire_b = b.to_wire();
        let back = SlowLog::from_wire(&wire_b).expect("slowlog round trip");
        assert_eq!(back, b);
        a.merge(&back);
        let targets: Vec<&str> = a.entries().iter().map(|s| s.target.as_str()).collect();
        assert_eq!(targets, vec!["d", "a"]);
        assert!(a.render_text().contains("batched+stolen"));
    }

    #[test]
    fn span_accounting_is_exact_under_test_clock() {
        let clock = Arc::new(TestClock::new());
        let enqueue = clock.now();
        let dequeue = clock.now();
        let end = clock.now();
        let span = Span {
            kind: "query".into(),
            target: "g".into(),
            shard: 0,
            enqueue,
            dequeue,
            end,
            index_nanos: 0,
            store_nanos: 0,
            flags: 0,
        };
        assert_eq!(span.queue_nanos() + span.serve_nanos(), span.wall_nanos());
        assert_eq!(span.queue_nanos(), 1);
        assert_eq!(span.serve_nanos(), 1);
    }

    #[test]
    fn test_clock_counts_and_monotonic_clock_advances() {
        let t = TestClock::new();
        assert_eq!(t.now(), 0);
        assert_eq!(t.now(), 1);
        let m = MonotonicClock::new();
        let a = m.now();
        let b = m.now();
        assert!(b >= a);
    }

    #[test]
    fn escape_round_trips_awkward_strings() {
        for s in ["", "plain", "has space", "pct%sign", "tab\there", "nl\nhere"] {
            let tok = escape(s);
            assert!(!tok.chars().any(char::is_whitespace), "token '{tok}'");
            assert_eq!(unescape(&tok).unwrap(), s);
        }
    }

    // -- proptests (satellite 3) -------------------------------------------

    fn hist_from(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.observe(v);
        }
        h
    }

    /// Expand a `(seed, len)` pair into deterministic samples via
    /// splitmix64; the vendored proptest subset has no `collection::vec`
    /// strategy, so vectors are derived from scalar draws. Mixing in a
    /// power law keeps small values (dense low buckets) common while
    /// still reaching the top buckets.
    fn sample_vec(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                z >> (z % 64)
            })
            .collect()
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(128))]

        #[test]
        fn histogram_merge_is_commutative(
            (xseed, xlen, yseed, ylen) in (
                proptest::any::<u64>(), 0usize..40,
                proptest::any::<u64>(), 0usize..40,
            )
        ) {
            let (xs, ys) = (sample_vec(xseed, xlen), sample_vec(yseed, ylen));
            let (a, b) = (hist_from(&xs), hist_from(&ys));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            proptest::prop_assert_eq!(ab, ba);
        }

        #[test]
        fn histogram_merge_is_associative(
            (xseed, yseed, zseed, lens) in (
                proptest::any::<u64>(),
                proptest::any::<u64>(),
                proptest::any::<u64>(),
                proptest::any::<u64>(),
            )
        ) {
            let (xs, ys, zs) = (
                sample_vec(xseed, (lens % 30) as usize),
                sample_vec(yseed, ((lens >> 8) % 30) as usize),
                sample_vec(zseed, ((lens >> 16) % 30) as usize),
            );
            let (a, b, c) = (hist_from(&xs), hist_from(&ys), hist_from(&zs));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            proptest::prop_assert_eq!(left, right);
        }

        #[test]
        fn histogram_merge_equals_concatenation(
            (xseed, xlen, yseed, ylen) in (
                proptest::any::<u64>(), 0usize..40,
                proptest::any::<u64>(), 0usize..40,
            )
        ) {
            let (xs, ys) = (sample_vec(xseed, xlen), sample_vec(yseed, ylen));
            let mut merged = hist_from(&xs);
            merged.merge(&hist_from(&ys));
            let mut both = xs.clone();
            both.extend_from_slice(&ys);
            proptest::prop_assert_eq!(merged, hist_from(&both));
        }

        #[test]
        fn render_text_round_trips_bucket_counts_for_any_samples(
            (seed, len) in (proptest::any::<u64>(), 1usize..60)
        ) {
            let xs = sample_vec(seed, len);
            let mut r = Registry::new();
            for &v in &xs {
                r.observe("lat", v);
            }
            let text = r.render_text();
            text_buckets_match(r.histogram("lat").unwrap(), "lat", &text);
            // And the wire codec is exact for the same registry.
            let back = Registry::from_wire(&r.to_wire()).unwrap();
            proptest::prop_assert_eq!(back, r);
        }

        #[test]
        fn registry_merge_matches_pooled_observation(
            (xseed, xlen, yseed, ylen) in (
                proptest::any::<u64>(), 0usize..30,
                proptest::any::<u64>(), 0usize..30,
            )
        ) {
            let (xs, ys) = (sample_vec(xseed, xlen), sample_vec(yseed, ylen));
            let mut a = Registry::new();
            for &v in &xs {
                a.observe("h", v);
                a.inc("n", 1);
            }
            let mut b = Registry::new();
            for &v in &ys {
                b.observe("h", v);
                b.inc("n", 1);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            let mut pooled = Registry::new();
            for &v in xs.iter().chain(ys.iter()) {
                pooled.observe("h", v);
                pooled.inc("n", 1);
            }
            proptest::prop_assert_eq!(merged, pooled);
        }
    }
}
