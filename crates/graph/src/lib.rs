//! # `cut-graph` — graph substrate for cut algorithms
//!
//! Everything the AMPC min-cut reproduction needs from a graph library,
//! built from scratch:
//!
//! * [`Graph`]: compact undirected weighted multigraph with CSR adjacency,
//!   contraction, induced subgraphs, cut evaluation;
//! * [`Dsu`]: union–find with rank + path halving;
//! * [`gen`]: seeded workload generators (G(n,p), G(n,m), cycles and the
//!   1-vs-2-cycle workload, planted partitions, power-law, trees, …);
//! * [`mst`]: Kruskal minimum spanning forest over arbitrary priorities;
//! * [`mod@stoer_wagner`]: exact weighted global min cut (ground truth);
//! * [`maxflow`]: Dinic max-flow / min s-t cut;
//! * [`gomory_hu`]: Gusfield's Gomory–Hu (equivalent-flow) tree
//!   (Definition 8 of the paper) and the Saran–Vazirani greedy k-cut bound;
//! * [`brute`]: exponential-time exact min-cut / min-k-cut oracles for
//!   small instances (test ground truth).

pub mod brute;
pub mod cut;
pub mod dsu;
pub mod gen;
pub mod gomory_hu;
pub mod graph;
pub mod hash;
pub mod maxflow;
pub mod mst;
pub mod stoer_wagner;

pub use cut::{cut_weight, CutResult};
pub use dsu::Dsu;
pub use gomory_hu::GomoryHuTree;
pub use graph::{Edge, Graph};
pub use mst::{kruskal, MstForest};
pub use stoer_wagner::stoer_wagner;
