//! Dinic max-flow / minimum s-t cut on undirected weighted graphs.
//!
//! Substrate for the Gomory–Hu tree (Definition 8 of the paper) and for
//! s-t cut assertions in tests. Undirected edges become arc pairs that
//! share capacity through the standard residual construction.

use std::collections::VecDeque;

use crate::graph::Graph;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: u32,
    rev: u32,
    cap: u64,
}

/// Dinic max-flow solver over a fixed topology; capacities reset per run so
/// Gomory–Hu can reuse the arena across its `n - 1` flow computations.
pub struct Dinic {
    n: usize,
    arcs: Vec<Vec<Arc>>,
    base: Vec<Vec<u64>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Build a solver for undirected graph `g`: each edge `(u,v,w)` becomes
    /// a forward and a backward arc of capacity `w` each (the undirected
    /// flow construction).
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut arcs: Vec<Vec<Arc>> = vec![Vec::new(); n];
        for e in g.edges() {
            let (u, v) = (e.u as usize, e.v as usize);
            let ru = arcs[u].len() as u32;
            let rv = arcs[v].len() as u32;
            arcs[u].push(Arc { to: e.v, rev: rv, cap: e.w });
            arcs[v].push(Arc { to: e.u, rev: ru, cap: e.w });
        }
        let base = arcs.iter().map(|a| a.iter().map(|x| x.cap).collect()).collect();
        Self { n, arcs, base, level: vec![-1; n], iter: vec![0; n] }
    }

    fn reset(&mut self) {
        for (v, caps) in self.base.iter().enumerate() {
            for (i, &c) in caps.iter().enumerate() {
                self.arcs[v][i].cap = c;
            }
        }
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut q = VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for a in &self.arcs[v] {
                if a.cap > 0 && self.level[a.to as usize] < 0 {
                    self.level[a.to as usize] = self.level[v] + 1;
                    q.push_back(a.to as usize);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: u64) -> u64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.arcs[v].len() {
            let i = self.iter[v];
            let Arc { to, rev, cap } = self.arcs[v][i];
            if cap > 0 && self.level[v] < self.level[to as usize] {
                let d = self.dfs(to as usize, t, f.min(cap));
                if d > 0 {
                    self.arcs[v][i].cap -= d;
                    self.arcs[to as usize][rev as usize].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Maximum s-t flow (= minimum s-t cut weight). Resets capacities first.
    pub fn max_flow(&mut self, s: u32, t: u32) -> u64 {
        assert_ne!(s, t);
        self.reset();
        let (s, t) = (s as usize, t as usize);
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, u64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// Vertices reachable from `s` in the residual graph of the last
    /// `max_flow` run — the s-side of a minimum s-t cut.
    pub fn min_cut_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut q = VecDeque::new();
        seen[s as usize] = true;
        q.push_back(s as usize);
        while let Some(v) = q.pop_front() {
            for a in &self.arcs[v] {
                if a.cap > 0 && !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    q.push_back(a.to as usize);
                }
            }
        }
        seen
    }
}

/// Convenience: min s-t cut weight of `g`.
pub fn min_st_cut(g: &Graph, s: u32, t: u32) -> u64 {
    Dinic::new(g).max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::cut_weight;
    use crate::gen;
    use crate::graph::{Edge, Graph};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn path_flow_is_bottleneck() {
        let g = Graph::new(4, vec![Edge::new(0, 1, 5), Edge::new(1, 2, 3), Edge::new(2, 3, 9)]);
        assert_eq!(min_st_cut(&g, 0, 3), 3);
        assert_eq!(min_st_cut(&g, 0, 1), 5);
    }

    #[test]
    fn parallel_paths_add() {
        // Two vertex-disjoint paths 0→3 of bottlenecks 2 and 4.
        let g = Graph::new(
            6,
            vec![
                Edge::new(0, 1, 2),
                Edge::new(1, 3, 7),
                Edge::new(0, 2, 4),
                Edge::new(2, 3, 4),
                Edge::new(3, 4, 100),
                Edge::new(4, 5, 1),
            ],
        );
        assert_eq!(min_st_cut(&g, 0, 3), 6);
        assert_eq!(min_st_cut(&g, 0, 5), 1);
    }

    #[test]
    fn disconnected_pairs_have_zero_flow() {
        let g = Graph::unit(4, &[(0, 1), (2, 3)]);
        assert_eq!(min_st_cut(&g, 0, 2), 0);
    }

    #[test]
    fn flow_is_symmetric_on_undirected_graphs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::connected_gnm(20, 50, 1..=10, &mut rng);
        let mut d = Dinic::new(&g);
        for _ in 0..10 {
            let s = rng.gen_range(0..20u32);
            let mut t = rng.gen_range(0..20u32);
            while t == s {
                t = rng.gen_range(0..20u32);
            }
            assert_eq!(d.max_flow(s, t), d.max_flow(t, s));
        }
    }

    #[test]
    fn residual_side_is_a_min_cut() {
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.gen_range(4..20);
            let g = gen::connected_gnm(n, 3 * n, 1..=8, &mut rng);
            let s = 0u32;
            let t = (n - 1) as u32;
            let mut d = Dinic::new(&g);
            let f = d.max_flow(s, t);
            let side = d.min_cut_side(s);
            assert!(side[s as usize] && !side[t as usize]);
            assert_eq!(cut_weight(&g, &side), f, "max-flow/min-cut mismatch");
        }
    }

    #[test]
    fn repeated_runs_reset_capacities() {
        let g = gen::cycle(8);
        let mut d = Dinic::new(&g);
        let first = d.max_flow(0, 4);
        let second = d.max_flow(0, 4);
        assert_eq!(first, second);
        assert_eq!(first, 2);
    }
}
