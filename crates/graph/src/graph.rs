//! Compact undirected weighted multigraph.

/// An undirected weighted edge. Parallel edges and (transiently, during
/// contraction) self-loops are representable; most constructors reject
/// self-loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint.
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// Positive integer capacity/weight.
    pub w: u64,
}

impl Edge {
    /// Edge between `u` and `v` of weight `w`.
    pub fn new(u: u32, v: u32, w: u64) -> Self {
        Self { u, v, w }
    }

    /// The endpoint that is not `x`. Panics if `x` is not an endpoint.
    pub fn other(&self, x: u32) -> u32 {
        if x == self.u {
            self.v
        } else {
            debug_assert_eq!(x, self.v, "vertex {x} is not an endpoint");
            self.u
        }
    }
}

/// Undirected weighted multigraph with CSR adjacency.
///
/// Vertices are `0..n` as `u32`. Edges are stored once in [`Graph::edges`];
/// the adjacency array stores `(neighbor, edge_index)` pairs so algorithms
/// can recover weights and identities.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    offsets: Vec<u32>,
    adj: Vec<(u32, u32)>,
}

impl Graph {
    /// Build a graph on `n` vertices from an edge list.
    ///
    /// Panics on out-of-range endpoints, self-loops or zero weights —
    /// those are always construction bugs in this workspace.
    pub fn new(n: usize, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!((e.u as usize) < n && (e.v as usize) < n, "edge endpoint out of range");
            assert_ne!(e.u, e.v, "self-loop");
            assert!(e.w > 0, "zero-weight edge");
        }
        Self::new_unchecked(n, edges)
    }

    /// Build without validity checks (used by contraction, which has
    /// already established the invariants).
    pub fn new_unchecked(n: usize, edges: Vec<Edge>) -> Self {
        let mut deg = vec![0u32; n + 1];
        for e in &edges {
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        let mut offsets = deg;
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut adj = vec![(0u32, 0u32); 2 * edges.len()];
        let mut cursor = offsets.clone();
        for (i, e) in edges.iter().enumerate() {
            adj[cursor[e.u as usize] as usize] = (e.v, i as u32);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize] as usize] = (e.u, i as u32);
            cursor[e.v as usize] += 1;
        }
        Self { n, edges, offsets, adj }
    }

    /// Build from `(u, v)` pairs with unit weights.
    pub fn unit(n: usize, pairs: &[(u32, u32)]) -> Self {
        Self::new(n, pairs.iter().map(|&(u, v)| Edge::new(u, v, 1)).collect())
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    pub fn edge(&self, i: usize) -> Edge {
        self.edges[i]
    }

    /// `(neighbor, edge_index)` pairs incident to `v`.
    pub fn neighbors(&self, v: u32) -> &[(u32, u32)] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Unweighted degree of `v` (counting parallel edges).
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Weighted degree of `v`.
    pub fn weighted_degree(&self, v: u32) -> u64 {
        self.neighbors(v).iter().map(|&(_, e)| self.edges[e as usize].w).sum()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Connected-component labels (`0..k`, in order of first appearance by
    /// vertex id) via BFS.
    pub fn components(&self) -> Vec<u32> {
        let mut comp = vec![u32::MAX; self.n];
        let mut next = 0u32;
        let mut queue = std::collections::VecDeque::new();
        for s in 0..self.n as u32 {
            if comp[s as usize] != u32::MAX {
                continue;
            }
            comp[s as usize] = next;
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &(to, _) in self.neighbors(v) {
                    if comp[to as usize] == u32::MAX {
                        comp[to as usize] = next;
                        queue.push_back(to);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.components().iter().copied().max().map(|c| c as usize + 1).unwrap_or(0)
    }

    /// True if the graph is connected (vacuously true for n ≤ 1).
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Contract the graph along a vertex relabeling.
    ///
    /// `label[v]` gives the new id of vertex `v`; labels must form the
    /// contiguous range `0..k`. Parallel edges are merged (weights summed)
    /// and self-loops dropped. Returns the contracted graph.
    pub fn contract(&self, label: &[u32]) -> Graph {
        assert_eq!(label.len(), self.n);
        let k = label.iter().copied().max().map(|x| x as usize + 1).unwrap_or(0);
        let mut merged: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::with_capacity(self.m());
        for e in &self.edges {
            let (mut a, mut b) = (label[e.u as usize], label[e.v as usize]);
            if a == b {
                continue;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            *merged.entry((a, b)).or_insert(0) += e.w;
        }
        let mut edges: Vec<Edge> =
            merged.into_iter().map(|((a, b), w)| Edge::new(a, b, w)).collect();
        // Deterministic edge order regardless of hash-map iteration.
        edges.sort_unstable_by_key(|e| (e.u, e.v));
        Graph::new_unchecked(k, edges)
    }

    /// Induced subgraph on `keep` (a set of vertex ids).
    ///
    /// Returns the subgraph and the mapping `new_id -> old_id`.
    pub fn induced(&self, keep: &[u32]) -> (Graph, Vec<u32>) {
        let mut new_id = vec![u32::MAX; self.n];
        for (i, &v) in keep.iter().enumerate() {
            assert!(new_id[v as usize] == u32::MAX, "duplicate vertex in keep");
            new_id[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for e in &self.edges {
            let (a, b) = (new_id[e.u as usize], new_id[e.v as usize]);
            if a != u32::MAX && b != u32::MAX {
                edges.push(Edge::new(a, b, e.w));
            }
        }
        (Graph::new_unchecked(keep.len(), edges), keep.to_vec())
    }

    /// Remove the edges whose indices appear in `drop` (a sorted-or-not set)
    /// and return the remaining graph (same vertex set).
    pub fn without_edges(&self, drop: &[u32]) -> Graph {
        let mut dead = vec![false; self.m()];
        for &i in drop {
            dead[i as usize] = true;
        }
        let edges =
            self.edges.iter().enumerate().filter(|(i, _)| !dead[*i]).map(|(_, e)| *e).collect();
        Graph::new_unchecked(self.n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::new(3, vec![Edge::new(0, 1, 5), Edge::new(1, 2, 7), Edge::new(0, 2, 3)])
    }

    #[test]
    fn csr_adjacency_is_symmetric() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.weighted_degree(0), 8);
        assert_eq!(g.weighted_degree(1), 12);
        assert_eq!(g.weighted_degree(2), 10);
        assert_eq!(g.total_weight(), 15);
        // Every edge appears from both sides.
        for v in 0..3u32 {
            for &(to, e) in g.neighbors(v) {
                assert_eq!(g.edge(e as usize).other(v), to);
            }
        }
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::unit(5, &[(0, 1), (1, 2), (3, 4)]);
        let comp = g.components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(g.component_count(), 2);
        assert!(!g.is_connected());
        assert!(triangle().is_connected());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, vec![]);
        assert_eq!(g.component_count(), 0);
        assert!(g.is_connected());
        let g1 = Graph::new(1, vec![]);
        assert_eq!(g1.component_count(), 1);
        assert!(g1.is_connected());
    }

    #[test]
    fn contraction_merges_parallel_edges_and_drops_loops() {
        // Square 0-1-2-3-0; contract {0,1} and {2,3}.
        let g = Graph::new(
            4,
            vec![Edge::new(0, 1, 1), Edge::new(1, 2, 2), Edge::new(2, 3, 4), Edge::new(3, 0, 8)],
        );
        let c = g.contract(&[0, 0, 1, 1]);
        assert_eq!(c.n(), 2);
        assert_eq!(c.m(), 1);
        assert_eq!(c.edge(0), Edge::new(0, 1, 10)); // 2 + 8, loops 1 and 4 dropped
    }

    #[test]
    fn contraction_is_deterministic() {
        let g = Graph::unit(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let l = [0, 0, 1, 1, 2, 2];
        let a = g.contract(&l);
        let b = g.contract(&l);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = triangle();
        let (sub, back) = g.induced(&[2, 0]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 1);
        assert_eq!(sub.edge(0).w, 3); // the 0-2 edge
        assert_eq!(back, vec![2, 0]);
    }

    #[test]
    fn without_edges_removes_by_index() {
        let g = triangle();
        let h = g.without_edges(&[1]);
        assert_eq!(h.m(), 2);
        assert_eq!(h.total_weight(), 8);
        assert_eq!(h.n(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let _ = Graph::new(2, vec![Edge::new(1, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "zero-weight")]
    fn rejects_zero_weights() {
        let _ = Graph::new(2, vec![Edge::new(0, 1, 0)]);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(3, 9, 1);
        assert_eq!(e.other(3), 9);
        assert_eq!(e.other(9), 3);
    }
}
