//! Seeded workload generators.
//!
//! Every generator takes an explicit `&mut impl Rng` so experiments are
//! reproducible from a seed. Weighted variants draw weights uniformly from
//! a caller-provided range.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Edge, Graph};

/// Path graph `0-1-…-(n-1)` with unit weights.
pub fn path(n: usize) -> Graph {
    let edges = (1..n as u32).map(|i| Edge::new(i - 1, i, 1)).collect();
    Graph::new(n, edges)
}

/// Cycle on `n ≥ 3` vertices with unit weights.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<Edge> = (1..n as u32).map(|i| Edge::new(i - 1, i, 1)).collect();
    edges.push(Edge::new(n as u32 - 1, 0, 1));
    Graph::new(n, edges)
}

/// The 1-vs-2-cycle workload from the MPC lower-bound conjecture: either a
/// single cycle on `n` vertices or two disjoint cycles on `n/2` each, with
/// vertex ids shuffled so the structure is not syntactically visible.
pub fn one_or_two_cycles(n: usize, two: bool, rng: &mut impl Rng) -> Graph {
    assert!(n >= 6 && n.is_multiple_of(2), "need even n >= 6");
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    let mut edges = Vec::with_capacity(n);
    let ring = |ids: &[u32], edges: &mut Vec<Edge>| {
        for i in 0..ids.len() {
            edges.push(Edge::new(ids[i], ids[(i + 1) % ids.len()], 1));
        }
    };
    if two {
        ring(&perm[..n / 2], &mut edges);
        ring(&perm[n / 2..], &mut edges);
    } else {
        ring(&perm, &mut edges);
    }
    Graph::new(n, edges)
}

/// Star with center 0 and `n-1` leaves.
pub fn star(n: usize) -> Graph {
    let edges = (1..n as u32).map(|i| Edge::new(0, i, 1)).collect();
    Graph::new(n, edges)
}

/// Complete graph with unit weights.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push(Edge::new(u, v, 1));
        }
    }
    Graph::new(n, edges)
}

/// `rows × cols` grid with unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1), 1));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c), 1));
            }
        }
    }
    Graph::new(rows * cols, edges)
}

/// Wheel: cycle on `n-1` vertices plus a hub (vertex 0) joined to all.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4);
    let mut edges = Vec::new();
    for i in 1..n as u32 {
        edges.push(Edge::new(0, i, 1));
        let next = if i as usize == n - 1 { 1 } else { i + 1 };
        edges.push(Edge::new(i, next, 1));
    }
    Graph::new(n, edges)
}

/// Barbell: two `k`-cliques joined by a single bridge — min cut is the
/// bridge (weight 1) for k ≥ 3.
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 2);
    let mut edges = Vec::new();
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            edges.push(Edge::new(u, v, 1));
            edges.push(Edge::new(k as u32 + u, k as u32 + v, 1));
        }
    }
    edges.push(Edge::new(0, k as u32, 1));
    Graph::new(2 * k, edges)
}

/// Erdős–Rényi G(n, p) with unit weights.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push(Edge::new(u, v, 1));
            }
        }
    }
    Graph::new(n, edges)
}

/// G(n, m): exactly `m` distinct random edges, weights in `w_range`.
pub fn gnm(
    n: usize,
    m: usize,
    w_range: std::ops::RangeInclusive<u64>,
    rng: &mut impl Rng,
) -> Graph {
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "too many edges requested");
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            edges.push(Edge::new(key.0, key.1, rng.gen_range(w_range.clone())));
        }
    }
    Graph::new(n, edges)
}

/// Connected G(n, m): a uniform random spanning tree plus `m - (n-1)` extra
/// distinct edges; weights in `w_range`. Requires `m ≥ n - 1`.
pub fn connected_gnm(
    n: usize,
    m: usize,
    w_range: std::ops::RangeInclusive<u64>,
    rng: &mut impl Rng,
) -> Graph {
    assert!(n >= 1 && m + 1 >= n, "need m >= n-1 for connectivity");
    let tree = random_tree(n, rng);
    let mut chosen: std::collections::HashSet<(u32, u32)> =
        tree.edges().iter().map(|e| (e.u.min(e.v), e.u.max(e.v))).collect();
    let mut edges: Vec<Edge> =
        tree.edges().iter().map(|e| Edge::new(e.u, e.v, rng.gen_range(w_range.clone()))).collect();
    let max_m = n * (n - 1) / 2;
    let m = m.min(max_m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            edges.push(Edge::new(key.0, key.1, rng.gen_range(w_range.clone())));
        }
    }
    Graph::new(n, edges)
}

/// Uniform random labeled tree via a Prüfer sequence.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    if n <= 1 {
        return Graph::new(n, vec![]);
    }
    if n == 2 {
        return Graph::unit(2, &[(0, 1)]);
    }
    let prufer: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n as u32)).collect();
    let mut degree = vec![1u32; n];
    for &p in &prufer {
        degree[p as usize] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
        (0..n as u32).filter(|&v| degree[v as usize] == 1).map(std::cmp::Reverse).collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = heap.pop().expect("prufer invariant");
        edges.push(Edge::new(leaf, p, 1));
        degree[p as usize] -= 1;
        if degree[p as usize] == 1 {
            heap.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(a) = heap.pop().unwrap();
    let std::cmp::Reverse(b) = heap.pop().unwrap();
    edges.push(Edge::new(a, b, 1));
    Graph::new(n, edges)
}

/// Caterpillar: a spine of length `spine` with `legs` leaves per spine
/// vertex — a worst-ish case for heavy-path structure.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut edges = Vec::new();
    for i in 1..spine as u32 {
        edges.push(Edge::new(i - 1, i, 1));
    }
    let mut next = spine as u32;
    for s in 0..spine as u32 {
        for _ in 0..legs {
            edges.push(Edge::new(s, next, 1));
            next += 1;
        }
    }
    Graph::new(n, edges)
}

/// Perfectly balanced `arity`-ary tree with `depth` levels of edges.
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity >= 2);
    let mut edges = Vec::new();
    let mut level: Vec<u32> = vec![0];
    let mut next = 1u32;
    for _ in 0..depth {
        let mut new_level = Vec::with_capacity(level.len() * arity);
        for &p in &level {
            for _ in 0..arity {
                edges.push(Edge::new(p, next, 1));
                new_level.push(next);
                next += 1;
            }
        }
        level = new_level;
    }
    Graph::new(next as usize, edges)
}

/// Planted-partition / stochastic-block graph: `blocks` communities of
/// `block_size` vertices; intra-community edges w.p. `p_in`, inter w.p.
/// `p_out`. With `p_in ≫ p_out` the min cut separates one community.
pub fn planted_partition(
    blocks: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut impl Rng,
) -> Graph {
    let n = blocks * block_size;
    let block_of = |v: u32| v as usize / block_size;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let p = if block_of(u) == block_of(v) { p_in } else { p_out };
            if rng.gen_bool(p) {
                edges.push(Edge::new(u, v, 1));
            }
        }
    }
    Graph::new(n, edges)
}

/// A graph with a *planted minimum cut*: two communities that are
/// internally dense (random `d`-ish-regular, weight `in_w`) joined by
/// exactly `cross` unit edges. Ground-truth min cut is `cross` when the
/// communities are sufficiently dense.
pub fn planted_cut(half: usize, internal_m: usize, cross: usize, rng: &mut impl Rng) -> Graph {
    assert!(half >= 3 && cross >= 1);
    let a = connected_gnm(half, internal_m, 1..=1, rng);
    let b = connected_gnm(half, internal_m, 1..=1, rng);
    let mut edges: Vec<Edge> = a.edges().to_vec();
    edges.extend(b.edges().iter().map(|e| Edge::new(e.u + half as u32, e.v + half as u32, e.w)));
    let mut chosen = std::collections::HashSet::new();
    while chosen.len() < cross.min(half * half) {
        let u = rng.gen_range(0..half as u32);
        let v = rng.gen_range(0..half as u32) + half as u32;
        if chosen.insert((u, v)) {
            edges.push(Edge::new(u, v, 1));
        }
    }
    Graph::new(2 * half, edges)
}

/// Ring lattice (circulant graph): every vertex joined to its `k`
/// nearest neighbors on each side — degree exactly `2k`, min cut `≥ 2k`
/// for `n > 2k+1`. Useful when a workload needs a guaranteed minimum
/// internal connectivity (unlike G(n,m), which can have degree-1
/// vertices).
pub fn ring_lattice(n: usize, k: usize) -> Graph {
    assert!(n >= 3 && k >= 1 && 2 * k < n);
    let mut edges = Vec::with_capacity(n * k);
    for v in 0..n as u32 {
        for d in 1..=k as u32 {
            let u = (v + d) % n as u32;
            edges.push(Edge::new(v, u, 1));
        }
    }
    Graph::new(n, edges)
}

/// Two ring-lattice communities of `half` vertices (degree `2k` each)
/// joined by exactly `cross` unit bridges at deterministic, spread-out
/// attachment points. Ground-truth min cut is exactly `cross` whenever
/// `cross < 2k`.
pub fn planted_communities(half: usize, k: usize, cross: usize) -> Graph {
    assert!(cross < 2 * k, "bridges must be fewer than internal degree");
    let a = ring_lattice(half, k);
    let mut edges: Vec<Edge> = a.edges().to_vec();
    edges.extend(a.edges().iter().map(|e| Edge::new(e.u + half as u32, e.v + half as u32, e.w)));
    for i in 0..cross {
        let u = ((i * half) / cross) as u32;
        let v = (((i * half) / cross + half / 2) % half + half) as u32;
        edges.push(Edge::new(u, v, 1));
    }
    Graph::new(2 * half, edges)
}

/// Chung–Lu power-law-ish graph: expected degree of vertex `i` is
/// proportional to `(i+1)^(-1/(gamma-1))`, scaled to average degree
/// `avg_deg`. Multi-edges are collapsed.
pub fn chung_lu(n: usize, gamma: f64, avg_deg: f64, rng: &mut impl Rng) -> Graph {
    assert!(gamma > 2.0, "need gamma > 2 for finite mean");
    let exp = -1.0 / (gamma - 1.0);
    let w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exp)).collect();
    let sum: f64 = w.iter().sum();
    let scale = avg_deg * n as f64 / sum;
    let w: Vec<f64> = w.into_iter().map(|x| x * scale).collect();
    let total: f64 = w.iter().sum();
    let mut chosen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if p > 0.0 && rng.gen_bool(p) && chosen.insert((u as u32, v as u32)) {
                edges.push(Edge::new(u as u32, v as u32, 1));
            }
        }
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!((p.n(), p.m()), (5, 4));
        assert!(p.is_connected());
        let c = cycle(5);
        assert_eq!((c.n(), c.m()), (5, 5));
        assert_eq!(c.degree(0), 2);
    }

    #[test]
    fn one_vs_two_cycles_components() {
        let mut r = rng();
        let one = one_or_two_cycles(64, false, &mut r);
        assert_eq!(one.component_count(), 1);
        let two = one_or_two_cycles(64, true, &mut r);
        assert_eq!(two.component_count(), 2);
        assert_eq!(one.m(), 64);
        assert_eq!(two.m(), 64);
        for v in 0..64u32 {
            assert_eq!(two.degree(v), 2);
        }
    }

    #[test]
    fn star_complete_wheel_grid() {
        assert_eq!(star(7).degree(0), 6);
        assert_eq!(complete(6).m(), 15);
        let w = wheel(6);
        assert_eq!(w.degree(0), 5);
        assert_eq!(w.m(), 10);
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
    }

    #[test]
    fn barbell_min_cut_is_bridge() {
        let g = barbell(4);
        assert_eq!(g.n(), 8);
        assert!(g.is_connected());
        // The bridge is the only edge between the halves.
        let crossing = g.edges().iter().filter(|e| (e.u < 4) != (e.v < 4)).count();
        assert_eq!(crossing, 1);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut r = rng();
        for n in [1usize, 2, 3, 10, 100, 500] {
            let t = random_tree(n, &mut r);
            assert_eq!(t.m(), n.saturating_sub(1));
            assert!(t.is_connected(), "n={n}");
        }
    }

    #[test]
    fn random_tree_is_uniformish() {
        // Over many samples of trees on 4 vertices there are 16 labeled
        // trees; all should appear.
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..600 {
            let t = random_tree(4, &mut r);
            let mut sig: Vec<(u32, u32)> =
                t.edges().iter().map(|e| (e.u.min(e.v), e.u.max(e.v))).collect();
            sig.sort_unstable();
            seen.insert(sig);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn connected_gnm_respects_m_and_connectivity() {
        let mut r = rng();
        let g = connected_gnm(50, 120, 1..=9, &mut r);
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 120);
        assert!(g.is_connected());
        assert!(g.edges().iter().all(|e| (1..=9).contains(&e.w)));
        // No duplicate undirected edges.
        let mut keys: Vec<_> = g.edges().iter().map(|e| (e.u.min(e.v), e.u.max(e.v))).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 120);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut r = rng();
        let g = gnm(20, 40, 1..=1, &mut r);
        assert_eq!(g.m(), 40);
    }

    #[test]
    fn planted_cut_has_expected_crossing() {
        let mut r = rng();
        let g = planted_cut(20, 60, 3, &mut r);
        assert_eq!(g.n(), 40);
        let crossing: usize = g.edges().iter().filter(|e| (e.u < 20) != (e.v < 20)).count();
        assert_eq!(crossing, 3);
        assert!(g.is_connected());
    }

    #[test]
    fn caterpillar_and_balanced_tree_are_trees() {
        let c = caterpillar(10, 3);
        assert_eq!(c.n(), 40);
        assert_eq!(c.m(), 39);
        assert!(c.is_connected());
        let b = balanced_tree(2, 5);
        assert_eq!(b.n(), 63);
        assert_eq!(b.m(), 62);
        assert!(b.is_connected());
    }

    #[test]
    fn planted_partition_denser_inside() {
        let mut r = rng();
        let g = planted_partition(2, 30, 0.5, 0.02, &mut r);
        let inside = g.edges().iter().filter(|e| (e.u < 30) == (e.v < 30)).count();
        let across = g.m() - inside;
        assert!(inside > across * 5, "inside={inside} across={across}");
    }

    #[test]
    fn ring_lattice_degree_and_connectivity() {
        let g = ring_lattice(20, 3);
        assert!(g.is_connected());
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 6);
        }
        assert_eq!(g.m(), 60);
    }

    #[test]
    fn planted_communities_min_cut_is_cross() {
        let g = planted_communities(16, 3, 4);
        assert!(g.is_connected());
        let crossing = g.edges().iter().filter(|e| (e.u < 16) != (e.v < 16)).count();
        assert_eq!(crossing, 4);
        // Exact check on a small instance: the bridges are the min cut.
        let exact = crate::stoer_wagner::stoer_wagner(&g);
        assert_eq!(exact.weight, 4);
    }

    #[test]
    fn chung_lu_head_is_heavier() {
        let mut r = rng();
        let g = chung_lu(300, 2.5, 6.0, &mut r);
        let head: usize = (0..10u32).map(|v| g.degree(v)).sum();
        let tail: usize = (290..300u32).map(|v| g.degree(v)).sum();
        assert!(head > tail, "head={head} tail={tail}");
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let g1 = connected_gnm(30, 60, 1..=5, &mut SmallRng::seed_from_u64(7));
        let g2 = connected_gnm(30, 60, 1..=5, &mut SmallRng::seed_from_u64(7));
        assert_eq!(g1.edges(), g2.edges());
    }
}
