//! Exponential-time exact oracles for small instances.
//!
//! These are the trust anchors of the test suite: every approximation
//! bound in the paper is checked against them on small graphs.

use crate::cut::{kcut_weight, CutResult};
use crate::graph::Graph;

/// Exact global min cut by subset enumeration. `O(2^n · m)`; refuses
/// graphs with more than 24 vertices.
pub fn min_cut(g: &Graph) -> CutResult {
    let n = g.n();
    assert!((2..=24).contains(&n), "brute force needs 2..=24 vertices");
    let mut best = u64::MAX;
    let mut best_mask = 1u32;
    // Fix vertex n-1 outside the side to halve the enumeration.
    for mask in 1u32..(1 << (n - 1)) {
        let mut w = 0u64;
        for e in g.edges() {
            let inu = e.u as usize != n - 1 && (mask >> e.u) & 1 == 1;
            let inv = e.v as usize != n - 1 && (mask >> e.v) & 1 == 1;
            if inu != inv {
                w += e.w;
                if w >= best {
                    break;
                }
            }
        }
        if w < best {
            best = w;
            best_mask = mask;
        }
    }
    let side: Vec<u32> = (0..(n - 1) as u32).filter(|&v| (best_mask >> v) & 1 == 1).collect();
    CutResult { weight: best, side }
}

/// Exact minimum k-cut by enumerating set partitions into exactly `k`
/// nonempty parts (restricted-growth strings). Practical to n ≈ 13.
///
/// Returns the optimal weight and a labeling.
pub fn min_kcut(g: &Graph, k: usize) -> (u64, Vec<u32>) {
    let n = g.n();
    assert!(n <= 14, "brute-force k-cut needs n <= 14");
    assert!((1..=n).contains(&k), "need 1 <= k <= n");
    let mut label = vec![0u32; n];
    let mut best = (u64::MAX, vec![0u32; n]);
    fn rec(
        g: &Graph,
        k: usize,
        v: usize,
        used: u32,
        label: &mut Vec<u32>,
        best: &mut (u64, Vec<u32>),
    ) {
        let n = g.n();
        if n - v < k.saturating_sub(used as usize) {
            return; // not enough vertices left to open the remaining parts
        }
        if v == n {
            if used as usize == k {
                let w = kcut_weight(g, label);
                if w < best.0 {
                    *best = (w, label.clone());
                }
            }
            return;
        }
        // Restricted growth: vertex v may join an existing part or open the
        // next part (at most k parts).
        let cap = (used + 1).min(k as u32);
        for c in 0..cap {
            label[v] = c;
            let new_used = used.max(c + 1);
            rec(g, k, v + 1, new_used, label, best);
        }
    }
    rec(g, k, 0, 0, &mut label, &mut best);
    assert!(best.0 != u64::MAX, "no partition found");
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::cut_weight;
    use crate::gen;
    use crate::graph::{Edge, Graph};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn min_cut_of_cycle() {
        let c = min_cut(&gen::cycle(8));
        assert_eq!(c.weight, 2);
        assert!(c.is_proper(8));
    }

    #[test]
    fn min_cut_respects_weights() {
        let g = Graph::new(3, vec![Edge::new(0, 1, 10), Edge::new(1, 2, 2), Edge::new(0, 2, 3)]);
        assert_eq!(min_cut(&g).weight, 5);
    }

    #[test]
    fn min_cut_side_consistent() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..20 {
            let n = rng.gen_range(3..10);
            let g = gen::connected_gnm(n, n + 2, 1..=7, &mut rng);
            let c = min_cut(&g);
            assert_eq!(cut_weight(&g, &c.mask(n)), c.weight);
        }
    }

    #[test]
    fn min_kcut_k2_equals_min_cut() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10 {
            let n = rng.gen_range(3..9);
            let g = gen::connected_gnm(n, n + 3, 1..=5, &mut rng);
            let (w2, labels) = min_kcut(&g, 2);
            assert_eq!(w2, min_cut(&g).weight);
            assert_eq!(labels.iter().copied().max().unwrap(), 1);
        }
    }

    #[test]
    fn min_kcut_monotone_in_k() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = gen::connected_gnm(8, 16, 1..=6, &mut rng);
        let mut last = 0;
        for k in 1..=4 {
            let (w, labels) = min_kcut(&g, k);
            assert!(w >= last, "k-cut weight must be non-decreasing in k");
            let parts: std::collections::HashSet<u32> = labels.iter().copied().collect();
            assert_eq!(parts.len(), k);
            last = w;
        }
    }

    #[test]
    fn min_kcut_n_parts_cuts_everything() {
        let g = gen::cycle(5);
        let (w, _) = min_kcut(&g, 5);
        assert_eq!(w, g.total_weight());
    }

    #[test]
    fn kcut_on_two_triangles_with_bridge() {
        // Two triangles joined by one edge: 2-cut is the bridge.
        let g = Graph::new(
            6,
            vec![
                Edge::new(0, 1, 1),
                Edge::new(1, 2, 1),
                Edge::new(0, 2, 1),
                Edge::new(3, 4, 1),
                Edge::new(4, 5, 1),
                Edge::new(3, 5, 1),
                Edge::new(2, 3, 1),
            ],
        );
        assert_eq!(min_kcut(&g, 2).0, 1);
        // 3-cut: bridge + two edges of one triangle.
        assert_eq!(min_kcut(&g, 3).0, 3);
    }
}
