//! Cut evaluation helpers.

use crate::graph::Graph;

/// A cut: one side of the bipartition plus its weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResult {
    /// Total weight of edges crossing the cut.
    pub weight: u64,
    /// Vertices on one side (the side is arbitrary but never empty and
    /// never the full vertex set for proper cuts).
    pub side: Vec<u32>,
}

impl CutResult {
    /// A cut from a membership mask.
    pub fn from_mask(g: &Graph, in_side: &[bool]) -> Self {
        let side = (0..g.n() as u32).filter(|&v| in_side[v as usize]).collect();
        Self { weight: cut_weight(g, in_side), side }
    }

    /// True when the side is a proper nonempty subset of the vertices.
    pub fn is_proper(&self, n: usize) -> bool {
        !self.side.is_empty() && self.side.len() < n
    }

    /// Membership mask of the side.
    pub fn mask(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for &v in &self.side {
            m[v as usize] = true;
        }
        m
    }
}

/// Weight of the cut induced by a membership mask: sum of weights of edges
/// with exactly one endpoint inside.
pub fn cut_weight(g: &Graph, in_side: &[bool]) -> u64 {
    debug_assert_eq!(in_side.len(), g.n());
    g.edges().iter().filter(|e| in_side[e.u as usize] != in_side[e.v as usize]).map(|e| e.w).sum()
}

/// Weight of the k-cut induced by a partition labeling: sum of weights of
/// edges whose endpoints carry different labels.
pub fn kcut_weight(g: &Graph, label: &[u32]) -> u64 {
    debug_assert_eq!(label.len(), g.n());
    g.edges().iter().filter(|e| label[e.u as usize] != label[e.v as usize]).map(|e| e.w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    fn square() -> Graph {
        Graph::new(
            4,
            vec![Edge::new(0, 1, 1), Edge::new(1, 2, 2), Edge::new(2, 3, 3), Edge::new(3, 0, 4)],
        )
    }

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let g = square();
        assert_eq!(cut_weight(&g, &[true, true, false, false]), 2 + 4);
        assert_eq!(cut_weight(&g, &[true, false, true, false]), 1 + 2 + 3 + 4);
        assert_eq!(cut_weight(&g, &[true, true, true, true]), 0);
    }

    #[test]
    fn cut_result_roundtrips_mask() {
        let g = square();
        let c = CutResult::from_mask(&g, &[false, true, true, false]);
        assert_eq!(c.weight, 1 + 3);
        assert_eq!(c.side, vec![1, 2]);
        assert!(c.is_proper(4));
        assert_eq!(c.mask(4), vec![false, true, true, false]);
    }

    #[test]
    fn improper_cuts_detected() {
        let g = square();
        assert!(!CutResult::from_mask(&g, &[false; 4]).is_proper(4));
        assert!(!CutResult::from_mask(&g, &[true; 4]).is_proper(4));
    }

    #[test]
    fn kcut_weight_three_parts() {
        let g = square();
        // Parts {0}, {1,2}, {3}: crossing edges 0-1 (1), 2-3 (3), 3-0 (4).
        assert_eq!(kcut_weight(&g, &[0, 1, 1, 2]), 8);
        // One part: nothing crosses.
        assert_eq!(kcut_weight(&g, &[5, 5, 5, 5]), 0);
    }
}
