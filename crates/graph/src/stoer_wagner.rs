//! Stoer–Wagner deterministic exact global minimum cut.
//!
//! `O(n³)` with an adjacency matrix — the workspace's ground-truth oracle
//! for approximation-quality experiments (E2) at up to a few thousand
//! vertices.

use crate::cut::CutResult;
use crate::graph::Graph;

/// Exact weighted global min cut of `g`.
///
/// Returns the cut weight and one realizing side. For disconnected graphs
/// the weight is 0 and the side is one connected component. Panics on
/// graphs with fewer than 2 vertices (no proper cut exists).
pub fn stoer_wagner(g: &Graph) -> CutResult {
    let n = g.n();
    assert!(n >= 2, "a cut needs at least two vertices");

    if !g.is_connected() {
        let comp = g.components();
        let side: Vec<u32> = (0..n as u32).filter(|&v| comp[v as usize] == 0).collect();
        return CutResult { weight: 0, side };
    }

    // Dense weight matrix; u128 accumulation is unnecessary because total
    // weight fits u64 by construction in this workspace.
    let mut w = vec![vec![0u64; n]; n];
    for e in g.edges() {
        w[e.u as usize][e.v as usize] += e.w;
        w[e.v as usize][e.u as usize] += e.w;
    }

    // merged[v]: original vertices currently fused into super-vertex v.
    let mut merged: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = CutResult { weight: u64::MAX, side: vec![] };

    while active.len() > 1 {
        // Maximum-adjacency ordering starting from active[0].
        let mut in_a = vec![false; n];
        let mut conn = vec![0u64; n];
        let mut order = Vec::with_capacity(active.len());
        let start = active[0];
        in_a[start] = true;
        order.push(start);
        for &v in &active {
            conn[v] = w[start][v];
        }
        while order.len() < active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| conn[v])
                .expect("graph became disconnected mid-phase");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    conn[v] += w[next][v];
                }
            }
        }
        let t = *order.last().unwrap();
        let s = order[order.len() - 2];
        // Cut-of-the-phase: {t's merged set} vs rest.
        let phase_weight = conn[t];
        if phase_weight < best.weight {
            best = CutResult { weight: phase_weight, side: merged[t].clone() };
        }
        // Merge t into s.
        let tm = std::mem::take(&mut merged[t]);
        merged[s].extend(tm);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }

    best.side.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::cut::cut_weight;
    use crate::gen;
    use crate::graph::{Edge, Graph};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bridge_is_the_min_cut() {
        let g = gen::barbell(4);
        let cut = stoer_wagner(&g);
        assert_eq!(cut.weight, 1);
        assert_eq!(cut.side.len(), 4);
    }

    #[test]
    fn cycle_min_cut_is_two() {
        let cut = stoer_wagner(&gen::cycle(9));
        assert_eq!(cut.weight, 2);
        assert!(cut.is_proper(9));
    }

    #[test]
    fn weighted_triangle() {
        let g = Graph::new(3, vec![Edge::new(0, 1, 10), Edge::new(1, 2, 2), Edge::new(0, 2, 3)]);
        let cut = stoer_wagner(&g);
        assert_eq!(cut.weight, 5); // isolate vertex 2
        assert!(cut.side == vec![2] || cut.side == vec![0, 1]);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let g = Graph::unit(4, &[(0, 1), (2, 3)]);
        let cut = stoer_wagner(&g);
        assert_eq!(cut.weight, 0);
        assert!(cut.is_proper(4));
    }

    #[test]
    fn side_realizes_reported_weight() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..25 {
            let n = rng.gen_range(3..25);
            let m = (n - 1) + rng.gen_range(0..2 * n);
            let g = gen::connected_gnm(n, m, 1..=20, &mut rng);
            let cut = stoer_wagner(&g);
            assert!(cut.is_proper(n));
            assert_eq!(cut_weight(&g, &cut.mask(n)), cut.weight);
        }
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..40 {
            let n = rng.gen_range(3..11);
            let m = (n - 1) + rng.gen_range(0..n * 2);
            let g = gen::connected_gnm(n, m.min(n * (n - 1) / 2), 1..=9, &mut rng);
            let sw = stoer_wagner(&g);
            let bf = brute::min_cut(&g);
            assert_eq!(sw.weight, bf.weight, "n={n} edges={:?}", g.edges());
        }
    }

    #[test]
    fn two_vertex_graph() {
        let g = Graph::new(2, vec![Edge::new(0, 1, 7)]);
        let cut = stoer_wagner(&g);
        assert_eq!(cut.weight, 7);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_vertex() {
        let _ = stoer_wagner(&Graph::new(1, vec![]));
    }
}
