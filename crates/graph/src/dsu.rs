//! Union–find (disjoint set union) with union by rank and path halving.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), rank: vec![0; n], sets: n }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `false` if already merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Contiguous labels `0..k` per set, in order of first appearance.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut label = vec![u32::MAX; n];
        let mut next = 0;
        let mut out = vec![0u32; n];
        for v in 0..n as u32 {
            let r = self.find(v) as usize;
            if label[r] == u32::MAX {
                label[r] = next;
                next += 1;
            }
            out[v as usize] = label[r];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut d = Dsu::new(5);
        assert_eq!(d.set_count(), 5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert!(d.same(0, 1));
        assert!(!d.same(0, 2));
        assert_eq!(d.set_count(), 3);
        d.union(1, 3);
        assert!(d.same(0, 2));
        assert_eq!(d.set_count(), 2);
    }

    #[test]
    fn labels_are_contiguous_first_appearance() {
        let mut d = Dsu::new(6);
        d.union(4, 5);
        d.union(0, 2);
        let l = d.labels();
        assert_eq!(l[0], l[2]);
        assert_eq!(l[4], l[5]);
        assert_eq!(l[0], 0);
        assert_eq!(l[1], 1);
        assert_eq!(l[3], 3 - 1); // 0:{0,2} 1:{1} 2:{3} 3:{4,5}
        assert_eq!(*l.iter().max().unwrap(), 3);
    }

    #[test]
    fn chains_compress() {
        let mut d = Dsu::new(1000);
        for i in 0..999 {
            d.union(i, i + 1);
        }
        assert_eq!(d.set_count(), 1);
        for i in 0..1000 {
            assert!(d.same(0, i));
        }
    }

    #[test]
    fn empty_dsu() {
        let mut d = Dsu::new(0);
        assert!(d.is_empty());
        assert_eq!(d.labels(), Vec::<u32>::new());
    }
}
