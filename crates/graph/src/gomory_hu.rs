//! Gomory–Hu (equivalent-flow) trees via Gusfield's algorithm.
//!
//! Definition 8 of the paper: a weighted tree on `V(G)` such that for every
//! pair `(s,t)` the minimum edge weight on the tree path equals the
//! minimum s-t cut of `G`. Gusfield's variant computes such a tree with
//! `n - 1` max-flow calls and no graph contraction.
//!
//! The k-cut machinery (§5) uses the tree in two ways:
//! * the Saran–Vazirani `(2 - 2/k)`-approximate k-cut built from the
//!   lightest tree cuts (Observation 10 / Theorem 6);
//! * a certified lower bound `OPT_k ≥ (heaviest of the k-1 lightest GH
//!   cuts) / 2`-style bounds used in tests.

use crate::cut::CutResult;
use crate::graph::Graph;
use crate::maxflow::Dinic;

/// A Gomory–Hu tree: `parent[v]` and `weight[v]` describe the tree edge
/// `v — parent[v]` of weight `weight[v]`; vertex 0 is the root
/// (`parent[0] = 0`, `weight[0]` unused).
#[derive(Debug, Clone)]
pub struct GomoryHuTree {
    /// Parent links (vertex 0 is its own parent).
    pub parent: Vec<u32>,
    /// Weight of the edge to the parent (min s-t cut value).
    pub weight: Vec<u64>,
    /// For each non-root vertex, the side mask of the min cut separating it
    /// from its parent (true = on `v`'s side).
    sides: Vec<Vec<bool>>,
}

impl GomoryHuTree {
    /// Build the tree for a connected graph `g` (n ≥ 1).
    pub fn build(g: &Graph) -> Self {
        let n = g.n();
        let mut parent = vec![0u32; n];
        let mut weight = vec![0u64; n];
        let mut sides: Vec<Vec<bool>> = vec![Vec::new(); n];
        if n <= 1 {
            return Self { parent, weight, sides };
        }
        let mut dinic = Dinic::new(g);
        for i in 1..n as u32 {
            let p = parent[i as usize];
            let f = dinic.max_flow(i, p);
            let side = dinic.min_cut_side(i);
            weight[i as usize] = f;
            for j in (i + 1)..n as u32 {
                if side[j as usize] && parent[j as usize] == p {
                    parent[j as usize] = i;
                }
            }
            sides[i as usize] = side;
        }
        Self { parent, weight, sides }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Minimum s-t cut value read off the tree: the minimum edge weight on
    /// the tree path between `s` and `t`.
    pub fn min_cut_value(&self, s: u32, t: u32) -> u64 {
        assert_ne!(s, t);
        // Walk both vertices to the root collecting path minima.
        let depth = |mut v: u32| {
            let mut d = 0;
            while self.parent[v as usize] != v {
                v = self.parent[v as usize];
                d += 1;
            }
            d
        };
        let (mut a, mut b) = (s, t);
        let (mut da, mut db) = (depth(a), depth(b));
        let mut best = u64::MAX;
        while da > db {
            best = best.min(self.weight[a as usize]);
            a = self.parent[a as usize];
            da -= 1;
        }
        while db > da {
            best = best.min(self.weight[b as usize]);
            b = self.parent[b as usize];
            db -= 1;
        }
        while a != b {
            best = best.min(self.weight[a as usize]);
            best = best.min(self.weight[b as usize]);
            a = self.parent[a as usize];
            b = self.parent[b as usize];
        }
        best
    }

    /// Tree edges `(v, parent[v], weight)` sorted by non-decreasing weight —
    /// the candidate cuts of Saran–Vazirani.
    pub fn edges_by_weight(&self) -> Vec<(u32, u32, u64)> {
        let mut out: Vec<(u32, u32, u64)> = (1..self.n() as u32)
            .map(|v| (v, self.parent[v as usize], self.weight[v as usize]))
            .collect();
        out.sort_by_key(|&(v, _, w)| (w, v));
        out
    }

    /// The global min cut read off the tree (lightest tree edge) together
    /// with its stored side.
    pub fn global_min_cut(&self) -> CutResult {
        let (v, _, w) = *self.edges_by_weight().first().expect("tree needs at least one edge");
        let side = &self.sides[v as usize];
        CutResult { weight: w, side: (0..self.n() as u32).filter(|&x| side[x as usize]).collect() }
    }

    /// Saran–Vazirani greedy k-cut from the tree: union of the `k-1`
    /// lightest tree cuts. Returns the total weight of the union of those
    /// cut edge sets in `g` and a `k`-part labeling.
    ///
    /// By Theorem 6 this is a `(2 - 2/k)`-approximation of Min k-Cut.
    pub fn greedy_kcut(&self, g: &Graph, k: usize) -> (u64, Vec<u32>) {
        assert!(k >= 1 && k <= self.n());
        let mut removed = vec![false; g.m()];
        let mut chosen = 0usize;
        #[allow(clippy::explicit_counter_loop)] // chosen counts accepted edges, not iterations
        for (v, _, _) in self.edges_by_weight() {
            if chosen + 1 >= k {
                break;
            }
            // Removing the union of cuts for the k-1 lightest tree edges.
            let side = &self.sides[v as usize];
            for (i, e) in g.edges().iter().enumerate() {
                if side[e.u as usize] != side[e.v as usize] {
                    removed[i] = true;
                }
            }
            chosen += 1;
        }
        let kept: Vec<u32> = (0..g.m() as u32).filter(|&i| removed[i as usize]).collect();
        let h = g.without_edges(
            &(0..g.m() as u32).filter(|&i| !removed[i as usize]).collect::<Vec<_>>(),
        );
        // `h` now contains exactly the removed edges; weight of the k-cut is
        // the weight of removed edges. Labeling comes from components of the
        // graph without removed edges.
        let weight = h.total_weight();
        let residual = g.without_edges(&kept);
        (weight, residual.components())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::{Edge, Graph};
    use crate::maxflow::min_st_cut;
    use crate::stoer_wagner::stoer_wagner;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tree_property_on_small_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..15 {
            let n = rng.gen_range(2..14);
            let g = gen::connected_gnm(n, (n - 1) + rng.gen_range(0..n), 1..=9, &mut rng);
            let gh = GomoryHuTree::build(&g);
            for s in 0..n as u32 {
                for t in (s + 1)..n as u32 {
                    assert_eq!(gh.min_cut_value(s, t), min_st_cut(&g, s, t), "n={n} s={s} t={t}");
                }
            }
        }
    }

    #[test]
    fn global_min_cut_matches_stoer_wagner() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..15 {
            let n = rng.gen_range(3..20);
            let g = gen::connected_gnm(n, 2 * n, 1..=9, &mut rng);
            let gh = GomoryHuTree::build(&g);
            let sw = stoer_wagner(&g);
            let cut = gh.global_min_cut();
            assert_eq!(cut.weight, sw.weight);
            assert!(cut.is_proper(n));
            assert_eq!(crate::cut::cut_weight(&g, &cut.mask(n)), cut.weight);
        }
    }

    #[test]
    fn path_tree_weights_are_bottlenecks() {
        let g = Graph::new(4, vec![Edge::new(0, 1, 5), Edge::new(1, 2, 3), Edge::new(2, 3, 9)]);
        let gh = GomoryHuTree::build(&g);
        assert_eq!(gh.min_cut_value(0, 3), 3);
        assert_eq!(gh.min_cut_value(2, 3), 9);
        assert_eq!(gh.min_cut_value(0, 1), 5);
    }

    #[test]
    fn greedy_kcut_splits_into_k_components() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::planted_partition(3, 8, 0.9, 0.05, &mut rng);
        if !g.is_connected() {
            return; // seed-dependent; the property below needs connectivity
        }
        let gh = GomoryHuTree::build(&g);
        let (w, labels) = gh.greedy_kcut(&g, 3);
        let parts = labels.iter().copied().max().unwrap() + 1;
        assert!(parts >= 3, "got {parts} parts");
        assert_eq!(crate::cut::kcut_weight(&g, &labels), w);
    }

    #[test]
    fn greedy_kcut_k1_is_trivial() {
        let g = gen::cycle(6);
        let gh = GomoryHuTree::build(&g);
        let (w, labels) = gh.greedy_kcut(&g, 1);
        assert_eq!(w, 0);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn single_vertex_tree() {
        let gh = GomoryHuTree::build(&Graph::new(1, vec![]));
        assert_eq!(gh.n(), 1);
    }
}
