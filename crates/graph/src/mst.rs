//! Kruskal minimum spanning forest over arbitrary edge priorities.
//!
//! The contraction machinery never uses the graph's *capacities* as the
//! spanning-tree ordering — it uses random contraction *priorities*
//! (`mincut-core::priorities`). Kruskal is therefore parameterized by an
//! explicit priority array.

use crate::dsu::Dsu;
use crate::graph::Graph;

/// A minimum spanning forest, as edge indices into the source graph.
#[derive(Debug, Clone)]
pub struct MstForest {
    /// Indices of forest edges, sorted by increasing priority.
    pub edges: Vec<u32>,
    /// Number of trees in the forest (= connected components).
    pub trees: usize,
}

impl MstForest {
    /// Total priority-weight of the forest under a priority array.
    pub fn total_priority(&self, prio: &[u64]) -> u128 {
        self.edges.iter().map(|&e| prio[e as usize] as u128).sum()
    }
}

/// Kruskal MSF of `g` under `prio` (one priority per edge; ties broken by
/// edge index, so the forest is unique even with duplicate priorities).
pub fn kruskal(g: &Graph, prio: &[u64]) -> MstForest {
    assert_eq!(prio.len(), g.m(), "one priority per edge");
    let mut order: Vec<u32> = (0..g.m() as u32).collect();
    order.sort_unstable_by_key(|&e| (prio[e as usize], e));
    let mut dsu = Dsu::new(g.n());
    let mut edges = Vec::with_capacity(g.n().saturating_sub(1));
    for e in order {
        let ed = g.edge(e as usize);
        if dsu.union(ed.u, ed.v) {
            edges.push(e);
            if dsu.set_count() == 1 {
                break;
            }
        }
    }
    // Each forest edge merges two components, so starting from n singletons:
    let trees = g.n() - edges.len();
    MstForest { edges, trees }
}

/// Kruskal MSF using the graph's own capacities as priorities (classic MST).
pub fn kruskal_by_weight(g: &Graph) -> MstForest {
    let prio: Vec<u64> = g.edges().iter().map(|e| e.w).collect();
    kruskal(g, &prio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::{Edge, Graph};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mst_of_square_with_diagonal() {
        // Square 0-1-2-3-0 plus diagonal 0-2; priorities favor the diagonal.
        let g = Graph::new(
            4,
            vec![
                Edge::new(0, 1, 1),
                Edge::new(1, 2, 1),
                Edge::new(2, 3, 1),
                Edge::new(3, 0, 1),
                Edge::new(0, 2, 1),
            ],
        );
        let forest = kruskal(&g, &[10, 20, 30, 40, 5]);
        assert_eq!(forest.trees, 1);
        // Priority order: diag(5), 0-1(10), 1-2(20, cycle, skipped), 2-3(30).
        assert_eq!(forest.edges, vec![4, 0, 2]);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = Graph::unit(5, &[(0, 1), (1, 2), (3, 4)]);
        let forest = kruskal(&g, &[3, 2, 1]);
        assert_eq!(forest.trees, 2);
        assert_eq!(forest.edges.len(), 3);
        // Sorted by priority: edge 2, then 1, then 0.
        assert_eq!(forest.edges, vec![2, 1, 0]);
    }

    #[test]
    fn isolated_vertices_count_as_trees() {
        let g = Graph::unit(4, &[(0, 1)]);
        let forest = kruskal(&g, &[1]);
        assert_eq!(forest.trees, 3);
    }

    #[test]
    fn mst_total_weight_matches_prim_reference() {
        // Cross-check Kruskal against an independent Prim implementation on
        // random weighted graphs.
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..20 {
            let n = rng.gen_range(2..40);
            let m = (n - 1) + rng.gen_range(0..n);
            let g = gen::connected_gnm(n, m, 1..=100, &mut rng);
            let prio: Vec<u64> = g.edges().iter().map(|e| e.w).collect();
            let forest = kruskal(&g, &prio);
            assert_eq!(forest.edges.len(), n - 1);
            assert_eq!(forest.total_priority(&prio), prim_total(&g) as u128);
        }
    }

    fn prim_total(g: &Graph) -> u64 {
        let n = g.n();
        let mut in_tree = vec![false; n];
        let mut best = vec![u64::MAX; n];
        best[0] = 0;
        let mut total = 0;
        for _ in 0..n {
            let v = (0..n).filter(|&v| !in_tree[v]).min_by_key(|&v| best[v]).unwrap();
            in_tree[v] = true;
            total += best[v];
            for &(to, e) in g.neighbors(v as u32) {
                let w = g.edge(e as usize).w;
                if !in_tree[to as usize] && w < best[to as usize] {
                    best[to as usize] = w;
                }
            }
        }
        total
    }

    #[test]
    fn unique_priorities_give_unique_mst() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::connected_gnm(30, 90, 1..=1, &mut rng);
        let mut prio: Vec<u64> = (0..g.m() as u64).collect();
        use rand::seq::SliceRandom;
        prio.shuffle(&mut rng);
        let a = kruskal(&g, &prio);
        let b = kruskal(&g, &prio);
        assert_eq!(a.edges, b.edges);
    }
}
