//! FNV-1a: the workspace's one stable, dependency-free byte hash.
//!
//! Used wherever a value must hash identically across runs and platforms —
//! shard routing in `cut_engine`, log digests in the stress harness,
//! per-experiment RNG seeding in `cut_bench`. `std`'s hashers are
//! explicitly *not* stable across releases, which is why this exists.

/// Incremental FNV-1a folder, for hashing streams without buffering them.
///
/// ```
/// use cut_graph::hash::{fnv1a, Fnv1a};
///
/// let mut h = Fnv1a::new();
/// h.write(b"split ");
/// h.write(b"input");
/// assert_eq!(h.finish(), fnv1a(b"split input"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: 0xcbf29ce484222325 }
    }

    /// Fold `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        for chunk in [&b"ab"[..], &b""[..], &b"cde"[..]] {
            h.write(chunk);
        }
        assert_eq!(h.finish(), fnv1a(b"abcde"));
    }
}
