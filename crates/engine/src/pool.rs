//! The borrowed-worker pool: idle shard workers lend compute capacity
//! to whoever is running an expensive cut.
//!
//! Same loan discipline as the work-stealing protocol (PR 4): capacity
//! moves with an explicit grant and comes back when the borrower is
//! done — the return rides the [`CutLoan`] drop, so a panicking
//! borrower still gives the capacity back. The loan carries only a
//! *count*: borrowed workers are OS threads the borrower spawns itself
//! (`mincut_core::par_approx_min_cut`), sized by how many shard workers
//! are currently parked and therefore not competing for cores.
//! Determinism is unaffected by construction — the parallel kernel
//! merges to byte-identical results at any helper count — so the pool
//! only ever changes wall-clock, never a response stream.
//!
//! Two counters keep the ledger honest under racing park/wake/borrow:
//! workers own `registered` (incremented on park, decremented on wake,
//! always by the same thread in pairs) and loans own `out`; available
//! capacity is `registered - out`, saturating at zero when a lent
//! worker happens to wake before the loan returns.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared idle-capacity ledger. `CutPool::default()` is the disabled
/// pool (no shared state): every borrow returns an empty loan, which is
/// what a plain single-threaded [`Engine`](crate::Engine) runs with.
#[derive(Debug, Clone, Default)]
pub struct CutPool(Option<Arc<PoolShared>>);

#[derive(Debug, Default)]
struct PoolShared {
    /// Shard workers currently parked.
    registered: AtomicUsize,
    /// Capacity currently out on loan.
    out: AtomicUsize,
    /// Loans that actually borrowed at least one worker.
    loans: AtomicU64,
    /// Total workers handed out across those loans.
    lent: AtomicU64,
}

impl CutPool {
    /// An enabled, initially-empty pool: workers register capacity as
    /// they park ([`enter_idle`](CutPool::enter_idle)).
    pub fn enabled() -> Self {
        CutPool(Some(Arc::new(PoolShared::default())))
    }

    /// True when this handle shares a ledger (shard mode with the kernel
    /// pool on).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// A worker parked with an empty queue: its core is up for loan.
    pub fn enter_idle(&self) {
        if let Some(s) = &self.0 {
            s.registered.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The worker woke up and is competing for its core again. Paired
    /// with [`enter_idle`](CutPool::enter_idle) by the worker itself; an
    /// outstanding loan against this capacity simply leaves `out`
    /// exceeding `registered` until it returns (available saturates at
    /// zero).
    pub fn leave_idle(&self) {
        if let Some(s) = &self.0 {
            let prev = s.registered.fetch_sub(1, Ordering::AcqRel);
            debug_assert!(prev > 0, "leave_idle without a matching enter_idle");
        }
    }

    /// Borrow up to `max` currently-available workers. The returned loan
    /// gives the capacity back on drop.
    pub fn borrow(&self, max: usize) -> CutLoan {
        let Some(s) = &self.0 else { return CutLoan { pool: CutPool(None), helpers: 0 } };
        loop {
            let out = s.out.load(Ordering::Acquire);
            let registered = s.registered.load(Ordering::Acquire);
            let take = registered.saturating_sub(out).min(max);
            if take == 0 {
                return CutLoan { pool: self.clone(), helpers: 0 };
            }
            if s.out.compare_exchange(out, out + take, Ordering::AcqRel, Ordering::Acquire).is_ok()
            {
                s.loans.fetch_add(1, Ordering::Relaxed);
                s.lent.fetch_add(take as u64, Ordering::Relaxed);
                return CutLoan { pool: self.clone(), helpers: take };
            }
        }
    }

    /// `(loans, workers lent)` over the pool's lifetime.
    pub fn loan_totals(&self) -> (u64, u64) {
        match &self.0 {
            Some(s) => (s.loans.load(Ordering::Relaxed), s.lent.load(Ordering::Relaxed)),
            None => (0, 0),
        }
    }

    /// Currently-available capacity (for tests/introspection).
    pub fn idle_now(&self) -> usize {
        self.0.as_ref().map_or(0, |s| {
            s.registered.load(Ordering::Acquire).saturating_sub(s.out.load(Ordering::Acquire))
        })
    }
}

/// An outstanding capacity loan; gives the workers back on drop.
#[derive(Debug)]
pub struct CutLoan {
    pool: CutPool,
    helpers: usize,
}

impl CutLoan {
    /// How many workers this loan actually secured (0 on a disabled or
    /// drained pool).
    pub fn helpers(&self) -> usize {
        self.helpers
    }
}

impl Drop for CutLoan {
    fn drop(&mut self) {
        if self.helpers > 0 {
            if let Some(s) = &self.pool.0 {
                let prev = s.out.fetch_sub(self.helpers, Ordering::AcqRel);
                debug_assert!(prev >= self.helpers, "loan returned more than was out");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pool_lends_nothing() {
        let pool = CutPool::default();
        assert!(!pool.is_enabled());
        pool.enter_idle();
        assert_eq!(pool.borrow(4).helpers(), 0);
        assert_eq!(pool.loan_totals(), (0, 0));
    }

    #[test]
    fn borrow_is_capped_by_idle_capacity_and_returns_on_drop() {
        let pool = CutPool::enabled();
        pool.enter_idle();
        pool.enter_idle();
        pool.enter_idle();
        {
            let loan = pool.borrow(2);
            assert_eq!(loan.helpers(), 2);
            assert_eq!(pool.idle_now(), 1);
            // A second borrower takes what is left.
            let rest = pool.borrow(5);
            assert_eq!(rest.helpers(), 1);
            assert_eq!(pool.idle_now(), 0);
            assert_eq!(pool.borrow(1).helpers(), 0, "drained");
        }
        assert_eq!(pool.idle_now(), 3, "both loans returned");
        assert_eq!(pool.loan_totals(), (2, 3));
    }

    #[test]
    fn wake_during_loan_keeps_the_ledger_balanced() {
        let pool = CutPool::enabled();
        pool.enter_idle();
        let loan = pool.borrow(1);
        assert_eq!(loan.helpers(), 1);
        // The parked worker wakes while its core is lent: out temporarily
        // exceeds registered, available saturates at zero ...
        pool.leave_idle();
        assert_eq!(pool.idle_now(), 0);
        drop(loan);
        // ... and after both the wake and the return, the ledger is back
        // to exactly zero — no phantom capacity.
        assert_eq!(pool.idle_now(), 0);
        pool.enter_idle();
        assert_eq!(pool.idle_now(), 1);
    }
}
