//! The durability seam: what the engine asks of a persistence backend.
//!
//! The engine never touches the filesystem itself. When a store is
//! attached ([`crate::Engine::attach_store`]), the engine calls these
//! hooks at well-defined points of request execution:
//!
//! - [`GraphStore::log`] after every **applied** named request against a
//!   resident graph (creates, mutations, queries — responses included,
//!   errors included). Queries are logged too because serving one can
//!   mutate cache state (stale-entry removal, LRU recency), and recovery
//!   must reproduce responses — `cached` flags and all — byte-exactly.
//! - [`GraphStore::drop_graph`] when a drop succeeds, so the backend can
//!   tombstone and garbage-collect the graph's files.
//! - [`GraphStore::wants_snapshot`] / [`GraphStore::snapshot`] after a
//!   log append: the backend decides when a graph's WAL has grown enough
//!   to be worth compacting into a wholesale-state snapshot (the
//!   serialized [`crate::GraphExport`] trace).
//! - [`GraphStore::spill`] when the engine evicts a cold graph under a
//!   residency cap, and [`GraphStore::load`] when a request touches a
//!   graph that is not resident (spilled earlier, or durable from a
//!   previous process).
//!
//! The trait lives here (not in `cut_store`) so the engine stays free of
//! filesystem dependencies and the store crate can depend on the engine
//! for the request/response codec without a cycle.

use crate::request::{Request, Response};

/// A persistence backend for named graphs: write-ahead logging, snapshot
/// compaction, cold-graph spill, and crash recovery.
///
/// Implementations must be thread-safe: the sharded front-end shares one
/// store across all worker threads (each graph is only ever touched by
/// its owning worker at a time, but different graphs log concurrently).
pub trait GraphStore: Send + Sync {
    /// Append one applied `(request, response)` pair to `name`'s WAL.
    /// Called after execution, before the response is released to the
    /// caller — a logged record implies the effect is applied.
    fn log(&self, name: &str, request: &Request, response: &Response);

    /// True when the backend holds durable state for `name` (a WAL, a
    /// snapshot, or both — and no tombstone after them).
    fn contains(&self, name: &str) -> bool;

    /// Every graph name with durable state, sorted.
    fn names(&self) -> Vec<String>;

    /// True when `name`'s WAL has grown enough since the last snapshot
    /// that the engine should hand over a fresh wholesale-state snapshot.
    fn wants_snapshot(&self, name: &str) -> bool;

    /// Persist `state` (a [`crate::GraphExport`] trace) as `name`'s new
    /// snapshot and compact the WAL behind it.
    fn snapshot(&self, name: &str, state: &str);

    /// Persist `state` as `name`'s snapshot because the engine is
    /// evicting the graph from memory — same bytes as
    /// [`GraphStore::snapshot`], counted separately.
    fn spill(&self, name: &str, state: &str);

    /// Read back everything needed to reconstruct `name`: the latest
    /// valid snapshot (if any) plus the WAL records past its watermark.
    /// `None` when the backend holds nothing for `name`.
    fn load(&self, name: &str) -> Option<RecoveredGraph>;

    /// Record a successful drop: tombstone the WAL, then garbage-collect
    /// `name`'s files.
    fn drop_graph(&self, name: &str, request: &Request, response: &Response);

    /// The backend's counter families for the telemetry registry, as
    /// `(name, value)` pairs — exported under the `store_` prefix by
    /// `stats metrics` (recovery tallies like torn tails truncated and
    /// tombstones collected, plus running append/compaction counts).
    /// Defaults to none so trivial backends need not bother. Because the
    /// store is shared across shards, exactly one shard exports these per
    /// merged snapshot.
    fn telemetry(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// What [`GraphStore::load`] returns: the raw material for rebuilding one
/// graph's in-memory state.
pub struct RecoveredGraph {
    /// The latest valid snapshot as a [`crate::GraphExport`] trace, if
    /// one was ever written.
    pub snapshot: Option<String>,
    /// Request trace lines logged after the snapshot's watermark, in
    /// append order. Replaying them through normal execution reproduces
    /// the exact pre-crash state (epochs, cache contents, recency).
    pub wal: Vec<String>,
}
