//! # `cut-engine` — a long-lived, multi-graph cut-query engine
//!
//! The paper's algorithms ((2+ε) Min Cut, (4+ε) Min k-Cut, singleton cuts)
//! become *servable*: an [`Engine`] owns a registry of named graphs, takes
//! mutations (insert/delete weighted edges, contract vertices) and queries
//! (min cut, singleton cut, k-cut, connectivity, s-t cut weight) through a
//! single [`Engine::execute`]`(Request) -> Response` entry point, and
//! caches query answers with **mutation-epoch invalidation**: repeated
//! queries against an unchanged graph are O(1) hash lookups, and any
//! mutation invalidates exactly that graph's cached answers.
//!
//! Two execution fronts share that contract:
//!
//! - [`Engine`] — the single-threaded reference path: one registry, one
//!   thread, deterministic end to end.
//! - [`ShardedEngine`] (the [`shard`] module) — the scaling path: the
//!   registry is partitioned across N worker threads through a
//!   router-owned placement table (default: a stable hash of the graph
//!   name), per-graph request order is preserved, cross-graph requests
//!   run concurrently, and the response stream is byte-identical to the
//!   single-threaded engine's for any shard count. With
//!   [`ShardOptions::batch`], workers drain queued runs of same-graph
//!   queries into read batches that share one index snapshot. With
//!   [`PlacementOptions`], the router *adapts*: per-graph load accounting
//!   drives graph migrations off overloaded shards at safe epochs (the
//!   whole entry — index, epoch, warmed cache — moves behind a per-graph
//!   barrier), and idle workers steal tail runs of same-graph queries
//!   from the longest queue. Neither changes a response; see
//!   `docs/SHARDING.md` for the protocols and the determinism argument.
//!
//! A third front lives out-of-crate: the `cut_server` crate's
//! `cut-server` binary serves a [`ShardedEngine`] over TCP, speaking
//! [`Request::to_trace_line`]/[`Response::to_trace_line`] as a
//! line-delimited wire protocol (`docs/PROTOCOL.md`), and the
//! `cut_client` crate is the matching client library. The trace codec
//! doubles as the wire codec, so remote responses are byte-identical to
//! in-process ones.
//!
//! Beneath both sits the **index layer** (the `cut_index` crate): every
//! registry entry keeps a generation-stamped CSR snapshot (one build per
//! mutation, shared by all reads in between), an incremental DSU so
//! `Connectivity` skips BFS, running degree/weight summaries, and an LRU
//! query cache. [`EngineStats`] reports how much work the layer absorbed
//! (builds avoided, DSU fast-path hits, evictions, batch sizes).
//!
//! The [`workload`] module generates seeded, replayable request streams:
//! closed-loop (weighted action mix + Zipf graph-popularity skew) or
//! **trace-shaped** — a [`Timeline`] of phases with their own arrival
//! processes (steady / Poisson bursts / diurnal), mixes, and popularity
//! drift (hot-set rotation, flash crowds), emitting deterministic
//! arrival timestamps, and serializing losslessly to a replayable trace
//! ([`Workload::to_trace`]/[`Workload::from_trace`]). The `cut_bench`
//! crate's `stress` binary replays them through either front
//! (`--shards N`), closed-loop or open-loop (`--arrival`/`--phases`),
//! and reports throughput, latency (per-action service times, or
//! per-phase latency-under-load), per-shard occupancy, and cache hit
//! rate. `docs/WORKLOADS.md` is the model reference.
//!
//! ```
//! use cut_engine::{Engine, GraphSpec, Mutation, Query, Request, Response};
//!
//! let mut engine = Engine::new();
//! engine.execute(Request::Create {
//!     name: "ring".into(),
//!     spec: GraphSpec::Cycle { n: 16 },
//! });
//!
//! // A cycle's min cut is 2 ...
//! let r = engine.execute(Request::Query {
//!     name: "ring".into(),
//!     query: Query::ExactMinCut,
//! });
//! assert!(matches!(r, Response::CutValue { weight: 2, cached: false, .. }));
//!
//! // ... the repeat is served from the epoch cache ...
//! let r = engine.execute(Request::Query {
//!     name: "ring".into(),
//!     query: Query::ExactMinCut,
//! });
//! assert!(r.was_cached());
//!
//! // ... and a mutation invalidates it.
//! engine.execute(Request::Mutate {
//!     name: "ring".into(),
//!     op: Mutation::InsertEdge { u: 0, v: 8, w: 5 },
//! });
//! let r = engine.execute(Request::Query {
//!     name: "ring".into(),
//!     query: Query::ExactMinCut,
//! });
//! assert!(!r.was_cached());
//! ```

//! **Durability** is a pluggable seam: [`GraphStore`] (the [`store_api`]
//! module) is the backend interface — write-ahead logging of applied
//! requests, snapshot compaction of [`GraphExport`] traces, cold-graph
//! spill under [`EngineConfig::resident_cap`], and lazy fault-in on
//! access. The `cut_store` crate is the filesystem implementation;
//! `docs/DURABILITY.md` covers the formats and the crash-recovery
//! protocol.

pub mod engine;
pub mod pool;
pub mod request;
pub mod shard;
pub mod store_api;
pub mod workload;

// The index layer under every registry entry (see the `cut_index` crate).
pub use cut_index::{GraphSummary, IndexStats, LruCache};
// The telemetry layer (see the `cut_obs` crate): the registry both fronts
// export through `stats metrics`, the span/slow-log machinery behind
// `stats slowlog`, and the clocks that drive them.
pub use cut_obs::{
    span_flags, Clock, Histogram, MonotonicClock, Registry, SlowLog, Span, TestClock,
};
pub use engine::BATCH_BUCKET_LABELS;
pub use engine::{batch_bucket, Engine, EngineConfig, EngineStats, GraphExport, BATCH_BUCKETS};
pub use pool::{CutLoan, CutPool};
pub use request::{GraphSpec, Mutation, Query, Request, Response, QUERY_KINDS};
pub use shard::{PlacementOptions, PlacementReport, ShardOptions, ShardedEngine, Ticket};
pub use store_api::{GraphStore, RecoveredGraph};
pub use workload::{
    ActionMix, ArrivalProcess, Phase, PopularityDrift, Timeline, Workload, WorkloadConfig,
};
