//! The multi-graph cut-query engine.
//!
//! [`Engine`] owns a registry of named graphs, applies mutations, answers
//! queries, and caches query answers keyed by `(query, mutation epoch)`:
//! a repeated query against an unchanged graph is a hash lookup, any
//! mutation bumps the graph's epoch and implicitly invalidates every
//! cached answer for it.
//!
//! Under the cache sits the **index layer** (`cut_index`): each registry
//! entry carries a [`GraphIndex`] holding a generation-stamped CSR
//! snapshot (built at most once per mutation, shared by every read in
//! between), an incremental DSU that answers `Connectivity` without BFS
//! (O(α) across inserts, rebuilt lazily after deletes/contractions), and
//! running degree/weight summaries. The query cache itself is a real LRU
//! ([`cut_index::LruCache`]) bounded by
//! [`EngineConfig::max_cache_entries`].
//!
//! Everything is deterministic: queries that involve randomness carry
//! their seed in the query value itself, so an identical request sequence
//! yields an identical response sequence — the substrate for replayable
//! workloads and the stress harness's byte-identical logs. The index layer
//! never changes a response, only what producing it costs;
//! [`EngineStats`] counts the work it absorbed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cut_graph::{stoer_wagner, CutResult, Edge, Graph};
use cut_index::{ConnRead, GraphIndex, IndexStats, KernelRead, LruCache};
use cut_obs::{Clock, Registry};
use mincut_core::{
    approx_min_cut, apx_split, exponential_priorities, par_approx_min_cut, smallest_singleton_cut,
    KCutOptions, MinCutOptions,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::pool::CutPool;
use crate::request::{
    decode_name, encode_name, GraphSpec, Mutation, Query, Request, Response, QUERY_KINDS,
};
use crate::store_api::GraphStore;

/// Number of buckets in [`EngineStats::batch_hist`]: sizes 1, 2, 3–4,
/// 5–8, 9–16, 17–32, 33+.
pub const BATCH_BUCKETS: usize = 7;

/// The [`EngineStats::batch_hist`] bucket a read batch of `size` falls in.
pub fn batch_bucket(size: usize) -> usize {
    match size {
        0..=1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        _ => 6,
    }
}

/// Human-readable labels for the [`EngineStats::batch_hist`] buckets.
pub const BATCH_BUCKET_LABELS: [&str; BATCH_BUCKETS] =
    ["1", "2", "3-4", "5-8", "9-16", "17-32", "33+"];

/// Tunables shared by every query the engine serves.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// ε for `(2+ε)`-approximate min-cut queries.
    pub epsilon: f64,
    /// Base-case size for the recursive contraction.
    pub base_size: usize,
    /// Top-level repetitions for approximate min cut (0 ⇒ `⌈log₂ n⌉`).
    pub repetitions: usize,
    /// Components at most this large are k-cut exactly.
    pub exact_below: usize,
    /// Per-graph query cache capacity (LRU: the coldest entry is evicted
    /// at capacity, so hot queries survive under seed-heavy workloads).
    pub max_cache_entries: usize,
    /// Resident-graph budget: with an attached store, at most this many
    /// graphs are kept in memory; the coldest (by windowed request-cost
    /// heat, the same currency the placement rebalancer tracks) are
    /// spilled to the store and faulted back on access. `0` = unlimited
    /// (no spilling). Ignored without a store.
    pub resident_cap: usize,
    /// Serve connectivity from the dynamic forest's O(1) labels and gate
    /// stale cut-cache entries behind partition certificates (the
    /// default). `false` falls back to the PR 3 incremental-DSU read path
    /// and unconditional recomputes — responses are byte-identical either
    /// way (CI `cmp`-gates this); only the work counters move.
    pub dynamic_index: bool,
    /// Run the exact reduction kernel (`cut_index::kernel`) in front of
    /// global and s-t cut queries: disconnected exact/approx answers are
    /// served from the kernel's component summary without a CSR, s-t
    /// weights from the stage-1 kernel when both endpoints resolve, and
    /// large kernels fan approximate-cut repetitions out over the
    /// borrowed-worker [`pool`](EngineConfig::pool). Responses are
    /// byte-identical either way (CI `cmp`-gates this at shards {1, 4});
    /// only the work counters move. Default off.
    pub kernel: bool,
    /// Minimum stage-2 kernel size (surviving vertices) before an
    /// approximate cut borrows workers from the pool. Small kernels are
    /// cheaper to cut than to coordinate.
    pub kernel_threshold: usize,
    /// Idle-shard capacity ledger the kernel path borrows helpers from.
    /// The default (disabled) pool lends nothing, which is what a plain
    /// single-threaded [`Engine`] runs with; the sharded front-end
    /// injects a shared enabled pool when `kernel` is on.
    pub pool: CutPool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.5,
            base_size: 32,
            repetitions: 2,
            exact_below: 48,
            max_cache_entries: 4096,
            resident_cap: 0,
            dynamic_index: true,
            kernel: false,
            kernel_threshold: 64,
            pool: CutPool::default(),
        }
    }
}

/// Most helpers one approximate cut will borrow: repetitions beyond this
/// rarely amortize the thread spawns on the CI box's core counts.
const MAX_KERNEL_HELPERS: usize = 4;

/// Named ops between residency-heat half-life decays — the same window
/// length the placement table defaults to, so "cold" means the same thing
/// to the spiller as it does to the rebalancer.
const RESIDENCY_WINDOW: u64 = 512;

/// Engine-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries served (hits + misses).
    pub queries: u64,
    /// Queries answered from the epoch cache.
    pub cache_hits: u64,
    /// Queries that had to compute.
    pub cache_misses: u64,
    /// Mutations applied.
    pub mutations: u64,
    /// Graphs ever created.
    pub graphs_created: u64,
    /// Graphs dropped.
    pub graphs_dropped: u64,
    /// Index-layer counters (CSR builds/reuses, DSU fast path, LRU
    /// evictions), aggregated across all graphs ever registered.
    pub index: IndexStats,
    /// CSR snapshot builds per query kind (indexed by
    /// [`Query::kind_index`]).
    pub builds_by_kind: [u64; QUERY_KINDS.len()],
    /// CSR snapshot reuses — builds avoided — per query kind (indexed by
    /// [`Query::kind_index`]).
    pub reuse_by_kind: [u64; QUERY_KINDS.len()],
    /// Read batches executed through [`Engine::execute_read_batch`].
    pub batches: u64,
    /// Queries served inside those batches.
    pub batched_reads: u64,
    /// Batch size histogram (see [`batch_bucket`] / [`BATCH_BUCKET_LABELS`]).
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Graphs this engine received through [`Engine::import_graph`] — on a
    /// shard, migrations that landed here.
    pub migrations_in: u64,
    /// Graphs this engine gave up through [`Engine::export_graph`] — on a
    /// shard, migrations that left here.
    pub migrations_out: u64,
    /// Stolen read runs this worker executed on another shard's behalf
    /// (thief-side; the runs' query/cache counters are merged into the
    /// *owning* shard's stats so broadcast `Stats` answers stay exact).
    pub steal_batches: u64,
    /// Queries inside those stolen runs (thief-side).
    pub steal_reads: u64,
    /// Nanoseconds spent actually serving requests. Filled by the sharded
    /// front-end's workers (the plain engine does not time itself), and
    /// attributed to the worker that did the work — stolen runs count on
    /// the *thief*, unlike the logical query counters. Per-shard values
    /// give the busy-time occupancy the stress report prints.
    pub serve_nanos: u64,
    /// Gated cut queries (exact/approx min cut, st-cut weight) that
    /// actually ran their algorithm — the expensive outcome the
    /// certificate gate exists to avoid.
    pub cut_recomputes: u64,
    /// Gated cut queries answered by carrying a stale cached answer whose
    /// certificate (vertex partition unchanged since it was computed, and
    /// the answer a pure function of that partition) proved no mutation
    /// could have changed it. Counted *alongside* `cache_misses` — the
    /// carry mimics a recompute byte-for-byte, it just skips the work.
    pub cut_certified_skips: u64,
    /// Cut queries answered straight from the reduction kernel (component
    /// summary for disconnected exact/approx, stage-1 resolution for s-t)
    /// — byte-identical to the full computation, minus the work.
    pub kernel_cut_serves: u64,
    /// Kernel-eligible s-t queries whose endpoints did not resolve (a
    /// deg-2 smoothing dissolved them), falling back to the full graph.
    pub kernel_cut_fallbacks: u64,
    /// Approximate cuts that fanned repetitions out over borrowed
    /// workers.
    pub kernel_parallel_cuts: u64,
    /// Total helpers borrowed across those cuts.
    pub kernel_helpers_borrowed: u64,
    /// Batched read runs that coalesced queries across more than one
    /// graph (the cross-graph batching fix: a run no longer breaks at a
    /// graph-name change, only at barriers).
    pub cross_batches: u64,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]` (0 when no queries ran).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Fold another engine's counters into this one — how per-shard stats
    /// aggregate into a fleet-wide view. The exhaustive destructuring
    /// makes adding a field here a compile error until it merges too.
    pub fn merge(&mut self, other: &EngineStats) {
        let EngineStats {
            queries,
            cache_hits,
            cache_misses,
            mutations,
            graphs_created,
            graphs_dropped,
            index,
            builds_by_kind,
            reuse_by_kind,
            batches,
            batched_reads,
            batch_hist,
            migrations_in,
            migrations_out,
            steal_batches,
            steal_reads,
            serve_nanos,
            cut_recomputes,
            cut_certified_skips,
            kernel_cut_serves,
            kernel_cut_fallbacks,
            kernel_parallel_cuts,
            kernel_helpers_borrowed,
            cross_batches,
        } = *other;
        self.queries += queries;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.mutations += mutations;
        self.graphs_created += graphs_created;
        self.graphs_dropped += graphs_dropped;
        self.index.merge(&index);
        for (mine, theirs) in self.builds_by_kind.iter_mut().zip(builds_by_kind) {
            *mine += theirs;
        }
        for (mine, theirs) in self.reuse_by_kind.iter_mut().zip(reuse_by_kind) {
            *mine += theirs;
        }
        self.batches += batches;
        self.batched_reads += batched_reads;
        for (mine, theirs) in self.batch_hist.iter_mut().zip(batch_hist) {
            *mine += theirs;
        }
        self.migrations_in += migrations_in;
        self.migrations_out += migrations_out;
        self.steal_batches += steal_batches;
        self.steal_reads += steal_reads;
        self.serve_nanos += serve_nanos;
        self.cut_recomputes += cut_recomputes;
        self.cut_certified_skips += cut_certified_skips;
        self.kernel_cut_serves += kernel_cut_serves;
        self.kernel_cut_fallbacks += kernel_cut_fallbacks;
        self.kernel_parallel_cuts += kernel_parallel_cuts;
        self.kernel_helpers_borrowed += kernel_helpers_borrowed;
        self.cross_batches += cross_batches;
    }

    /// Export every counter onto a telemetry [`Registry`] under the
    /// `engine_` prefix — the registry is the single exposition point for
    /// these numbers (`stats metrics`, `--metrics-out`, `render_text`),
    /// while this struct remains the zero-allocation merge vehicle the
    /// shard barrier already uses. The exhaustive destructuring makes a
    /// new field here a compile error until it is exported too.
    pub fn export_registry(&self, reg: &mut Registry) {
        let EngineStats {
            queries,
            cache_hits,
            cache_misses,
            mutations,
            graphs_created,
            graphs_dropped,
            index,
            builds_by_kind,
            reuse_by_kind,
            batches,
            batched_reads,
            batch_hist,
            migrations_in,
            migrations_out,
            steal_batches,
            steal_reads,
            serve_nanos,
            cut_recomputes,
            cut_certified_skips,
            kernel_cut_serves,
            kernel_cut_fallbacks,
            kernel_parallel_cuts,
            kernel_helpers_borrowed,
            cross_batches,
        } = *self;
        reg.inc("engine_queries", queries);
        reg.inc("engine_cache_hits", cache_hits);
        reg.inc("engine_cache_misses", cache_misses);
        reg.inc("engine_mutations", mutations);
        reg.inc("engine_graphs_created", graphs_created);
        reg.inc("engine_graphs_dropped", graphs_dropped);
        reg.inc("engine_csr_builds", index.csr_builds);
        reg.inc("engine_csr_reuses", index.csr_reuses);
        reg.inc("engine_dsu_fast_hits", index.dsu_fast_hits);
        reg.inc("engine_dsu_rebuilds", index.dsu_rebuilds);
        reg.inc("engine_dsu_resizes", index.dsu_resizes);
        reg.inc("engine_lru_evictions", index.lru_evictions);
        for (kind, (builds, reuses)) in
            QUERY_KINDS.iter().zip(builds_by_kind.iter().zip(reuse_by_kind.iter()))
        {
            reg.inc(&format!("engine_csr_builds_{kind}"), *builds);
            reg.inc(&format!("engine_csr_reuses_{kind}"), *reuses);
        }
        reg.inc("engine_batches", batches);
        reg.inc("engine_batched_reads", batched_reads);
        for (i, c) in batch_hist.iter().enumerate() {
            reg.inc(&format!("engine_batch_hist_{i}"), *c);
        }
        reg.inc("engine_migrations_in", migrations_in);
        reg.inc("engine_migrations_out", migrations_out);
        reg.inc("engine_steal_batches", steal_batches);
        reg.inc("engine_steal_reads", steal_reads);
        reg.inc("engine_serve_nanos_total", serve_nanos);
        reg.inc("engine_cut_recomputes", cut_recomputes);
        reg.inc("engine_cut_certified_skips", cut_certified_skips);
        reg.inc("engine_kernel_builds", index.kernel_builds);
        reg.inc("engine_kernel_reuses", index.kernel_reuses);
        reg.inc("engine_kernel_patches", index.kernel_patches);
        reg.inc("engine_kernel_rules_deg1", index.kernel_rules_deg1);
        reg.inc("engine_kernel_rules_deg2", index.kernel_rules_deg2);
        reg.inc("engine_kernel_rules_heavy", index.kernel_rules_heavy);
        reg.inc("engine_kernel_in_vertices", index.kernel_in_vertices);
        reg.inc("engine_kernel_out_vertices", index.kernel_out_vertices);
        reg.inc("engine_kernel_cut_serves", kernel_cut_serves);
        reg.inc("engine_kernel_cut_fallbacks", kernel_cut_fallbacks);
        reg.inc("engine_kernel_parallel_cuts", kernel_parallel_cuts);
        reg.inc("engine_kernel_helpers_borrowed", kernel_helpers_borrowed);
        reg.inc("engine_cross_batches", cross_batches);
    }
}

/// Per-request serve-time attribution drained by the sharded front-end
/// after each execute: where inside the serve window the time went, plus
/// spill/fault-in events the request triggered.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ObsDelta {
    /// Nanoseconds spent (re)building CSR snapshots.
    pub index_nanos: u64,
    /// Nanoseconds spent appending to / snapshotting the store.
    pub store_nanos: u64,
    /// Graphs spilled to the store while serving.
    pub spills: u64,
    /// Graphs faulted in from the store while serving.
    pub fault_ins: u64,
}

/// The engine's telemetry scratch: an optional [`Clock`] (timing is off —
/// and costs nothing — until one is attached) plus serve-time attribution
/// split into the *current request's* delta and engine-lifetime totals.
/// Purely an observer: nothing here ever feeds back into execution, which
/// is what keeps responses byte-identical with telemetry on or off.
#[derive(Debug, Default)]
pub(crate) struct ObsScratch {
    clock: Option<Arc<dyn Clock>>,
    delta: ObsDelta,
    total: ObsDelta,
}

impl ObsScratch {
    /// Scratch with a clock already attached — for the sharded front-end's
    /// thieves, which serve stolen runs against a borrowed entry outside
    /// any engine and so need a local attribution scratch.
    pub(crate) fn with_clock(clock: Arc<dyn Clock>) -> Self {
        ObsScratch { clock: Some(clock), ..ObsScratch::default() }
    }

    /// Current clock reading, if a clock is attached.
    pub(crate) fn now(&self) -> Option<u64> {
        self.clock.as_ref().map(|c| c.now())
    }

    /// Charge elapsed time since `t0` to the index-build bucket.
    fn charge_index(&mut self, t0: Option<u64>) {
        if let (Some(t0), Some(clock)) = (t0, self.clock.as_ref()) {
            self.delta.index_nanos += clock.now().saturating_sub(t0);
        }
    }

    /// Charge elapsed time since `t0` to the store-append bucket.
    pub(crate) fn charge_store(&mut self, t0: Option<u64>) {
        if let (Some(t0), Some(clock)) = (t0, self.clock.as_ref()) {
            self.delta.store_nanos += clock.now().saturating_sub(t0);
        }
    }

    /// Take the current request's attribution, folding it into the
    /// lifetime totals.
    pub(crate) fn take_delta(&mut self) -> ObsDelta {
        let d = self.delta;
        self.total.index_nanos += d.index_nanos;
        self.total.store_nanos += d.store_nanos;
        self.total.spills += d.spills;
        self.total.fault_ins += d.fault_ins;
        self.delta = ObsDelta::default();
        d
    }

    /// Lifetime totals including any not-yet-taken delta.
    fn lifetime(&self) -> ObsDelta {
        ObsDelta {
            index_nanos: self.total.index_nanos + self.delta.index_nanos,
            store_nanos: self.total.store_nanos + self.delta.store_nanos,
            spills: self.total.spills + self.delta.spills,
            fault_ins: self.total.fault_ins + self.delta.fault_ins,
        }
    }
}

/// One registered graph: its mutable edge list, the incremental index
/// (generation-stamped CSR snapshot, DSU, summaries), the mutation epoch,
/// and the per-epoch LRU query cache.
///
/// `pub(crate)` so the sharded front-end can move entries wholesale
/// (migration, steal loans) and serve queries against a loaned entry.
pub(crate) struct GraphEntry {
    n: usize,
    edges: Vec<Edge>,
    /// The index layer: CSR snapshot, incremental DSU, running summaries.
    /// Its generation advances in lockstep with `epoch` (one bump per
    /// successful mutation).
    index: GraphIndex,
    /// Bumped by every successful mutation.
    epoch: u64,
    /// `query -> (epoch_at_answer, answer)`; an entry is live only while
    /// its epoch matches the graph's. LRU-bounded.
    cache: LruCache<Query, (u64, Response)>,
}

impl GraphEntry {
    fn new(n: usize, edges: Vec<Edge>, cache_capacity: usize) -> Self {
        let index = GraphIndex::new(n, &edges);
        Self { n, edges, index, epoch: 0, cache: LruCache::new(cache_capacity.max(1)) }
    }

    /// The CSR view of the current edge list (built iff the stamp is
    /// stale — see [`GraphIndex::snapshot`]). Returns `(graph, built)`.
    fn graph(&mut self) -> (&Graph, bool) {
        self.index.snapshot(self.n, &self.edges)
    }

    fn touch(&mut self) {
        self.epoch += 1;
        debug_assert_eq!(
            self.epoch,
            self.index.generation(),
            "index generation must advance in lockstep with the epoch"
        );
    }
}

/// The long-lived, multi-graph cut-query engine.
///
/// ```
/// use cut_engine::{Engine, GraphSpec, Query, Request, Response};
///
/// let mut engine = Engine::new();
/// engine.execute(Request::Create {
///     name: "ring".into(),
///     spec: GraphSpec::Cycle { n: 12 },
/// });
/// let r = engine.execute(Request::Query {
///     name: "ring".into(),
///     query: Query::ExactMinCut,
/// });
/// assert!(matches!(r, Response::CutValue { weight: 2, .. }));
/// ```
pub struct Engine {
    cfg: EngineConfig,
    /// `BTreeMap` so `ListGraphs` (and iteration anywhere) is ordered and
    /// deterministic.
    graphs: BTreeMap<String, GraphEntry>,
    stats: EngineStats,
    /// Durability backend, when attached: every applied named request is
    /// write-ahead logged here before its response is released, and cold
    /// graphs spill here under [`EngineConfig::resident_cap`].
    store: Option<Arc<dyn GraphStore>>,
    /// Graphs this engine owns but has spilled to the store (or adopted
    /// from it at startup without faulting in). Disjoint from `graphs`;
    /// `ListGraphs`/`Stats` report the union, so spilling is invisible to
    /// clients.
    spilled: BTreeSet<String>,
    /// Windowed residency heat per resident graph (request cost-weights,
    /// halved every [`RESIDENCY_WINDOW`] named ops) — the eviction signal
    /// under a resident cap.
    heat: BTreeMap<String, u64>,
    /// Named ops since the engine started (drives the heat half-life).
    heat_ops: u64,
    /// Telemetry scratch: optional clock plus serve-time attribution
    /// (index-build vs store-append) and spill/fault-in event counts.
    obs: ObsScratch,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Engine with default configuration.
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(cfg: EngineConfig) -> Self {
        Self {
            cfg,
            graphs: BTreeMap::new(),
            stats: EngineStats::default(),
            store: None,
            spilled: BTreeSet::new(),
            heat: BTreeMap::new(),
            heat_ops: 0,
            obs: ObsScratch::default(),
        }
    }

    /// Attach a telemetry clock. Until one is attached the engine never
    /// reads time (attribution stays zero); with one attached it stamps
    /// index builds and store appends but never lets a reading influence
    /// a response — telemetry on/off is behaviourally invisible.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.obs.clock = Some(clock);
    }

    /// The telemetry scratch, for the sharded front-end's workers to
    /// drain per-request attribution from (and for the steal path to
    /// time loaned-entry serves against).
    pub(crate) fn obs_mut(&mut self) -> &mut ObsScratch {
        &mut self.obs
    }

    /// Engine-local counters as a telemetry registry: every
    /// [`EngineStats`] field under `engine_`, residency gauges, and the
    /// engine-lifetime serve-time attribution. Store-level families are
    /// deliberately *not* included — the store is shared across shards,
    /// so exactly one exporter must own them (see
    /// [`Engine::store_metrics`]).
    pub fn metrics_registry(&self) -> Registry {
        let mut reg = Registry::new();
        self.stats.export_registry(&mut reg);
        reg.set_gauge("engine_graphs_resident", self.graphs.len() as u64);
        reg.set_gauge("engine_graphs_spilled", self.spilled.len() as u64);
        let life = self.obs.lifetime();
        reg.inc("engine_index_build_nanos", life.index_nanos);
        reg.inc("engine_store_append_nanos", life.store_nanos);
        reg.inc("engine_spill_events", life.spills);
        reg.inc("engine_fault_in_events", life.fault_ins);
        reg
    }

    /// The attached store's counter families under `store_` (recovery
    /// tallies, WAL appends, compactions, ...), or an empty registry
    /// without a store. Merged by exactly one shard per snapshot so a
    /// shared store is not multiply counted.
    pub fn store_metrics(&self) -> Registry {
        let mut reg = Registry::new();
        if let Some(store) = &self.store {
            for (name, value) in store.telemetry() {
                reg.inc(&format!("store_{name}"), value);
            }
        }
        reg
    }

    /// Attach a durability backend. From here on, every applied named
    /// request is logged to `store` before its response is released, and
    /// graphs absent from the registry are faulted in from the store on
    /// access. Attaching adopts nothing by itself — call
    /// [`Engine::adopt_stored`] for each durable graph this engine should
    /// own (recovery is lazy: adopted graphs fault in on first touch).
    pub fn attach_store(&mut self, store: Arc<dyn GraphStore>) {
        self.store = Some(store);
    }

    /// Mark a durable graph as owned-but-not-resident: it shows up in
    /// `ListGraphs`/`Stats` immediately and faults in from the store on
    /// first access. No-op if the graph is already resident.
    pub fn adopt_stored(&mut self, name: &str) {
        if !self.graphs.contains_key(name) {
            self.spilled.insert(name.to_string());
        }
    }

    /// True when `name` is owned here but currently spilled to the store.
    pub fn is_spilled(&self, name: &str) -> bool {
        self.spilled.contains(name)
    }

    /// Drop the spilled marker for `name` without touching the store —
    /// the graph's ownership is moving elsewhere (shard migration).
    pub(crate) fn forget_spilled(&mut self, name: &str) {
        self.spilled.remove(name);
    }

    /// Engine-level counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of registered graphs.
    pub fn graph_count(&self) -> usize {
        self.graphs.len()
    }

    /// Current mutation epoch of a graph.
    pub fn epoch(&self, name: &str) -> Option<u64> {
        self.graphs.get(name).map(|e| e.epoch)
    }

    /// A snapshot of a registered graph (CSR built if needed — a build
    /// here counts in [`EngineStats`] like any other, so `csr_reuses`
    /// never references a construction the counters missed).
    pub fn snapshot(&mut self, name: &str) -> Option<Graph> {
        let stats = &mut self.stats;
        self.graphs.get_mut(name).map(|e| {
            let (g, built) = e.graph();
            if built {
                stats.index.csr_builds += 1;
            }
            g.clone()
        })
    }

    /// The index layer's running summaries for a graph — O(1) structural
    /// facts (edge count, total weight, max weighted degree) that stay
    /// current across mutations without any CSR or edge scan.
    pub fn summary(&self, name: &str) -> Option<cut_index::GraphSummary> {
        self.graphs.get(name).map(|e| e.index.summary())
    }

    /// Execute one request. Never panics on bad input: failures come back
    /// as [`Response::Error`] and leave the engine unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_engine::{Engine, GraphSpec, Mutation, Query, Request, Response};
    ///
    /// let mut engine = Engine::new();
    /// engine.execute(Request::Create {
    ///     name: "path".into(),
    ///     spec: GraphSpec::Edges { n: 3, edges: vec![(0, 1, 4), (1, 2, 7)] },
    /// });
    ///
    /// // A path's min cut is its lightest edge.
    /// let r = engine.execute(Request::Query { name: "path".into(), query: Query::ExactMinCut });
    /// assert!(matches!(r, Response::CutValue { weight: 4, .. }));
    ///
    /// // Failures are responses, not panics, and leave the engine unchanged.
    /// let r = engine.execute(Request::Mutate {
    ///     name: "path".into(),
    ///     op: Mutation::InsertEdge { u: 0, v: 0, w: 1 },
    /// });
    /// assert!(matches!(r, Response::Error { .. }));
    /// assert_eq!(engine.epoch("path"), Some(0));
    /// ```
    pub fn execute(&mut self, request: Request) -> Response {
        let name = match &request {
            Request::ListGraphs => {
                // Spilled graphs are still owned: list the union, sorted.
                let mut names: Vec<String> = self.graphs.keys().cloned().collect();
                names.extend(self.spilled.iter().cloned());
                names.sort_unstable();
                return Response::Graphs { names };
            }
            Request::Stats => {
                return Response::EngineStats {
                    graphs: self.graphs.len() + self.spilled.len(),
                    queries: self.stats.queries,
                    cache_hits: self.stats.cache_hits,
                    cache_misses: self.stats.cache_misses,
                    mutations: self.stats.mutations,
                }
            }
            Request::Metrics => {
                // The plain engine's metrics view: its own counters plus
                // the store families (no sharded front-end means no other
                // exporter can double count them). Queue/serve histograms
                // live in the sharded workers and merge in above this
                // level.
                let mut reg = self.metrics_registry();
                reg.merge(&self.store_metrics());
                return Response::Metrics { snapshot: reg.to_wire() };
            }
            Request::Slowlog => {
                // Spans are recorded by the sharded front-end's workers;
                // a bare engine has no queue and records none.
                return Response::Slowlog { snapshot: cut_obs::SlowLog::new(0).to_wire() };
            }
            Request::Create { name, .. }
            | Request::Drop { name }
            | Request::Mutate { name, .. }
            | Request::Query { name, .. } => name.clone(),
        };
        self.ensure_resident(&name);
        let response = self.dispatch_named(&request);
        if let Some(store) = self.store.clone() {
            let t0 = self.obs.now();
            if matches!(response, Response::Dropped { .. }) {
                store.drop_graph(&name, &request, &response);
                self.spilled.remove(&name);
                self.heat.remove(&name);
            } else if self.graphs.contains_key(&name) {
                // Log iff the graph is live after execution: error queries
                // against a live graph mutate cache state (stale-entry
                // removal) and must replay, while failed ops on absent
                // graphs must never conjure durable state.
                store.log(&name, &request, &response);
                if store.wants_snapshot(&name) {
                    let entry = self.graphs.get(&name).expect("checked resident above");
                    store.snapshot(&name, &entry_to_trace(&name, entry));
                }
            }
            self.obs.charge_store(t0);
        }
        if self.graphs.contains_key(&name) {
            self.charge_heat(&name, request.cost_weight());
            self.enforce_resident_cap(&name);
        }
        response
    }

    /// Dispatch one named request (broadcasts are handled in
    /// [`Engine::execute`]). Shared by live execution and WAL replay —
    /// replay goes through the exact machinery that produced the logged
    /// responses, so recovered state (epochs, caches, recency) matches
    /// the pre-crash engine bit for bit.
    fn dispatch_named(&mut self, request: &Request) -> Response {
        match request {
            Request::Create { name, spec } => self.create(name.clone(), spec),
            Request::Drop { name } => self.drop_graph(name),
            Request::Mutate { name, op } => self.mutate(name, *op),
            Request::Query { name, query } => self.query(name, *query),
            Request::ListGraphs | Request::Stats | Request::Metrics | Request::Slowlog => {
                unreachable!("broadcasts never reach the named dispatch")
            }
        }
    }

    /// Fault `name` in from the store if it is not resident: install the
    /// latest snapshot, then replay the WAL records past its watermark
    /// through normal dispatch (without re-logging them). No-op when the
    /// graph is resident, no store is attached, or the store has nothing.
    pub(crate) fn ensure_resident(&mut self, name: &str) {
        if self.graphs.contains_key(name) {
            return;
        }
        let Some(store) = self.store.clone() else { return };
        if !self.spilled.contains(name) && !store.contains(name) {
            return;
        }
        if let Some(recovered) = store.load(name) {
            self.obs.delta.fault_ins += 1;
            if let Some(snapshot) = &recovered.snapshot {
                match GraphExport::from_trace(snapshot, self.cfg.max_cache_entries) {
                    Ok(export) => {
                        let GraphExport { name, entry } = export;
                        self.graphs.insert(name, entry);
                    }
                    Err(e) => debug_assert!(false, "invalid snapshot for '{name}': {e}"),
                }
            }
            for line in &recovered.wal {
                match Request::from_trace_line(line) {
                    Ok(request) => {
                        let _ = self.dispatch_named(&request);
                    }
                    Err(e) => debug_assert!(false, "invalid WAL record for '{name}': {e}"),
                }
            }
        }
        self.spilled.remove(name);
    }

    /// Charge `weight` to `name`'s residency heat, halving every graph's
    /// heat each [`RESIDENCY_WINDOW`] named ops so old traffic decays.
    fn charge_heat(&mut self, name: &str, weight: u64) {
        if self.cfg.resident_cap == 0 || self.store.is_none() {
            return;
        }
        *self.heat.entry(name.to_string()).or_insert(0) += weight;
        self.heat_ops += 1;
        if self.heat_ops.is_multiple_of(RESIDENCY_WINDOW) {
            for v in self.heat.values_mut() {
                *v /= 2;
            }
        }
    }

    /// Spill coldest-first until the resident set fits the cap again,
    /// never evicting `keep` (the graph the current request touched).
    fn enforce_resident_cap(&mut self, keep: &str) {
        if self.cfg.resident_cap == 0 || self.store.is_none() {
            return;
        }
        while self.graphs.len() > self.cfg.resident_cap {
            // BTreeMap iterates in name order and `min_by_key` keeps the
            // first minimum, so ties break by name — deterministic.
            let victim = self
                .graphs
                .keys()
                .filter(|k| k.as_str() != keep)
                .min_by_key(|k| self.heat.get(*k).copied().unwrap_or(0))
                .cloned();
            let Some(victim) = victim else { return };
            self.spill_graph(&victim);
        }
    }

    /// Evict `name` to the store: serialize the whole entry (edges,
    /// epoch, warmed cache) and drop it from the registry. The spilled
    /// marker keeps the graph visible to `ListGraphs`/`Stats`.
    fn spill_graph(&mut self, name: &str) {
        let Some(store) = self.store.clone() else { return };
        let Some(entry) = self.graphs.remove(name) else { return };
        store.spill(name, &entry_to_trace(name, &entry));
        self.obs.delta.spills += 1;
        self.spilled.insert(name.to_string());
        self.heat.remove(name);
    }

    fn create(&mut self, name: String, spec: &GraphSpec) -> Response {
        if self.graphs.contains_key(&name) {
            return Response::Error { message: format!("graph '{name}' already exists") };
        }
        match spec.materialize() {
            Ok((n, edges)) => {
                let m = edges.len();
                let entry = GraphEntry::new(n, edges, self.cfg.max_cache_entries);
                self.graphs.insert(name.clone(), entry);
                self.stats.graphs_created += 1;
                Response::Created { name, n, m }
            }
            Err(message) => Response::Error { message },
        }
    }

    fn drop_graph(&mut self, name: &str) -> Response {
        if self.graphs.remove(name).is_some() {
            self.stats.graphs_dropped += 1;
            Response::Dropped { name: name.to_string() }
        } else {
            Response::Error { message: format!("no graph named '{name}'") }
        }
    }

    fn mutate(&mut self, name: &str, op: Mutation) -> Response {
        let Some(entry) = self.graphs.get_mut(name) else {
            return Response::Error { message: format!("no graph named '{name}'") };
        };
        let result = match op {
            Mutation::InsertEdge { u, v, w } => apply_insert(entry, u, v, w),
            Mutation::DeleteEdge { u, v } => apply_delete(entry, u, v),
            Mutation::ContractVertices { u, v } => apply_contract(entry, u, v),
        };
        match result {
            Ok(()) => {
                entry.touch();
                self.stats.mutations += 1;
                Response::Mutated {
                    name: name.to_string(),
                    epoch: entry.epoch,
                    n: entry.n,
                    m: entry.edges.len(),
                }
            }
            Err(message) => Response::Error { message },
        }
    }

    fn query(&mut self, name: &str, query: Query) -> Response {
        let Some(entry) = self.graphs.get_mut(name) else {
            return Response::Error { message: format!("no graph named '{name}'") };
        };
        serve_query(&mut self.stats, &self.cfg, entry, query, &mut self.obs)
    }

    /// Execute a batch of queries against one graph — the registry lookup
    /// happens once and every query in the batch shares the same index
    /// state (so at most one CSR build serves the whole batch).
    ///
    /// Queries execute in order against the same entry a serial sequence
    /// of [`Request::Query`] calls would hit, so the responses — cache
    /// flags included — are element-wise identical to unbatched
    /// execution; only the batch counters in [`EngineStats`] differ. This
    /// is the seam the sharded front-end's batching worker drives.
    pub fn execute_read_batch(&mut self, name: &str, queries: Vec<Query>) -> Vec<Response> {
        self.ensure_resident(name);
        let store = self.store.clone();
        let Some(entry) = self.graphs.get_mut(name) else {
            // Mirror the serial path exactly: per-query errors, no
            // query-counter bumps — and no batch counters either, since
            // those report queries *served* through batches.
            return queries
                .iter()
                .map(|_| Response::Error { message: format!("no graph named '{name}'") })
                .collect();
        };
        self.stats.batches += 1;
        self.stats.batched_reads += queries.len() as u64;
        self.stats.batch_hist[batch_bucket(queries.len())] += 1;
        let mut responses = Vec::with_capacity(queries.len());
        let mut heat = 0u64;
        for query in queries {
            let response = serve_query(&mut self.stats, &self.cfg, entry, query, &mut self.obs);
            if let Some(store) = &store {
                // Same log-per-query discipline as the serial path, so a
                // recovered engine replays batched reads identically.
                let t0 = self.obs.now();
                store.log(name, &Request::Query { name: name.to_string(), query }, &response);
                self.obs.charge_store(t0);
            }
            heat += query.cost_weight();
            responses.push(response);
        }
        if let Some(store) = &store {
            if store.wants_snapshot(name) {
                let t0 = self.obs.now();
                let entry = self.graphs.get(name).expect("entry still resident");
                store.snapshot(name, &entry_to_trace(name, entry));
                self.obs.charge_store(t0);
            }
        }
        self.charge_heat(name, heat);
        self.enforce_resident_cap(name);
        responses
    }

    /// Detach a graph from this engine's registry for installation into
    /// another engine — the unit of shard-to-shard **migration**. The
    /// entire entry moves wholesale: edge list, index (CSR snapshot, DSU,
    /// summaries), mutation epoch, and the warmed LRU query cache, so the
    /// receiving engine answers exactly as this one would have. Counted in
    /// [`EngineStats::migrations_out`]. Returns `None` for unknown names.
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_engine::{Engine, GraphSpec, Query, Request, Response};
    ///
    /// let mut a = Engine::new();
    /// a.execute(Request::Create { name: "ring".into(), spec: GraphSpec::Cycle { n: 8 } });
    /// a.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
    ///
    /// // Move the graph: index, epoch, and warmed cache travel with it.
    /// let export = a.export_graph("ring").unwrap();
    /// assert_eq!(export.name(), "ring");
    /// let mut b = Engine::new();
    /// assert!(b.import_graph(export).is_ok());
    /// let r = b.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
    /// assert!(r.was_cached(), "the warmed cache migrated wholesale");
    ///
    /// // The source no longer knows the graph.
    /// let gone = a.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
    /// assert!(matches!(gone, Response::Error { .. }));
    /// ```
    pub fn export_graph(&mut self, name: &str) -> Option<GraphExport> {
        let entry = self.take_entry(name)?;
        self.stats.migrations_out += 1;
        Some(GraphExport { name: name.to_string(), entry })
    }

    /// Install a graph previously detached with [`Engine::export_graph`].
    /// Fails (handing the export back untouched) if the name is already
    /// registered here. Counted in [`EngineStats::migrations_in`].
    // The whole point of the Err variant is returning the (large) entry to
    // the caller intact, so its size is the feature, not an accident.
    #[allow(clippy::result_large_err)]
    pub fn import_graph(&mut self, export: GraphExport) -> Result<(), GraphExport> {
        if self.graphs.contains_key(&export.name) {
            return Err(export);
        }
        self.stats.migrations_in += 1;
        let GraphExport { name, entry } = export;
        self.graphs.insert(name, entry);
        Ok(())
    }

    /// Remove a graph's entry without touching any counter — the raw move
    /// under [`Engine::export_graph`] and the steal-loan path (a loan is
    /// not a migration; its counters live in `steal_*`).
    pub(crate) fn take_entry(&mut self, name: &str) -> Option<GraphEntry> {
        self.graphs.remove(name)
    }

    /// Reinstall an entry removed with [`Engine::take_entry`].
    pub(crate) fn put_entry(&mut self, name: String, entry: GraphEntry) {
        let prev = self.graphs.insert(name, entry);
        debug_assert!(prev.is_none(), "put_entry must not shadow a live graph");
    }

    /// Mutable counter access for the shard worker: merging a stolen run's
    /// stats delta, bumping thief-side steal counters.
    pub(crate) fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }
}

/// A graph detached from one [`Engine`], in flight to another — what a
/// shard migration moves. Opaque: the entry inside keeps its epoch, index
/// state, and query cache exactly as the source engine last saw them (see
/// [`Engine::export_graph`] for a round-trip example).
pub struct GraphExport {
    name: String,
    entry: GraphEntry,
}

impl GraphExport {
    /// The registry name this graph was exported under (and will be
    /// registered under on import).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The exported graph's mutation epoch — preserved across the move.
    pub fn epoch(&self) -> u64 {
        self.entry.epoch
    }

    /// Serialize the export to the snapshot trace format — the on-disk
    /// counterpart of the in-memory migration container, reusing the
    /// request/response line codec for the cached-answers section:
    ///
    /// ```text
    /// graph <name> <n> <epoch>
    /// edges <m>
    /// <u> <v> <w>              (m lines, exact edge-list order)
    /// cache <k>
    /// <stamp>\t<query-line>\t<response-line>   (k lines, LRU-oldest first)
    /// end
    /// ```
    ///
    /// Edge order matters (`DeleteEdge` removes the first positional
    /// match) and cache order matters (re-inserting oldest-first
    /// reproduces the exact LRU recency), so both serialize verbatim.
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_engine::{Engine, GraphExport, GraphSpec, Query, Request};
    ///
    /// let mut a = Engine::new();
    /// a.execute(Request::Create { name: "ring".into(), spec: GraphSpec::Cycle { n: 8 } });
    /// a.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
    /// let trace = a.export_graph("ring").unwrap().to_trace();
    ///
    /// // A restored engine answers from the restored cache.
    /// let export = GraphExport::from_trace(&trace, 4096).unwrap();
    /// let mut b = Engine::new();
    /// b.import_graph(export).unwrap();
    /// let r = b.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
    /// assert!(r.was_cached());
    /// ```
    pub fn to_trace(&self) -> String {
        entry_to_trace(&self.name, &self.entry)
    }

    /// Parse a trace produced by [`GraphExport::to_trace`], rebuilding
    /// the full entry: edge list in original order, index resumed at the
    /// stored generation, and the query cache re-inserted oldest-first so
    /// recency (and therefore future evictions) match the source engine.
    /// `cache_capacity` is the restoring engine's
    /// [`EngineConfig::max_cache_entries`].
    pub fn from_trace(trace: &str, cache_capacity: usize) -> Result<GraphExport, String> {
        let mut lines = trace.lines();
        let mut next_line =
            |what: &str| lines.next().ok_or_else(|| format!("snapshot ended early: {what}"));

        let header = next_line("graph header")?;
        let mut tokens = header.split_whitespace();
        if tokens.next() != Some("graph") {
            return Err(format!("bad snapshot header '{header}'"));
        }
        let name = decode_name(tokens.next().ok_or("snapshot header missing name")?)?;
        let n: usize = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad n in snapshot header '{header}'"))?;
        let epoch: u64 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad epoch in snapshot header '{header}'"))?;
        if tokens.next().is_some() {
            return Err(format!("trailing tokens in snapshot header '{header}'"));
        }

        let edges_header = next_line("edges header")?;
        let m: usize = edges_header
            .strip_prefix("edges ")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad edges header '{edges_header}'"))?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let line = next_line("edge line")?;
            let mut parts = line.split_whitespace();
            let mut field = |what: &str| -> Result<&str, String> {
                parts.next().ok_or_else(|| format!("bad edge line '{line}': missing {what}"))
            };
            let u: u32 = field("u")?.parse().map_err(|_| format!("bad u in '{line}'"))?;
            let v: u32 = field("v")?.parse().map_err(|_| format!("bad v in '{line}'"))?;
            let w: u64 = field("w")?.parse().map_err(|_| format!("bad w in '{line}'"))?;
            if parts.next().is_some() {
                return Err(format!("trailing tokens in edge line '{line}'"));
            }
            if u as usize >= n || v as usize >= n {
                return Err(format!("edge ({u}, {v}) out of range for n = {n} in snapshot"));
            }
            edges.push(Edge::new(u, v, w));
        }

        let cache_header = next_line("cache header")?;
        let k: usize = cache_header
            .strip_prefix("cache ")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad cache header '{cache_header}'"))?;
        let mut cache: LruCache<Query, (u64, Response)> = LruCache::new(cache_capacity.max(1));
        for _ in 0..k {
            let line = next_line("cache line")?;
            let mut fields = line.splitn(3, '\t');
            let stamp: u64 = fields
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad cache stamp in '{line}'"))?;
            let request_line =
                fields.next().ok_or_else(|| format!("cache line '{line}' missing query"))?;
            let response_line =
                fields.next().ok_or_else(|| format!("cache line '{line}' missing response"))?;
            let Request::Query { query, .. } = Request::from_trace_line(request_line)? else {
                return Err(format!("cache line '{line}' does not hold a query"));
            };
            let response = Response::from_trace_line(response_line)?;
            cache.insert(query, (stamp, response));
        }

        if next_line("end marker")? != "end" {
            return Err("snapshot missing end marker".into());
        }
        if lines.next().is_some() {
            return Err("trailing lines after snapshot end marker".into());
        }

        // The index resumes at the stored generation so the epoch ==
        // generation lockstep invariant (and the epoch-stamped cache)
        // survive the round trip.
        let index = GraphIndex::with_generation(n, &edges, epoch);
        Ok(GraphExport { name, entry: GraphEntry { n, edges, index, epoch, cache } })
    }
}

/// Serialize one registry entry to the snapshot trace format (see
/// [`GraphExport::to_trace`] — this is the engine-internal worker both it
/// and the durability hooks call without detaching the entry).
pub(crate) fn entry_to_trace(name: &str, entry: &GraphEntry) -> String {
    let mut out = String::with_capacity(64 + entry.edges.len() * 12);
    out.push_str(&format!("graph {} {} {}\n", encode_name(name), entry.n, entry.epoch));
    out.push_str(&format!("edges {}\n", entry.edges.len()));
    for e in &entry.edges {
        out.push_str(&format!("{} {} {}\n", e.u, e.v, e.w));
    }
    out.push_str(&format!("cache {}\n", entry.cache.len()));
    for (query, (stamp, response)) in entry.cache.iter_lru() {
        let request = Request::Query { name: name.to_string(), query: *query };
        out.push_str(&format!(
            "{stamp}\t{}\t{}\n",
            request.to_trace_line(),
            response.to_trace_line()
        ));
    }
    out.push_str("end\n");
    out
}

impl std::fmt::Debug for GraphExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphExport")
            .field("name", &self.name)
            .field("n", &self.entry.n)
            .field("m", &self.entry.edges.len())
            .field("epoch", &self.entry.epoch)
            .finish()
    }
}

/// Serve one query against a looked-up entry: LRU/epoch cache first, then
/// the index layer (DSU fast path for connectivity, stamped CSR snapshot
/// for everything else), attributing the work to `stats`.
///
/// `pub(crate)`: the sharded front-end's work stealing drives this
/// directly against a loaned [`GraphEntry`], accumulating into a scratch
/// [`EngineStats`] delta that ships back to the owning shard.
pub(crate) fn serve_query(
    stats: &mut EngineStats,
    cfg: &EngineConfig,
    entry: &mut GraphEntry,
    query: Query,
    obs: &mut ObsScratch,
) -> Response {
    stats.queries += 1;

    // A stale entry remembers the generation its answer was computed at —
    // the stamp the certificate gate compares against.
    let mut stale: Option<(u64, Response)> = None;
    let hit = match entry.cache.get(&query) {
        Some((epoch, answer)) if *epoch == entry.epoch => Some(answer.as_cached()),
        Some((epoch, answer)) => {
            stale = Some((*epoch, answer.clone()));
            None
        }
        None => None,
    };
    if let Some(answer) = hit {
        stats.cache_hits += 1;
        return answer;
    }
    if let Some((stamp, answer)) = stale {
        // Drop the dead entry now: a query whose recompute errors (e.g.
        // k-cut after a contraction shrank n below k) would otherwise pin
        // a permanently stale entry at the hot end of the LRU.
        entry.cache.remove(&query);
        if cfg.dynamic_index && certificate_holds(entry, query, stamp) {
            // The certificate proves the recompute would reproduce this
            // exact answer, so carry it — but account for it as the
            // recompute it replaces (a cache *miss*, re-stamped at the
            // current epoch, same LRU recency), keeping the response
            // stream and every logged counter byte-identical to the
            // ungated path. Only the off-log work counters move.
            stats.cache_misses += 1;
            stats.cut_certified_skips += 1;
            if entry.cache.insert(query, (entry.epoch, answer.clone())).is_some() {
                stats.index.lru_evictions += 1;
            }
            return answer;
        }
    }
    stats.cache_misses += 1;

    // `csr` reports exactly what the compute arms did with the snapshot:
    // None = never touched (connectivity, errors, the edgeless
    // singleton-cut summary path), Some(built) otherwise.
    let mut csr: Option<bool> = None;
    let answer = compute_query(entry, cfg, stats, query, &mut csr, obs);
    if query.is_certificate_gated() && !matches!(answer, Response::Error { .. }) {
        stats.cut_recomputes += 1;
    }
    if let Some(built) = csr {
        let kind = query.kind_index();
        if built {
            stats.index.csr_builds += 1;
            stats.builds_by_kind[kind] += 1;
        } else {
            stats.index.csr_reuses += 1;
            stats.reuse_by_kind[kind] += 1;
        }
    }
    if !matches!(answer, Response::Error { .. })
        && entry.cache.insert(query, (entry.epoch, answer.clone())).is_some()
    {
        stats.index.lru_evictions += 1;
    }
    answer
}

/// Can the stale cached `answer` for `query`, computed at generation
/// `stamp`, be carried across the mutations since? True only when a
/// certificate *proves* a recompute would reproduce it byte-for-byte:
///
/// 1. The vertex partition is unchanged since `stamp`
///    ([`GraphIndex::partition_generation`], maintained by the dynamic
///    forest) — so connectivity-derived answers are frozen. This also
///    rules out contractions (a wholesale rebuild always claims the
///    current generation).
/// 2. The answer is a pure function of that partition *today*:
///    - exact/approx min cut of a currently-disconnected graph is the
///      zero cut with the side fixed by the partition
///      (`disconnected_cut` labels components in first-appearance vertex
///      order — partition-determined);
///    - st-cut weight with `s`, `t` currently separated is 0.
///
/// Everything else (connected min cuts, k-cut, singleton cut,
/// connectivity itself — which never misses stale anyway) recomputes:
/// weight changes on a cycle edge can move those answers without moving
/// the partition.
fn certificate_holds(entry: &mut GraphEntry, query: Query, stamp: u64) -> bool {
    if entry.index.partition_generation() > stamp {
        return false;
    }
    match query {
        Query::ExactMinCut | Query::ApproxMinCut { .. } => {
            entry.index.components_live(entry.n, &entry.edges) > 1
        }
        Query::StCutWeight { s, t } => {
            !entry.index.same_component_live(entry.n, &entry.edges, s, t)
        }
        Query::Connectivity | Query::SingletonCut { .. } | Query::KCut { .. } => false,
    }
}

/// Take the CSR snapshot for a compute arm, recording into `slot` whether
/// the access built it or reused the stamped build, and charging build
/// time to the span's index bucket (reuses read the clock but charge ~0).
fn track<'g>(
    entry: &'g mut GraphEntry,
    slot: &mut Option<bool>,
    obs: &mut ObsScratch,
) -> &'g Graph {
    let t0 = obs.now();
    let (graph, built) = entry.graph();
    if built {
        obs.charge_index(t0);
    }
    *slot = Some(built);
    graph
}

fn apply_insert(entry: &mut GraphEntry, u: u32, v: u32, w: u64) -> Result<(), String> {
    if u as usize >= entry.n || v as usize >= entry.n {
        return Err(format!("edge ({u}, {v}) out of range for n = {}", entry.n));
    }
    if u == v {
        return Err(format!("self-loop at vertex {u}"));
    }
    if w == 0 {
        return Err(format!("zero-weight edge ({u}, {v})"));
    }
    entry.edges.push(Edge::new(u, v, w));
    // O(α): the DSU unions, the summaries adjust, the snapshot stamp
    // invalidates.
    entry.index.note_insert(u, v, w);
    Ok(())
}

fn apply_delete(entry: &mut GraphEntry, u: u32, v: u32) -> Result<(), String> {
    let pos = entry.edges.iter().position(|e| (e.u == u && e.v == v) || (e.u == v && e.v == u));
    match pos {
        Some(i) => {
            let e = entry.edges.remove(i);
            // Marks the DSU dirty (a delete can split a component); the
            // rebuild happens lazily at the next connectivity read.
            entry.index.note_delete(e.u, e.v, e.w);
            Ok(())
        }
        None => Err(format!("no edge ({u}, {v}) to delete")),
    }
}

fn apply_contract(entry: &mut GraphEntry, u: u32, v: u32) -> Result<(), String> {
    if u as usize >= entry.n || v as usize >= entry.n {
        return Err(format!("contract ({u}, {v}) out of range for n = {}", entry.n));
    }
    if u == v {
        return Err(format!("cannot contract vertex {u} with itself"));
    }
    let relabel = |x: u32| crate::request::contract_relabel(u, v, x);
    // Merge parallel edges deterministically (sorted pair order), matching
    // Graph::contract semantics without building the CSR first.
    let mut merged: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for e in &entry.edges {
        let (mut a, mut b) = (relabel(e.u), relabel(e.v));
        if a == b {
            continue;
        }
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        *merged.entry((a, b)).or_insert(0) += e.w;
    }
    entry.n -= 1;
    entry.edges = merged.into_iter().map(|((a, b), w)| Edge::new(a, b, w)).collect();
    // Contraction relabels vertices and merges edges wholesale: re-derive
    // the DSU and summaries from the new state.
    entry.index.rebuild_for(entry.n, &entry.edges);
    Ok(())
}

fn compute_query(
    entry: &mut GraphEntry,
    cfg: &EngineConfig,
    stats: &mut EngineStats,
    query: Query,
    csr: &mut Option<bool>,
    obs: &mut ObsScratch,
) -> Response {
    let n = entry.n;
    match query {
        Query::Connectivity => {
            let components = if cfg.dynamic_index {
                // The dynamic forest's maintained labels: O(1), no BFS,
                // no CSR, and — unlike the DSU — no rebuild after deletes
                // or contractions either.
                stats.index.dsu_fast_hits += 1;
                entry.index.components_live(entry.n, &entry.edges)
            } else {
                // Legacy incremental-DSU path: O(α)-ish after inserts,
                // one lazy O(m α) rebuild after a delete or contraction,
                // with clean resizes attributed separately.
                let (components, read) = entry.index.components(entry.n, &entry.edges);
                match read {
                    ConnRead::Fast => stats.index.dsu_fast_hits += 1,
                    ConnRead::Resized => stats.index.dsu_resizes += 1,
                    ConnRead::Rebuilt => stats.index.dsu_rebuilds += 1,
                }
                components
            };
            Response::ConnectivityValue { components, cached: false }
        }
        Query::ExactMinCut => {
            if n < 2 {
                return Response::Error { message: "min cut needs n >= 2".into() };
            }
            if cfg.kernel {
                let facts = kernel_probe(entry, stats);
                if facts.components > 1 {
                    // The kernel's component summary *is* the
                    // disconnected answer (weight 0, side = vertex 0's
                    // component) — no CSR, no scan.
                    stats.kernel_cut_serves += 1;
                    return Response::CutValue {
                        weight: 0,
                        side_size: facts.component0_size,
                        cached: false,
                    };
                }
            }
            let g = track(entry, csr, obs);
            match disconnected_cut(g) {
                Some(cut) => cut_response(&cut),
                None => cut_response(&stoer_wagner(g)),
            }
        }
        Query::ApproxMinCut { seed } => {
            if n < 2 {
                return Response::Error { message: "min cut needs n >= 2".into() };
            }
            let opts = MinCutOptions {
                epsilon: cfg.epsilon,
                base_size: cfg.base_size,
                repetitions: cfg.repetitions,
                seed,
            };
            if cfg.kernel {
                let facts = kernel_probe(entry, stats);
                if facts.components > 1 {
                    stats.kernel_cut_serves += 1;
                    return Response::CutValue {
                        weight: 0,
                        side_size: facts.component0_size,
                        cached: false,
                    };
                }
                let g = track(entry, csr, obs);
                if facts.n_out >= cfg.kernel_threshold {
                    // A big residual kernel means a genuinely expensive
                    // cut: borrow parked shard workers and fan the
                    // independent repetitions out. The merge is the
                    // sequential fold, so the response bytes cannot move.
                    let loan = cfg.pool.borrow(MAX_KERNEL_HELPERS);
                    if loan.helpers() > 0 {
                        stats.kernel_parallel_cuts += 1;
                        stats.kernel_helpers_borrowed += loan.helpers() as u64;
                    }
                    return cut_response(&par_approx_min_cut(g, &opts, loan.helpers()));
                }
                return cut_response(&approx_min_cut(g, &opts));
            }
            let g = track(entry, csr, obs);
            if let Some(cut) = disconnected_cut(g) {
                return cut_response(&cut);
            }
            cut_response(&approx_min_cut(g, &opts))
        }
        Query::SingletonCut { seed } => {
            if n < 2 {
                return Response::Error { message: "singleton cut needs n >= 2".into() };
            }
            if entry.index.m() == 0 {
                // Every singleton cut of an edgeless graph weighs 0 — the
                // running edge count answers in O(1), no CSR.
                return Response::CutValue { weight: 0, side_size: 1, cached: false };
            }
            let g = track(entry, csr, obs);
            let mut rng = SmallRng::seed_from_u64(seed);
            let prio = exponential_priorities(g, &mut rng);
            let cut = smallest_singleton_cut(g, &prio);
            // The realizing side is a bag (super-vertex), not one vertex.
            let side = mincut_core::singleton::singleton_cut_side(g, &prio, cut);
            Response::CutValue { weight: cut.weight, side_size: side.len(), cached: false }
        }
        Query::KCut { k } => {
            if k < 1 || k > n {
                return Response::Error {
                    message: format!("k-cut needs 1 <= k <= n (k = {k}, n = {n})"),
                };
            }
            let g = track(entry, csr, obs);
            let mut opts = KCutOptions::new(k);
            opts.exact_below = cfg.exact_below;
            opts.mincut.epsilon = cfg.epsilon;
            opts.mincut.base_size = cfg.base_size;
            let r = apx_split(g, &opts);
            Response::KCutValue { weight: r.weight, parts: k, cached: false }
        }
        Query::StCutWeight { s, t } => {
            if s as usize >= n || t as usize >= n {
                return Response::Error {
                    message: format!("st-cut endpoints ({s}, {t}) out of range for n = {n}"),
                };
            }
            if s == t {
                return Response::Error { message: "st-cut needs s != t".into() };
            }
            if cfg.kernel {
                let resolved = {
                    let (kernel, read) = entry.index.kernel(entry.n, &entry.edges);
                    fold_kernel_read(stats, read);
                    // Exact when both endpoints resolve through stage-1
                    // chains: max-flow runs on the reduced graph (or not
                    // at all, for same-host pendant pairs).
                    kernel.st_cut_weight(s, t)
                };
                match resolved {
                    Some(weight) => {
                        stats.kernel_cut_serves += 1;
                        return Response::CutValue { weight, side_size: 0, cached: false };
                    }
                    None => stats.kernel_cut_fallbacks += 1,
                }
            }
            let g = track(entry, csr, obs);
            let weight = cut_graph::maxflow::min_st_cut(g, s, t);
            Response::CutValue { weight, side_size: 0, cached: false }
        }
    }
}

/// Serving facts copied out of the (freshly built, patched, or reused)
/// kernel so the borrow on the entry's index can end before `track`.
struct KernelFacts {
    components: usize,
    component0_size: usize,
    n_out: usize,
}

fn kernel_probe(entry: &mut GraphEntry, stats: &mut EngineStats) -> KernelFacts {
    let (kernel, read) = entry.index.kernel(entry.n, &entry.edges);
    let facts = KernelFacts {
        components: kernel.components(),
        component0_size: kernel.component0_size(),
        n_out: kernel.n_out(),
    };
    fold_kernel_read(stats, read);
    facts
}

fn fold_kernel_read(stats: &mut EngineStats, read: KernelRead) {
    let delta = match read {
        KernelRead::Reused => {
            stats.index.kernel_reuses += 1;
            return;
        }
        KernelRead::Built(delta) => {
            stats.index.kernel_builds += 1;
            delta
        }
        KernelRead::Patched(delta) => {
            stats.index.kernel_patches += 1;
            delta
        }
    };
    stats.index.kernel_rules_deg1 += delta.deg1;
    stats.index.kernel_rules_deg2 += delta.deg2;
    stats.index.kernel_rules_heavy += delta.heavy;
    stats.index.kernel_in_vertices += delta.in_vertices;
    stats.index.kernel_out_vertices += delta.out_vertices;
}

/// For disconnected graphs the global min cut is 0 (any one component
/// against the rest); the recursive algorithms assume connectivity, so the
/// engine short-circuits.
fn disconnected_cut(g: &Graph) -> Option<CutResult> {
    let comp = g.components();
    if comp.iter().any(|&c| c != 0) {
        let side: Vec<u32> = (0..g.n() as u32).filter(|&v| comp[v as usize] == 0).collect();
        Some(CutResult { weight: 0, side })
    } else {
        None
    }
}

fn cut_response(cut: &CutResult) -> Response {
    Response::CutValue { weight: cut.weight, side_size: cut.side.len(), cached: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create(engine: &mut Engine, name: &str, spec: GraphSpec) {
        let r = engine.execute(Request::Create { name: name.into(), spec });
        assert!(matches!(r, Response::Created { .. }), "create failed: {r}");
    }

    fn query(engine: &mut Engine, name: &str, q: Query) -> Response {
        engine.execute(Request::Query { name: name.into(), query: q })
    }

    #[test]
    fn registry_create_query_drop() {
        let mut e = Engine::new();
        create(&mut e, "ring", GraphSpec::Cycle { n: 10 });
        let r = query(&mut e, "ring", Query::ExactMinCut);
        assert_eq!(r, Response::CutValue { weight: 2, side_size: 1, cached: false });
        assert!(matches!(
            e.execute(Request::Drop { name: "ring".into() }),
            Response::Dropped { .. }
        ));
        assert!(matches!(query(&mut e, "ring", Query::ExactMinCut), Response::Error { .. }));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut e = Engine::new();
        create(&mut e, "g", GraphSpec::Cycle { n: 5 });
        let r = e.execute(Request::Create { name: "g".into(), spec: GraphSpec::Cycle { n: 7 } });
        assert!(matches!(r, Response::Error { .. }));
    }

    #[test]
    fn cache_hits_until_mutation_invalidates() {
        let mut e = Engine::new();
        create(&mut e, "g", GraphSpec::Cycle { n: 8 });

        let a = query(&mut e, "g", Query::ExactMinCut);
        assert!(!a.was_cached());
        let b = query(&mut e, "g", Query::ExactMinCut);
        assert!(b.was_cached(), "repeat query must hit the cache");
        assert_eq!(e.stats().cache_hits, 1);
        assert_eq!(e.stats().cache_misses, 1);

        // A mutation bumps the epoch; the cached answer is dead.
        let r = e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 0, v: 4, w: 3 },
        });
        assert!(matches!(r, Response::Mutated { epoch: 1, .. }));
        let c = query(&mut e, "g", Query::ExactMinCut);
        assert!(!c.was_cached(), "mutation must invalidate the cache");
        assert_eq!(e.stats().cache_misses, 2);
    }

    #[test]
    fn failed_mutations_do_not_bump_epoch() {
        let mut e = Engine::new();
        create(&mut e, "g", GraphSpec::Cycle { n: 5 });
        query(&mut e, "g", Query::ExactMinCut);
        let r = e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 0, v: 0, w: 1 },
        });
        assert!(matches!(r, Response::Error { .. }));
        assert_eq!(e.epoch("g"), Some(0));
        assert!(query(&mut e, "g", Query::ExactMinCut).was_cached());
    }

    #[test]
    fn insert_and_delete_change_answers() {
        let mut e = Engine::new();
        // Path 0-1-2: min cut 1.
        create(&mut e, "p", GraphSpec::Edges { n: 3, edges: vec![(0, 1, 1), (1, 2, 1)] });
        assert!(matches!(
            query(&mut e, "p", Query::ExactMinCut),
            Response::CutValue { weight: 1, .. }
        ));
        // Close the triangle: min cut 2.
        e.execute(Request::Mutate {
            name: "p".into(),
            op: Mutation::InsertEdge { u: 0, v: 2, w: 1 },
        });
        assert!(matches!(
            query(&mut e, "p", Query::ExactMinCut),
            Response::CutValue { weight: 2, .. }
        ));
        // Delete an edge: back to a path.
        e.execute(Request::Mutate { name: "p".into(), op: Mutation::DeleteEdge { u: 1, v: 0 } });
        assert!(matches!(
            query(&mut e, "p", Query::ExactMinCut),
            Response::CutValue { weight: 1, .. }
        ));
        // Deleting a missing edge fails and changes nothing.
        let r = e
            .execute(Request::Mutate { name: "p".into(), op: Mutation::DeleteEdge { u: 0, v: 1 } });
        assert!(matches!(r, Response::Error { .. }));
    }

    #[test]
    fn contraction_merges_and_relabels() {
        let mut e = Engine::new();
        // Square 0-1-2-3-0.
        create(
            &mut e,
            "sq",
            GraphSpec::Edges { n: 4, edges: vec![(0, 1, 1), (1, 2, 2), (2, 3, 4), (3, 0, 8)] },
        );
        let r = e.execute(Request::Mutate {
            name: "sq".into(),
            op: Mutation::ContractVertices { u: 0, v: 1 },
        });
        // {0,1} merged: vertices {01, 2, 3}; edges 01-2 (2), 2-3 (4), 3-01 (8).
        assert!(matches!(r, Response::Mutated { n: 3, m: 3, .. }), "got {r}");
        let g = e.snapshot("sq").unwrap();
        assert_eq!(g.total_weight(), 14);
        // Contract again down to 2 vertices: parallel edges merge.
        e.execute(Request::Mutate {
            name: "sq".into(),
            op: Mutation::ContractVertices { u: 1, v: 2 },
        });
        let g = e.snapshot("sq").unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge(0).w, 10);
    }

    #[test]
    fn disconnected_graphs_answer_zero_cuts() {
        let mut e = Engine::new();
        create(&mut e, "two", GraphSpec::Edges { n: 4, edges: vec![(0, 1, 5), (2, 3, 5)] });
        assert!(matches!(
            query(&mut e, "two", Query::ExactMinCut),
            Response::CutValue { weight: 0, side_size: 2, .. }
        ));
        assert!(matches!(
            query(&mut e, "two", Query::ApproxMinCut { seed: 1 }),
            Response::CutValue { weight: 0, .. }
        ));
        assert!(matches!(
            query(&mut e, "two", Query::Connectivity),
            Response::ConnectivityValue { components: 2, .. }
        ));
    }

    #[test]
    fn st_cut_and_kcut_answer() {
        let mut e = Engine::new();
        create(&mut e, "c", GraphSpec::Cycle { n: 6 });
        assert!(matches!(
            query(&mut e, "c", Query::StCutWeight { s: 0, t: 3 }),
            Response::CutValue { weight: 2, .. }
        ));
        let r = query(&mut e, "c", Query::KCut { k: 2 });
        match r {
            Response::KCutValue { weight, parts: 2, .. } => assert!(weight >= 2),
            other => panic!("unexpected {other}"),
        }
        assert!(matches!(query(&mut e, "c", Query::KCut { k: 99 }), Response::Error { .. }));
    }

    #[test]
    fn list_is_sorted_and_stats_count() {
        let mut e = Engine::new();
        create(&mut e, "b", GraphSpec::Cycle { n: 4 });
        create(&mut e, "a", GraphSpec::Cycle { n: 4 });
        assert_eq!(
            e.execute(Request::ListGraphs),
            Response::Graphs { names: vec!["a".into(), "b".into()] }
        );
        query(&mut e, "a", Query::Connectivity);
        query(&mut e, "a", Query::Connectivity);
        let r = e.execute(Request::Stats);
        assert!(
            matches!(r, Response::EngineStats { graphs: 2, queries: 2, cache_hits: 1, .. }),
            "got {r}"
        );
    }

    #[test]
    fn connectivity_never_rebuilds_on_the_dynamic_path() {
        let mut e = Engine::new();
        create(&mut e, "g", GraphSpec::Cycle { n: 8 });
        assert!(matches!(
            query(&mut e, "g", Query::Connectivity),
            Response::ConnectivityValue { components: 1, cached: false }
        ));
        assert_eq!(e.stats().index.dsu_fast_hits, 1);
        assert_eq!(e.stats().index.csr_builds, 0, "connectivity must not build the CSR");

        e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 0, v: 4, w: 1 },
        });
        query(&mut e, "g", Query::Connectivity);

        // The operation the dynamic forest exists for: a delete no longer
        // costs the next read an O(m α) rebuild.
        e.execute(Request::Mutate { name: "g".into(), op: Mutation::DeleteEdge { u: 0, v: 4 } });
        assert!(matches!(
            query(&mut e, "g", Query::Connectivity),
            Response::ConnectivityValue { components: 1, cached: false }
        ));
        // A splitting delete is exact too, still without a rebuild.
        e.execute(Request::Mutate { name: "g".into(), op: Mutation::DeleteEdge { u: 7, v: 0 } });
        e.execute(Request::Mutate { name: "g".into(), op: Mutation::DeleteEdge { u: 3, v: 4 } });
        assert!(matches!(
            query(&mut e, "g", Query::Connectivity),
            Response::ConnectivityValue { components: 2, cached: false }
        ));
        assert_eq!(e.stats().index.dsu_fast_hits, 4);
        assert_eq!(e.stats().index.dsu_rebuilds, 0, "dynamic path never rebuilds");
        assert_eq!(e.stats().index.dsu_resizes, 0);
    }

    #[test]
    fn legacy_path_rebuilds_after_delete() {
        // `dynamic_index: false` pins the PR 3 incremental-DSU behavior:
        // inserts fast-path, a delete dirties, the next read rebuilds.
        let cfg = EngineConfig { dynamic_index: false, ..EngineConfig::default() };
        let mut e = Engine::with_config(cfg);
        create(&mut e, "g", GraphSpec::Cycle { n: 8 });
        query(&mut e, "g", Query::Connectivity);
        assert_eq!(e.stats().index.dsu_fast_hits, 1);

        e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 0, v: 4, w: 1 },
        });
        query(&mut e, "g", Query::Connectivity);
        assert_eq!(e.stats().index.dsu_fast_hits, 2);
        assert_eq!(e.stats().index.dsu_rebuilds, 0);

        // A delete dirties the DSU; the next read rebuilds lazily ...
        e.execute(Request::Mutate { name: "g".into(), op: Mutation::DeleteEdge { u: 0, v: 4 } });
        query(&mut e, "g", Query::Connectivity);
        assert_eq!(e.stats().index.dsu_rebuilds, 1);
        // ... and fast-paths again afterwards (new epoch ⇒ cache miss).
        e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 1, v: 5, w: 1 },
        });
        query(&mut e, "g", Query::Connectivity);
        assert_eq!(e.stats().index.dsu_fast_hits, 3);
    }

    #[test]
    fn certified_carry_skips_gated_recomputes() {
        let mut e = Engine::new();
        // Two components: {0,1} and {2,3}.
        create(&mut e, "g", GraphSpec::Edges { n: 4, edges: vec![(0, 1, 1), (2, 3, 1)] });
        let first = query(&mut e, "g", Query::ExactMinCut);
        assert!(
            matches!(first, Response::CutValue { weight: 0, side_size: 2, cached: false }),
            "got {first}"
        );
        assert_eq!(e.stats().cut_recomputes, 1);
        assert_eq!(e.stats().cut_certified_skips, 0);

        // A parallel-edge insert bumps the epoch but not the partition:
        // the stale answer carries, bit-for-bit, without Stoer–Wagner.
        e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 0, v: 1, w: 9 },
        });
        let carried = query(&mut e, "g", Query::ExactMinCut);
        assert_eq!(format!("{carried}"), format!("{first}"), "carry must not change bytes");
        assert_eq!(e.stats().cut_recomputes, 1, "no recompute happened");
        assert_eq!(e.stats().cut_certified_skips, 1);
        assert_eq!(e.stats().cache_misses, 2, "the carry accounts as a miss, like a recompute");

        // The carried answer is re-stamped at the current epoch: the next
        // read is a plain cache hit.
        assert!(query(&mut e, "g", Query::ExactMinCut).was_cached());

        // st-cut across the split carries the same way.
        let st = query(&mut e, "g", Query::StCutWeight { s: 1, t: 2 });
        assert!(matches!(st, Response::CutValue { weight: 0, .. }));
        e.execute(Request::Mutate { name: "g".into(), op: Mutation::DeleteEdge { u: 0, v: 1 } });
        let st2 = query(&mut e, "g", Query::StCutWeight { s: 1, t: 2 });
        assert_eq!(format!("{st2}"), format!("{st}"));
        assert_eq!(e.stats().cut_certified_skips, 2);

        // A merging insert moves the partition: the certificate is void
        // and the now-connected graph really recomputes.
        e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 1, v: 2, w: 5 },
        });
        e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 3, v: 0, w: 5 },
        });
        // Cycle 0-1-2-3-0 with weights 9,5,1,5: isolating vertex 2 (or 3)
        // cuts 5+1 = 6.
        let connected = query(&mut e, "g", Query::ExactMinCut);
        assert!(
            matches!(connected, Response::CutValue { weight: 6, .. }),
            "recomputed on the real graph: {connected}"
        );
        assert_eq!(e.stats().cut_certified_skips, 2, "no bogus carry");
        assert!(e.stats().cut_recomputes >= 3);
    }

    #[test]
    fn certificates_never_change_response_bytes() {
        // The same request sequence — mutation-heavy, stale-cache-heavy,
        // with disconnected phases — must produce byte-identical response
        // streams with the certificate gate on and off. This is the
        // in-process version of the CI write-storm `cmp` gate.
        let run = |dynamic: bool| -> (Vec<String>, EngineStats) {
            let cfg = EngineConfig { dynamic_index: dynamic, ..EngineConfig::default() };
            let mut e = Engine::with_config(cfg);
            let mut log = Vec::new();
            let mut push = |r: Response| log.push(format!("{r}"));
            push(e.execute(Request::Create {
                name: "g".into(),
                spec: GraphSpec::Edges {
                    n: 6,
                    edges: vec![(0, 1, 2), (1, 2, 3), (3, 4, 1), (4, 5, 1), (3, 5, 2)],
                },
            }));
            let reads = [
                Query::ExactMinCut,
                Query::ApproxMinCut { seed: 7 },
                Query::StCutWeight { s: 0, t: 3 },
                Query::StCutWeight { s: 0, t: 2 },
                Query::Connectivity,
                Query::SingletonCut { seed: 3 },
            ];
            let muts = [
                Mutation::InsertEdge { u: 0, v: 2, w: 4 }, // cycle: partition frozen
                Mutation::DeleteEdge { u: 1, v: 2 },       // cycle edge: frozen
                Mutation::InsertEdge { u: 2, v: 3, w: 1 }, // merges the halves
                Mutation::DeleteEdge { u: 2, v: 3 },       // splits again
                Mutation::ContractVertices { u: 4, v: 5 }, // wholesale rebuild
                Mutation::DeleteEdge { u: 3, v: 4 },       // (3,5)+(4,5) merged side
            ];
            for m in muts {
                for q in reads {
                    push(e.execute(Request::Query { name: "g".into(), query: q }));
                }
                push(e.execute(Request::Mutate { name: "g".into(), op: m }));
            }
            for q in reads {
                push(e.execute(Request::Query { name: "g".into(), query: q }));
            }
            push(e.execute(Request::Stats));
            (log, e.stats())
        };
        let (gated, gated_stats) = run(true);
        let (plain, plain_stats) = run(false);
        assert_eq!(gated, plain, "gating must be invisible in the response stream");
        assert!(gated_stats.cut_certified_skips > 0, "the sequence must exercise carries");
        assert_eq!(plain_stats.cut_certified_skips, 0);
        assert_eq!(
            gated_stats.cut_recomputes + gated_stats.cut_certified_skips,
            plain_stats.cut_recomputes,
            "every skipped recompute is accounted for"
        );
        // The logged counters (inside Response::EngineStats) already
        // matched via the stream; the off-log cache totals agree too.
        assert_eq!(gated_stats.cache_hits, plain_stats.cache_hits);
        assert_eq!(gated_stats.cache_misses, plain_stats.cache_misses);
    }

    #[test]
    fn snapshot_is_built_once_and_shared_between_mutations() {
        let mut e = Engine::new();
        create(&mut e, "g", GraphSpec::Cycle { n: 10 });
        // Three distinct CSR-needing queries: one build, two reuses.
        query(&mut e, "g", Query::ExactMinCut);
        query(&mut e, "g", Query::StCutWeight { s: 0, t: 5 });
        query(&mut e, "g", Query::SingletonCut { seed: 1 });
        let s = e.stats();
        assert_eq!(s.index.csr_builds, 1);
        assert_eq!(s.index.csr_reuses, 2);
        assert_eq!(s.builds_by_kind[Query::ExactMinCut.kind_index()], 1);
        assert_eq!(s.reuse_by_kind[Query::StCutWeight { s: 0, t: 5 }.kind_index()], 1);

        // A mutation invalidates the stamp: exactly one more build.
        e.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 0, v: 5, w: 2 },
        });
        query(&mut e, "g", Query::ExactMinCut);
        query(&mut e, "g", Query::StCutWeight { s: 0, t: 5 });
        let s = e.stats();
        assert_eq!(s.index.csr_builds, 2);
        assert_eq!(s.index.csr_reuses, 3);
    }

    #[test]
    fn lru_evicts_cold_entries_not_the_working_set() {
        let cfg = EngineConfig { max_cache_entries: 2, ..EngineConfig::default() };
        let mut e = Engine::with_config(cfg);
        create(&mut e, "g", GraphSpec::Cycle { n: 8 });
        // Fill: {exact, connectivity}, then keep exact hot.
        query(&mut e, "g", Query::ExactMinCut);
        query(&mut e, "g", Query::Connectivity);
        query(&mut e, "g", Query::ExactMinCut); // hit, promotes
        assert_eq!(e.stats().cache_hits, 1);
        // Inserting a third entry evicts connectivity (the cold one).
        query(&mut e, "g", Query::StCutWeight { s: 0, t: 4 });
        assert_eq!(e.stats().index.lru_evictions, 1);
        assert!(query(&mut e, "g", Query::ExactMinCut).was_cached(), "hot entry survived");
        assert!(!query(&mut e, "g", Query::Connectivity).was_cached(), "cold entry was evicted");
    }

    #[test]
    fn read_batch_matches_serial_execution() {
        let queries = vec![
            Query::ExactMinCut,
            Query::Connectivity,
            Query::ExactMinCut, // cache hit inside the batch
            Query::StCutWeight { s: 0, t: 3 },
            Query::KCut { k: 99 }, // error inside the batch
        ];

        let mut serial = Engine::new();
        create(&mut serial, "g", GraphSpec::Cycle { n: 7 });
        let expected: Vec<Response> = queries.iter().map(|q| query(&mut serial, "g", *q)).collect();

        let mut batched = Engine::new();
        create(&mut batched, "g", GraphSpec::Cycle { n: 7 });
        let got = batched.execute_read_batch("g", queries.clone());
        assert_eq!(got, expected);

        // Same query/cache counters; only batch bookkeeping differs.
        assert_eq!(batched.stats().queries, serial.stats().queries);
        assert_eq!(batched.stats().cache_hits, serial.stats().cache_hits);
        assert_eq!(batched.stats().index, serial.stats().index);
        assert_eq!(batched.stats().batches, 1);
        assert_eq!(batched.stats().batched_reads, 5);
        assert_eq!(batched.stats().batch_hist[batch_bucket(5)], 1);
        assert_eq!(serial.stats().batches, 0);

        // Unknown graph: per-query errors, no counter bumps — like serial.
        let errs = batched.execute_read_batch("ghost", vec![Query::Connectivity]);
        assert!(matches!(&errs[..], [Response::Error { .. }]));
        assert_eq!(batched.stats().queries, serial.stats().queries);
    }

    #[test]
    fn summary_tracks_mutations_without_a_csr() {
        let mut e = Engine::new();
        create(&mut e, "p", GraphSpec::Edges { n: 4, edges: vec![(0, 1, 3), (1, 2, 5)] });
        let s = e.summary("p").unwrap();
        assert_eq!((s.n, s.m, s.total_weight, s.max_weighted_degree), (4, 2, 8, 8));
        e.execute(Request::Mutate {
            name: "p".into(),
            op: Mutation::InsertEdge { u: 2, v: 3, w: 7 },
        });
        let s = e.summary("p").unwrap();
        assert_eq!((s.m, s.total_weight, s.max_weighted_degree), (3, 15, 12));
        assert_eq!(e.stats().index.csr_builds, 0, "summaries never build the CSR");
        assert!(e.summary("ghost").is_none());
    }

    #[test]
    fn batch_buckets_cover_all_sizes() {
        assert_eq!(batch_bucket(0), 0);
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(16), 4);
        assert_eq!(batch_bucket(32), 5);
        assert_eq!(batch_bucket(33), 6);
        assert_eq!(batch_bucket(10_000), 6);
        assert_eq!(BATCH_BUCKET_LABELS.len(), BATCH_BUCKETS);
    }

    #[test]
    fn export_import_moves_epoch_cache_and_index_wholesale() {
        let mut a = Engine::new();
        create(&mut a, "g", GraphSpec::Cycle { n: 10 });
        a.execute(Request::Mutate {
            name: "g".into(),
            op: Mutation::InsertEdge { u: 0, v: 5, w: 3 },
        });
        let warmed = query(&mut a, "g", Query::ExactMinCut);
        assert!(!warmed.was_cached());

        let export = a.export_graph("g").expect("graph registered");
        assert_eq!(export.name(), "g");
        assert_eq!(export.epoch(), 1, "epoch travels with the entry");
        assert_eq!(a.stats().migrations_out, 1);
        assert_eq!(a.graph_count(), 0);
        assert!(a.export_graph("g").is_none(), "second export finds nothing");

        let mut b = Engine::new();
        assert!(b.import_graph(export).is_ok());
        assert_eq!(b.stats().migrations_in, 1);
        assert_eq!(b.epoch("g"), Some(1));
        // The warmed cache moved: the same query is a hit on the new engine.
        let again = query(&mut b, "g", Query::ExactMinCut);
        assert!(again.was_cached(), "cache must migrate wholesale");
        assert_eq!(again.as_cached(), warmed.as_cached());
        // So does the index: connectivity fast-paths without a CSR build.
        assert!(matches!(
            query(&mut b, "g", Query::Connectivity),
            Response::ConnectivityValue { components: 1, .. }
        ));
        assert_eq!(b.stats().index.dsu_fast_hits, 1);

        // Mutating after the move behaves exactly like a local graph.
        let r = b
            .execute(Request::Mutate { name: "g".into(), op: Mutation::DeleteEdge { u: 0, v: 5 } });
        assert!(matches!(r, Response::Mutated { epoch: 2, .. }), "got {r}");
        assert!(!query(&mut b, "g", Query::ExactMinCut).was_cached());
    }

    #[test]
    fn import_rejects_name_collisions_untouched() {
        let mut a = Engine::new();
        create(&mut a, "g", GraphSpec::Cycle { n: 6 });
        let export = a.export_graph("g").unwrap();

        let mut b = Engine::new();
        create(&mut b, "g", GraphSpec::Cycle { n: 9 });
        let rejected = b.import_graph(export).expect_err("collision must fail");
        assert_eq!(rejected.name(), "g");
        assert_eq!(b.stats().migrations_in, 0, "failed import must not count");
        // The rejected export is intact and installable elsewhere.
        let mut c = Engine::new();
        assert!(c.import_graph(rejected).is_ok());
        assert!(matches!(
            query(&mut c, "g", Query::ExactMinCut),
            Response::CutValue { weight: 2, .. }
        ));
    }

    #[test]
    fn kernel_mode_never_changes_responses() {
        // The byte-identity contract, at the engine layer: a kernelized
        // engine and a plain one, fed the same request stream (creates,
        // patchable inserts, invalidating deletes, every cut query kind,
        // a disconnected graph for the component-summary serve), must
        // produce element-wise equal responses — and the kernel path
        // must actually fire, or the test pins nothing.
        let mut kernelized = Engine::with_config(EngineConfig {
            kernel: true,
            kernel_threshold: 4,
            ..EngineConfig::default()
        });
        let mut plain = Engine::new();

        let mut requests: Vec<Request> = vec![
            // Sparse: plenty of deg-1/deg-2 structure for stage 1.
            Request::Create {
                name: "link".into(),
                spec: GraphSpec::ConnectedGnm { n: 32, m: 38, w_min: 1, w_max: 9, seed: 11 },
            },
            // Disconnected: exact/approx serve from the component summary.
            Request::Create {
                name: "split".into(),
                spec: GraphSpec::Edges {
                    n: 6,
                    edges: vec![(0, 1, 2), (1, 2, 2), (3, 4, 5), (4, 5, 5)],
                },
            },
            // K6: every vertex has degree 5, so all survive stage 1 and
            // inserts hit the live-endpoint patch path.
            Request::Create {
                name: "dense".into(),
                spec: GraphSpec::Edges {
                    n: 6,
                    edges: (0..6u32).flat_map(|i| (i + 1..6).map(move |j| (i, j, 3u64))).collect(),
                },
            },
        ];
        for round in 0..25u64 {
            let (s, t) = ((round % 13) as u32, 31 - (round % 11) as u32);
            requests.push(Request::Query { name: "link".into(), query: Query::ExactMinCut });
            requests.push(Request::Query {
                name: "link".into(),
                query: Query::ApproxMinCut { seed: round },
            });
            requests
                .push(Request::Query { name: "link".into(), query: Query::StCutWeight { s, t } });
            requests.push(Request::Query {
                name: "link".into(),
                query: Query::SingletonCut { seed: round },
            });
            requests.push(Request::Query { name: "split".into(), query: Query::ExactMinCut });
            requests.push(Request::Query {
                name: "split".into(),
                query: Query::ApproxMinCut { seed: round },
            });
            requests.push(Request::Query {
                name: "split".into(),
                query: Query::StCutWeight { s: 0, t: 4 },
            });
            requests.push(Request::Query { name: "dense".into(), query: Query::ExactMinCut });
            if round % 2 == 0 {
                requests.push(Request::Mutate {
                    name: "dense".into(),
                    op: Mutation::InsertEdge {
                        u: (round % 6) as u32,
                        v: ((round + 2) % 6) as u32,
                        w: 1 + round % 4,
                    },
                });
            }
            let (u, v) = ((round % 32) as u32, ((round * 7 + 3) % 32) as u32);
            match round % 3 {
                // Live-endpoint inserts exercise the patch path...
                0 => requests.push(Request::Mutate {
                    name: "link".into(),
                    op: Mutation::InsertEdge { u, v, w: 1 + round % 6 },
                }),
                // ...and deleting last round's insert forces rebuilds.
                1 => {
                    let (u, v) = (((round - 1) % 32) as u32, (((round - 1) * 7 + 3) % 32) as u32);
                    requests.push(Request::Mutate {
                        name: "link".into(),
                        op: Mutation::DeleteEdge { u, v },
                    });
                }
                _ => {}
            }
        }
        for req in requests {
            assert_eq!(kernelized.execute(req.clone()), plain.execute(req));
        }
        let stats = kernelized.stats();
        assert!(stats.kernel_cut_serves > 0, "kernel path never served");
        assert!(stats.kernel_cut_fallbacks > 0, "fallback path never exercised");
        assert!(stats.index.kernel_builds > 0, "kernel never built");
        assert!(stats.index.kernel_patches > 0, "insert stream never patched");
        assert_eq!(plain.stats().kernel_cut_serves, 0, "plain engine must not kernelize");
    }

    #[test]
    fn export_roundtrip_rebuilds_kernel_cleanly() {
        // The kernel is a derived cache: it must not serialize with the
        // graph. A populated kernel cache at export time leaves the trace
        // grammar untouched, and the importing engine rebuilds its own
        // kernel from the moved edge list.
        let cfg = EngineConfig { kernel: true, kernel_threshold: 4, ..EngineConfig::default() };
        let spec = GraphSpec::ConnectedGnm { n: 24, m: 29, w_min: 1, w_max: 7, seed: 5 };
        let mut a = Engine::with_config(cfg.clone());
        create(&mut a, "g", spec.clone());
        let warmed = query(&mut a, "g", Query::ExactMinCut);
        query(&mut a, "g", Query::StCutWeight { s: 1, t: 17 });
        assert!(a.stats().index.kernel_builds >= 1, "kernel cache must be warm before export");

        let trace = a.export_graph("g").expect("registered").to_trace();
        for line in trace.lines() {
            let head = line.split_whitespace().next().unwrap_or("");
            assert!(
                matches!(head, "graph" | "edges" | "cache" | "end")
                    || head.chars().next().is_some_and(|c| c.is_ascii_digit()),
                "unexpected trace section {head:?}: the kernel must not serialize"
            );
        }

        let mut b = Engine::with_config(cfg);
        b.import_graph(GraphExport::from_trace(&trace, 4096).expect("well-formed trace"))
            .expect("no collision");

        // An unkernelized oracle replays the same history from scratch.
        let mut oracle = Engine::new();
        create(&mut oracle, "g", spec);
        assert_eq!(query(&mut oracle, "g", Query::ExactMinCut), warmed);
        for e in [&mut b, &mut oracle] {
            let r = e.execute(Request::Mutate {
                name: "g".into(),
                op: Mutation::InsertEdge { u: 0, v: 9, w: 2 },
            });
            assert!(matches!(r, Response::Mutated { .. }), "got {r}");
        }
        for q in [
            Query::ExactMinCut,
            Query::StCutWeight { s: 1, t: 17 },
            Query::StCutWeight { s: 0, t: 9 },
            Query::ApproxMinCut { seed: 3 },
        ] {
            assert_eq!(query(&mut b, "g", q), query(&mut oracle, "g", q));
        }
        assert!(b.stats().index.kernel_builds >= 1, "import must rebuild the kernel");
    }

    #[test]
    fn merge_folds_placement_and_steal_counters() {
        let mut total = EngineStats::default();
        let part = EngineStats {
            migrations_in: 2,
            migrations_out: 3,
            steal_batches: 4,
            steal_reads: 40,
            ..EngineStats::default()
        };
        total.merge(&part);
        total.merge(&part);
        assert_eq!(
            (total.migrations_in, total.migrations_out, total.steal_batches, total.steal_reads),
            (4, 6, 8, 80)
        );
    }

    #[test]
    fn seeded_queries_cache_by_seed() {
        let mut e = Engine::new();
        create(&mut e, "g", GraphSpec::ConnectedGnm { n: 24, m: 60, w_min: 1, w_max: 9, seed: 3 });
        let a = query(&mut e, "g", Query::ApproxMinCut { seed: 10 });
        let b = query(&mut e, "g", Query::ApproxMinCut { seed: 11 });
        assert!(!b.was_cached(), "different seed is a different query");
        let a2 = query(&mut e, "g", Query::ApproxMinCut { seed: 10 });
        assert!(a2.was_cached());
        assert_eq!(a2.as_cached(), a.as_cached());
        let _ = (a, b);
    }
}
