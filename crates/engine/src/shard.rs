//! The sharded front-end: the same `Request -> Response` contract as
//! [`Engine`], served by N worker threads.
//!
//! [`ShardedEngine`] partitions the graph registry across `shards` workers
//! by a stable hash of the graph name; each worker owns a private [`Engine`]
//! holding its graphs' edge lists, epoch counters, and query caches, and
//! drains a FIFO channel of jobs. Because a graph's name always hashes to
//! the same shard and each shard's queue is FIFO, **per-graph request
//! ordering is exactly submission order** — while requests that target
//! graphs on different shards execute concurrently.
//!
//! Cross-graph requests ([`Request::ListGraphs`], [`Request::Stats`]) are
//! broadcast to every shard through the same FIFO queues and their partial
//! answers merged, so they observe precisely the requests submitted before
//! them — the merged answer is byte-identical to what a single unsharded
//! [`Engine`] fed the same request stream would return. That makes the
//! sharded engine a drop-in: for *any* request stream and *any* shard
//! count, the response sequence (in submission order) matches the
//! single-threaded engine's, and the stress harness's deterministic log
//! digest is unchanged.
//!
//! Two ways to drive it:
//! - [`ShardedEngine::execute`] — submit one request and block for its
//!   answer; a drop-in for [`Engine::execute`] (no parallelism: each
//!   request completes before the next is submitted).
//! - [`ShardedEngine::submit`] + [`Ticket::wait`] — pipeline many requests
//!   and collect answers in submission order; this is what overlaps work
//!   across shards and where the throughput win comes from.
//!
//! With [`ShardOptions::batch`] enabled, each worker additionally drains
//! its queue into **per-graph read batches**: a maximal run of consecutive
//! queued queries against the same graph executes through one
//! [`Engine::execute_read_batch`] call — one registry lookup, one shared
//! index snapshot — while any mutation, create, drop, or broadcast acts as
//! a barrier and executes singly. Jobs still execute in exact queue order,
//! so the response stream stays byte-identical to the unbatched path; only
//! the cost of producing it (and the batch counters in
//! [`EngineStats`]) changes.
//!
//! Shutdown is graceful: [`ShardedEngine::shutdown`] (or drop) closes the
//! job queues, and every worker drains all in-flight jobs before exiting,
//! so tickets taken before shutdown still resolve.
//!
//! ```
//! use cut_engine::{GraphSpec, Query, Request, Response, ShardedEngine};
//!
//! let mut engine = ShardedEngine::new(4);
//! // Tickets pipeline: submit first, wait later, answers in order.
//! let create = engine.submit(Request::Create {
//!     name: "ring".into(),
//!     spec: GraphSpec::Cycle { n: 12 },
//! });
//! let cut = engine.submit(Request::Query {
//!     name: "ring".into(),
//!     query: Query::ExactMinCut,
//! });
//! assert!(matches!(create.wait(), Response::Created { .. }));
//! assert!(matches!(cut.wait(), Response::CutValue { weight: 2, .. }));
//! let per_shard = engine.shutdown();
//! assert_eq!(per_shard.iter().map(|s| s.queries).sum::<u64>(), 1);
//! ```

use std::collections::VecDeque;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::engine::{Engine, EngineConfig, EngineStats};
use crate::request::{Request, Response};

/// How a [`ShardedEngine`]'s workers execute their queues.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Per-shard engine configuration.
    pub cfg: EngineConfig,
    /// Drain queued runs of same-graph queries into read batches
    /// (mutations are barriers). Changes cost, never responses.
    pub batch: bool,
    /// Most jobs a worker pulls off its queue in one drain (bounds the
    /// latency a batch can add to its first member).
    pub max_batch: usize,
}

impl Default for ShardOptions {
    fn default() -> Self {
        Self { cfg: EngineConfig::default(), batch: false, max_batch: 256 }
    }
}

/// One unit of work for a shard worker: a request plus the channel its
/// response goes back on.
struct Job {
    request: Request,
    reply: Sender<Response>,
}

/// Which cross-shard request a broadcast ticket is merging.
#[derive(Debug, Clone, Copy)]
enum MergeKind {
    ListGraphs,
    Stats,
}

/// A pending response from [`ShardedEngine::submit`].
///
/// Waiting is detached from submission so callers can keep many requests
/// in flight; [`Ticket::wait`] blocks until the owning shard (or, for
/// broadcasts, every shard) has answered. Tickets remain valid across
/// [`ShardedEngine::shutdown`]: workers drain their queues before exiting.
#[must_use = "a ticket holds a pending response; call wait() to collect it"]
pub struct Ticket {
    inner: TicketInner,
}

enum TicketInner {
    /// One shard answers.
    Single(Receiver<Response>),
    /// Every shard answers; the partials merge into one response.
    Merge { kind: MergeKind, parts: Vec<Receiver<Response>> },
}

impl Ticket {
    /// Block until the response is available.
    ///
    /// If a shard worker died (panicked) before answering, this returns a
    /// [`Response::Error`] instead of hanging or propagating the panic.
    pub fn wait(self) -> Response {
        match self.inner {
            TicketInner::Single(rx) => rx.recv().unwrap_or_else(|_| worker_lost()),
            TicketInner::Merge { kind, parts } => {
                let mut partials = Vec::with_capacity(parts.len());
                for rx in parts {
                    match rx.recv() {
                        Ok(r) => partials.push(r),
                        Err(_) => return worker_lost(),
                    }
                }
                merge_partials(kind, partials)
            }
        }
    }
}

fn worker_lost() -> Response {
    Response::Error { message: "shard worker disconnected before answering".into() }
}

/// Merge per-shard partial answers to a broadcast request into the answer
/// an unsharded engine would give.
fn merge_partials(kind: MergeKind, partials: Vec<Response>) -> Response {
    match kind {
        MergeKind::ListGraphs => {
            let mut names = Vec::new();
            for p in partials {
                match p {
                    Response::Graphs { names: part } => names.extend(part),
                    other => return unexpected_partial(other),
                }
            }
            // Each shard's list is sorted; the global contract is one
            // sorted list.
            names.sort_unstable();
            Response::Graphs { names }
        }
        MergeKind::Stats => {
            let (mut graphs, mut queries, mut hits, mut misses, mut mutations) = (0, 0, 0, 0, 0);
            for p in partials {
                match p {
                    Response::EngineStats {
                        graphs: g,
                        queries: q,
                        cache_hits: h,
                        cache_misses: m,
                        mutations: mu,
                    } => {
                        graphs += g;
                        queries += q;
                        hits += h;
                        misses += m;
                        mutations += mu;
                    }
                    other => return unexpected_partial(other),
                }
            }
            Response::EngineStats {
                graphs,
                queries,
                cache_hits: hits,
                cache_misses: misses,
                mutations,
            }
        }
    }
}

fn unexpected_partial(got: Response) -> Response {
    Response::Error { message: format!("unexpected shard partial: {got}") }
}

/// Stable FNV-1a over the graph name — the routing function. Kept
/// platform- and run-independent so shard assignment (and therefore the
/// per-shard occupancy a harness reports) is reproducible.
fn name_hash(name: &str) -> u64 {
    cut_graph::hash::fnv1a(name.as_bytes())
}

/// The sharded, multi-threaded front-end over [`Engine`].
///
/// See the [module docs](self) for the routing and ordering contract. Use
/// [`ShardedEngine::new`] for defaults, [`ShardedEngine::with_config`] to
/// set the per-shard [`EngineConfig`].
pub struct ShardedEngine {
    txs: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<EngineStats>>,
    /// Jobs enqueued per shard (broadcasts count on every shard).
    routed: Vec<u64>,
}

impl ShardedEngine {
    /// Spawn `shards` worker threads with the default [`EngineConfig`].
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, EngineConfig::default())
    }

    /// Spawn `shards` worker threads, each owning an `Engine` built from
    /// `cfg`.
    ///
    /// # Panics
    /// Panics if `shards` is zero, or if the OS refuses to spawn a worker
    /// thread (callers taking `shards` from user input should bound it —
    /// the stress harness caps at 1024).
    pub fn with_config(shards: usize, cfg: EngineConfig) -> Self {
        Self::with_options(shards, ShardOptions { cfg, ..ShardOptions::default() })
    }

    /// Spawn `shards` worker threads with batching and be able to set the
    /// drain cap — see [`ShardOptions`].
    ///
    /// # Panics
    /// Panics if `shards` is zero, or if the OS refuses to spawn a worker
    /// thread (callers taking `shards` from user input should bound it —
    /// the stress harness caps at 1024).
    pub fn with_options(shards: usize, opts: ShardOptions) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        let mut txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = unbounded::<Job>();
            let worker_opts = opts.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cut-shard-{shard}"))
                .spawn(move || worker_loop(rx, worker_opts))
                .expect("spawn shard worker");
            txs.push(tx);
            workers.push(handle);
        }
        Self { txs, workers, routed: vec![0; shards] }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// The shard that owns graph `name` — stable for the lifetime of the
    /// engine (and across engines with the same shard count).
    pub fn shard_of(&self, name: &str) -> usize {
        (name_hash(name) % self.txs.len() as u64) as usize
    }

    /// Jobs enqueued per shard so far (broadcast requests count once on
    /// every shard). The stress harness reads this for occupancy stats.
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// Enqueue one request and return a [`Ticket`] for its response.
    ///
    /// Requests that name a graph go to that graph's shard; `ListGraphs`
    /// and `Stats` are broadcast to every shard and merged at
    /// [`Ticket::wait`]. Submission order *is* per-graph execution order.
    pub fn submit(&mut self, request: Request) -> Ticket {
        enum Route {
            Shard(usize),
            Broadcast(MergeKind),
        }
        // Exhaustive: a new Request variant must declare here whether it
        // routes by graph name or broadcasts (and how its partials merge).
        let route = match &request {
            Request::Create { name, .. }
            | Request::Drop { name }
            | Request::Mutate { name, .. }
            | Request::Query { name, .. } => Route::Shard(self.shard_of(name)),
            Request::ListGraphs => Route::Broadcast(MergeKind::ListGraphs),
            Request::Stats => Route::Broadcast(MergeKind::Stats),
        };
        match route {
            Route::Shard(shard) => {
                let (reply, rx) = unbounded();
                self.routed[shard] += 1;
                // A failed send means the worker is gone (panicked); the
                // ticket reports that on wait.
                let _ = self.txs[shard].send(Job { request, reply });
                Ticket { inner: TicketInner::Single(rx) }
            }
            Route::Broadcast(kind) => {
                let mut parts = Vec::with_capacity(self.txs.len());
                for (shard, tx) in self.txs.iter().enumerate() {
                    let (reply, rx) = unbounded();
                    self.routed[shard] += 1;
                    let _ = tx.send(Job { request: request.clone(), reply });
                    parts.push(rx);
                }
                Ticket { inner: TicketInner::Merge { kind, parts } }
            }
        }
    }

    /// Submit one request and block for its response — a drop-in for
    /// [`Engine::execute`] (correct, but serialized; use [`submit`] to
    /// overlap work across shards).
    ///
    /// [`submit`]: ShardedEngine::submit
    pub fn execute(&mut self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Close the job queues and join every worker, returning each shard's
    /// final [`EngineStats`] (index = shard id).
    ///
    /// Graceful: workers drain every job already queued before exiting, so
    /// tickets obtained before `shutdown` still resolve with real answers.
    ///
    /// # Panics
    /// Propagates a shard worker's panic rather than silently reporting
    /// zeroed stats for the dead shard. (In-flight tickets against a dead
    /// shard resolve to [`Response::Error`], not a hang — see
    /// [`Ticket::wait`].)
    pub fn shutdown(mut self) -> Vec<EngineStats> {
        self.txs.clear();
        self.workers
            .drain(..)
            .enumerate()
            .map(|(shard, h)| h.join().unwrap_or_else(|_| panic!("shard worker {shard} panicked")))
            .collect()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // `shutdown` drained these already; a plain drop also joins so no
        // worker outlives the engine.
        self.txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The shard worker: drain jobs FIFO into a private engine until every
/// sender is gone, then report final stats to `shutdown`.
///
/// In batch mode the worker opportunistically pulls whatever has queued
/// up behind the job it is about to run (up to `max_batch`), then
/// executes maximal runs of consecutive same-graph queries through
/// [`Engine::execute_read_batch`] — one registry lookup and one shared
/// index snapshot per run. Any other request kind is a barrier. Jobs
/// execute in exact queue order either way, so batching never changes a
/// response — per-graph ordering (and thus epochs, caches, and the log
/// digest) is identical to the unbatched worker.
fn worker_loop(rx: Receiver<Job>, opts: ShardOptions) -> EngineStats {
    let mut engine = Engine::with_config(opts.cfg);
    if !opts.batch {
        while let Ok(Job { request, reply }) = rx.recv() {
            // A dropped ticket is fine — compute anyway (mutations must
            // still apply), discard the undeliverable answer.
            let _ = reply.send(engine.execute(request));
        }
        return engine.stats();
    }

    let mut pending: VecDeque<Job> = VecDeque::new();
    loop {
        // Block only when nothing is pending; the channel closing while
        // pending is empty is the (graceful) exit.
        if pending.is_empty() {
            match rx.recv() {
                Ok(job) => pending.push_back(job),
                Err(_) => break,
            }
        }
        // Opportunistic drain: everything already queued joins this round,
        // so a burst of reads becomes one batch instead of many singles.
        while pending.len() < opts.max_batch {
            match rx.try_recv() {
                Ok(job) => pending.push_back(job),
                Err(_) => break,
            }
        }
        let job = pending.pop_front().expect("pending is non-empty here");
        match job.request {
            Request::Query { name, query } => {
                // Extend with the maximal run of consecutive queries
                // against the same graph; the next mutation (or any other
                // request) is the batch barrier.
                let mut queries = vec![query];
                let mut replies = vec![job.reply];
                while let Some(Job { request: Request::Query { name: next, .. }, .. }) =
                    pending.front()
                {
                    if *next != name {
                        break;
                    }
                    if let Some(Job { request: Request::Query { query, .. }, reply }) =
                        pending.pop_front()
                    {
                        queries.push(query);
                        replies.push(reply);
                    }
                }
                let responses = engine.execute_read_batch(&name, queries);
                for (reply, response) in replies.into_iter().zip(responses) {
                    let _ = reply.send(response);
                }
            }
            request => {
                let _ = job.reply.send(engine.execute(request));
            }
        }
    }
    engine.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{GraphSpec, Mutation, Query};

    fn create(engine: &mut ShardedEngine, name: &str, n: usize) {
        let r = engine.execute(Request::Create { name: name.into(), spec: GraphSpec::Cycle { n } });
        assert!(matches!(r, Response::Created { .. }), "create failed: {r}");
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let e = ShardedEngine::new(4);
        for name in ["g000", "g001", "alpha", "β-graph", ""] {
            let s = e.shard_of(name);
            assert!(s < 4);
            assert_eq!(s, e.shard_of(name), "routing must be deterministic");
        }
    }

    #[test]
    fn full_lifecycle_stays_on_one_shard() {
        let mut e = ShardedEngine::new(3);
        create(&mut e, "ring", 10);
        let shard = e.shard_of("ring");
        let r = e.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
        assert!(matches!(r, Response::CutValue { weight: 2, .. }), "got {r}");
        let r = e.execute(Request::Mutate {
            name: "ring".into(),
            op: Mutation::InsertEdge { u: 0, v: 5, w: 4 },
        });
        assert!(matches!(r, Response::Mutated { epoch: 1, .. }), "got {r}");
        let r = e.execute(Request::Drop { name: "ring".into() });
        assert!(matches!(r, Response::Dropped { .. }), "got {r}");
        // Everything above targeted one graph, so exactly one shard worked.
        let busy: Vec<usize> = (0..3).filter(|&s| e.routed()[s] > 0).collect();
        assert_eq!(busy, vec![shard]);
    }

    #[test]
    fn list_and_stats_merge_across_shards() {
        let mut e = ShardedEngine::new(4);
        for name in ["delta", "alpha", "charlie", "bravo"] {
            create(&mut e, name, 6);
        }
        assert_eq!(
            e.execute(Request::ListGraphs),
            Response::Graphs {
                names: vec!["alpha".into(), "bravo".into(), "charlie".into(), "delta".into()]
            }
        );
        for name in ["alpha", "bravo"] {
            e.execute(Request::Query { name: name.into(), query: Query::Connectivity });
            e.execute(Request::Query { name: name.into(), query: Query::Connectivity });
        }
        let r = e.execute(Request::Stats);
        assert_eq!(
            r,
            Response::EngineStats {
                graphs: 4,
                queries: 4,
                cache_hits: 2,
                cache_misses: 2,
                mutations: 0
            }
        );
    }

    #[test]
    fn unknown_graph_errors_match_the_unsharded_engine() {
        let mut sharded = ShardedEngine::new(4);
        let mut plain = Engine::new();
        let requests = [
            Request::Drop { name: "ghost".into() },
            Request::Mutate { name: "ghost".into(), op: Mutation::DeleteEdge { u: 0, v: 1 } },
            Request::Query { name: "ghost".into(), query: Query::ExactMinCut },
        ];
        for req in requests {
            assert_eq!(sharded.execute(req.clone()), plain.execute(req));
        }
    }

    #[test]
    fn shutdown_drains_in_flight_tickets() {
        let mut e = ShardedEngine::new(4);
        create(&mut e, "work", 32);
        let tickets: Vec<Ticket> = (0..64)
            .map(|i| {
                e.submit(Request::Query {
                    name: "work".into(),
                    query: Query::ApproxMinCut { seed: i },
                })
            })
            .collect();
        // Shut down with (potentially) all 64 still queued.
        let per_shard = e.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), Response::CutValue { .. }));
        }
        let total: u64 = per_shard.iter().map(|s| s.queries).sum();
        assert_eq!(total, 64, "every in-flight query must have been served");
    }

    #[test]
    fn dropped_tickets_still_apply_mutations() {
        let mut e = ShardedEngine::new(2);
        create(&mut e, "g", 8);
        for _ in 0..3 {
            // Fire-and-forget: drop the ticket immediately.
            let _ = e.submit(Request::Mutate {
                name: "g".into(),
                op: Mutation::InsertEdge { u: 0, v: 4, w: 1 },
            });
        }
        let r = e.execute(Request::Query { name: "g".into(), query: Query::Connectivity });
        assert!(matches!(r, Response::ConnectivityValue { .. }));
        let mutations: u64 = e.shutdown().iter().map(|s| s.mutations).sum();
        assert_eq!(mutations, 3, "fire-and-forget mutations must still land");
    }

    #[test]
    fn batched_workers_answer_identically() {
        // Pipeline a read-heavy stream with interleaved mutations through
        // a batching sharded engine; responses must match the plain
        // engine's element-wise (mutation = batch barrier).
        let mut requests = vec![
            Request::Create { name: "a".into(), spec: GraphSpec::Cycle { n: 10 } },
            Request::Create { name: "b".into(), spec: GraphSpec::Cycle { n: 12 } },
        ];
        for round in 0..4u64 {
            for i in 0..8u64 {
                requests.push(Request::Query {
                    name: if i % 3 == 0 { "b" } else { "a" }.into(),
                    query: Query::ApproxMinCut { seed: i % 2 },
                });
                requests.push(Request::Query { name: "a".into(), query: Query::Connectivity });
            }
            requests.push(Request::Mutate {
                name: "a".into(),
                op: Mutation::InsertEdge { u: 0, v: (round + 2) as u32, w: 1 + round },
            });
        }
        requests.push(Request::Stats);

        let mut plain = Engine::new();
        let expected: Vec<Response> = requests.iter().map(|r| plain.execute(r.clone())).collect();

        for shards in [1, 3] {
            let mut batched = ShardedEngine::with_options(
                shards,
                ShardOptions { batch: true, ..ShardOptions::default() },
            );
            let tickets: Vec<Ticket> = requests.iter().map(|r| batched.submit(r.clone())).collect();
            let got: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
            assert_eq!(got, expected, "batched responses diverged at shards={shards}");

            let mut total = EngineStats::default();
            for s in batched.shutdown() {
                total.merge(&s);
            }
            assert_eq!(total.queries, plain.stats().queries);
            assert_eq!(total.cache_hits, plain.stats().cache_hits);
            assert_eq!(total.mutations, plain.stats().mutations);
        }
    }

    #[test]
    fn batched_worker_forms_multi_read_batches() {
        // One shard, submissions queued while the worker grinds: runs of
        // same-graph reads must coalesce (batches < batched reads).
        let mut e =
            ShardedEngine::with_options(1, ShardOptions { batch: true, ..ShardOptions::default() });
        create(&mut e, "hot", 48);
        // An expensive head occupies the worker so the read burst queues
        // up behind it and gets drained as (large) batches.
        let head = e.submit(Request::Query { name: "hot".into(), query: Query::KCut { k: 4 } });
        let tickets: Vec<Ticket> = (0..200)
            .map(|i| {
                e.submit(Request::Query {
                    name: "hot".into(),
                    query: Query::StCutWeight { s: i % 48, t: (i + 7) % 48 },
                })
            })
            .collect();
        assert!(!matches!(head.wait(), Response::Error { .. }));
        for t in tickets {
            assert!(!matches!(t.wait(), Response::Error { .. }));
        }
        let stats = &e.shutdown()[0];
        assert_eq!(stats.batched_reads, 201, "every read went through the batch path");
        assert!(
            stats.batches < 201,
            "queued reads must coalesce into multi-read batches (got {} batches)",
            stats.batches
        );
        // Batching shares the snapshot, so the whole burst costs one build.
        assert_eq!(stats.index.csr_builds, 1);
    }

    #[test]
    fn single_shard_matches_engine_exactly() {
        let mut sharded = ShardedEngine::new(1);
        let mut plain = Engine::new();
        let requests = vec![
            Request::Create { name: "a".into(), spec: GraphSpec::Cycle { n: 8 } },
            Request::Create { name: "b".into(), spec: GraphSpec::RandomTree { n: 9, seed: 4 } },
            Request::Query { name: "a".into(), query: Query::ExactMinCut },
            Request::Query { name: "a".into(), query: Query::ExactMinCut },
            Request::Mutate { name: "a".into(), op: Mutation::InsertEdge { u: 1, v: 5, w: 2 } },
            Request::Query { name: "a".into(), query: Query::ExactMinCut },
            Request::Query { name: "b".into(), query: Query::SingletonCut { seed: 3 } },
            Request::ListGraphs,
            Request::Stats,
            Request::Drop { name: "b".into() },
            Request::ListGraphs,
        ];
        for req in requests {
            assert_eq!(sharded.execute(req.clone()), plain.execute(req));
        }
    }
}
