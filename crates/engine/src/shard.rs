//! The sharded front-end: the same `Request -> Response` contract as
//! [`Engine`], served by N worker threads with **adaptive placement** and
//! **work stealing**.
//!
//! [`ShardedEngine`] partitions the graph registry across `shards` workers
//! through a router-owned **placement table** (`graph name -> shard`),
//! consulted per request. A name's first appearance assigns it the stable
//! FNV-1a default shard, so with rebalancing off the routing is exactly
//! the static hash placement of old. Each worker owns a private [`Engine`]
//! holding its graphs' edge lists, epoch counters, and query caches, and
//! drains a FIFO queue of jobs. Because a graph routes to one shard at a
//! time and each shard's queue is FIFO, **per-graph request ordering is
//! exactly submission order** — while requests that target graphs on
//! different shards execute concurrently.
//!
//! With [`PlacementOptions::rebalance`] on, the router additionally keeps
//! per-graph windowed load (a serve-time proxy, [`Request::cost_weight`])
//! and periodically **migrates** graphs: a graph hotter than one shard's
//! fair share rotates across shards so no single shard carries it for the
//! whole run, and overloaded shards shed their heaviest satellite graphs
//! to the coldest shard. A migration is a *barrier for that graph*: a
//! `MigrateOut` marker drains behind every already-queued job on the old
//! shard, the graph's entry — edge list, index, epoch, warmed query
//! cache — moves wholesale, and the new shard blocks at its `MigrateIn`
//! marker until the entry arrives. Per-graph FIFO order is therefore
//! preserved across the move and no response ever changes.
//!
//! With [`PlacementOptions::steal`] on, an idle worker may **steal** the
//! maximal run of same-graph queries from the *tail* of the longest
//! queue — but only when that run is the graph's entire presence in the
//! queue and no broadcast is pending there (the conditions that make
//! stealing invisible: see `docs/SHARDING.md` for the full argument). The
//! victim lends the graph's entry at a handoff marker, the thief serves
//! the run against it, and the entry returns together with the run's
//! query/cache counters, which merge into the *victim's* stats — so
//! broadcast `Stats` answers stay byte-identical to the unsharded
//! engine's. Any later job touching a lent graph (and every broadcast) is
//! a reclaim barrier, mirroring the mutation barrier batching obeys.
//!
//! Cross-graph requests ([`Request::ListGraphs`], [`Request::Stats`]) are
//! broadcast to every shard through the same FIFO queues and their partial
//! answers merged, so they observe precisely the requests submitted before
//! them. Net contract, unchanged from the static-placement engine: for
//! *any* request stream, *any* shard count, and *any* combination of
//! `batch`/`rebalance`/`steal`, the response sequence (in submission
//! order) matches the single-threaded engine's, and the stress harness's
//! deterministic log digest is unchanged.
//!
//! Two ways to drive it:
//! - [`ShardedEngine::execute`] — submit one request and block for its
//!   answer; a drop-in for [`Engine::execute`] (no parallelism: each
//!   request completes before the next is submitted).
//! - [`ShardedEngine::submit`] + [`Ticket::wait`] — pipeline many requests
//!   and collect answers in submission order; this is what overlaps work
//!   across shards and where the throughput win comes from.
//!
//! With [`ShardOptions::batch`] enabled, each worker additionally coalesces
//! **per-graph read batches**: a maximal run of consecutive queued queries
//! against the same graph executes through one
//! [`Engine::execute_read_batch`] call — one registry lookup, one shared
//! index snapshot — while any mutation, create, drop, or broadcast acts as
//! a barrier and executes singly. Jobs still execute in exact queue order,
//! so the response stream stays byte-identical to the unbatched path; only
//! the cost of producing it (and the batch counters in [`EngineStats`])
//! changes.
//!
//! Shutdown is graceful: [`ShardedEngine::shutdown`] (or drop) closes the
//! job queues, and every worker drains all in-flight jobs — including
//! migration markers and steal loans — before exiting, so tickets taken
//! before shutdown still resolve.
//!
//! ```
//! use cut_engine::{GraphSpec, Query, Request, Response, ShardedEngine};
//!
//! let mut engine = ShardedEngine::new(4);
//! // Tickets pipeline: submit first, wait later, answers in order.
//! let create = engine.submit(Request::Create {
//!     name: "ring".into(),
//!     spec: GraphSpec::Cycle { n: 12 },
//! });
//! let cut = engine.submit(Request::Query {
//!     name: "ring".into(),
//!     query: Query::ExactMinCut,
//! });
//! assert!(matches!(create.wait(), Response::Created { .. }));
//! assert!(matches!(cut.wait(), Response::CutValue { weight: 2, .. }));
//! let per_shard = engine.shutdown();
//! assert_eq!(per_shard.iter().map(|s| s.queries).sum::<u64>(), 1);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use cut_obs::{span_flags, Clock, MonotonicClock, Registry, SlowLog, Span};

use crate::engine::{serve_query, Engine, EngineConfig, EngineStats, GraphEntry, ObsScratch};
use crate::pool::CutPool;
use crate::request::{Request, Response};
use crate::store_api::GraphStore;

/// How long an idle steal-enabled worker parks between scans for work, and
/// the poll cadence inside blocking waits. Pure performance knobs: they
/// bound wake-up latency, never affect responses.
const PARK: Duration = Duration::from_micros(200);
const POLL: Duration = Duration::from_micros(50);

/// Tunables for the adaptive placement layer: load-driven rebalancing
/// (graph migration between shards) and idle-worker stealing. Neither
/// feature ever changes a response — see the module docs for the barrier
/// protocols that guarantee it — so these knobs trade only throughput and
/// queue balance.
///
/// # Examples
///
/// ```
/// use cut_engine::{
///     GraphSpec, PlacementOptions, Query, Request, Response, ShardOptions, ShardedEngine,
/// };
///
/// let placement = PlacementOptions {
///     rebalance: true,
///     steal: true,
///     window: 4, // rebalance every 4 submissions (default 512)
///     ..PlacementOptions::default()
/// };
/// let mut engine =
///     ShardedEngine::with_options(2, ShardOptions { placement, ..ShardOptions::default() });
/// for i in 0..4 {
///     engine.execute(Request::Create { name: format!("g{i}"), spec: GraphSpec::Cycle { n: 12 } });
/// }
/// // Hammer one graph: the router's load accounting sees the skew and
/// // rotates the hot graph between shards at window boundaries.
/// for _ in 0..32 {
///     let r = engine.execute(Request::Query { name: "g0".into(), query: Query::ExactMinCut });
///     assert!(matches!(r, Response::CutValue { weight: 2, .. }));
/// }
/// let report = engine.placement_report();
/// assert_eq!(report.assignments.len(), 4, "every graph has a home shard");
/// assert!(report.rebalances > 0);
/// engine.shutdown();
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementOptions {
    /// Enable load-driven rebalancing (graph migration at window
    /// boundaries). Off ⇒ placement is the static FNV default, forever.
    pub rebalance: bool,
    /// Submissions between rebalance checks. Smaller windows adapt faster
    /// but migrate (and pay the per-graph barrier) more often.
    pub window: usize,
    /// Most migrations one rebalance round may enqueue.
    pub max_moves: usize,
    /// Trigger threshold: the hottest shard must carry more than
    /// `imbalance × mean` window load before satellites move (values
    /// below 1.0 behave as 1.0).
    pub imbalance: f64,
    /// Enable idle-worker stealing of same-graph query runs from the tail
    /// of the longest queue.
    pub steal: bool,
    /// Smallest tail run worth stealing (and the smallest victim queue
    /// considered). Raising it avoids churn on short queues.
    pub steal_min: usize,
    /// Feed **measured serve times** back into placement: workers post
    /// the nanoseconds each request actually took (keyed by graph) to a
    /// shared board, and at every window boundary the router re-derives
    /// each graph's mean observed cost and estimates its *compute
    /// pressure* (window request count × mean). Rebalancing then also
    /// rotates a graph whose measured compute exceeds one shard's fair
    /// share of busy time — a pressure the static
    /// [`Request::cost_weight`] table cannot see (it prices request
    /// kinds, not graph size, density, or cache-hit rate). The
    /// queue-pressure accounting and satellite shedding are unchanged,
    /// so count balance is not traded away. The migration *schedule*
    /// becomes timing-dependent, but responses and the log digest stay
    /// byte-identical, because migrations never change a response. No
    /// effect unless [`PlacementOptions::rebalance`] is on.
    pub latency_proxy: bool,
}

impl Default for PlacementOptions {
    fn default() -> Self {
        Self {
            rebalance: false,
            window: 512,
            max_moves: 3,
            imbalance: 1.25,
            steal: false,
            steal_min: 3,
            latency_proxy: false,
        }
    }
}

/// How a [`ShardedEngine`]'s workers execute their queues.
#[derive(Clone)]
pub struct ShardOptions {
    /// Per-shard engine configuration.
    pub cfg: EngineConfig,
    /// Drain queued runs of same-graph queries into read batches
    /// (mutations are barriers). Changes cost, never responses.
    pub batch: bool,
    /// Most queries one read batch may coalesce (bounds the latency a
    /// batch can add to its first member).
    pub max_batch: usize,
    /// Adaptive placement: rebalancing migrations and work stealing.
    pub placement: PlacementOptions,
    /// Durability backend, shared by every worker. Each worker attaches
    /// it to its private [`Engine`] and adopts (as spilled, faulted in on
    /// first touch) the stored graphs whose stable FNV default shard is
    /// its own — so recovery needs no placement history and works for
    /// any shard count.
    pub store: Option<Arc<dyn GraphStore>>,
    /// Telemetry clock stamping request lifecycles (enqueue, dequeue,
    /// serve end) and serve-time attribution. Defaults to the monotonic
    /// wall clock; tests inject a [`cut_obs::TestClock`] for exact,
    /// deterministic stamps. Purely an observer — swapping clocks never
    /// changes a response.
    pub clock: Arc<dyn Clock>,
    /// Worst-N capacity of each shard's slow-query log (0 disables it).
    pub slowlog_cap: usize,
}

impl Default for ShardOptions {
    fn default() -> Self {
        Self {
            cfg: EngineConfig::default(),
            batch: false,
            max_batch: 256,
            placement: PlacementOptions::default(),
            store: None,
            clock: Arc::new(MonotonicClock::new()),
            slowlog_cap: 16,
        }
    }
}

impl std::fmt::Debug for ShardOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardOptions")
            .field("cfg", &self.cfg)
            .field("batch", &self.batch)
            .field("max_batch", &self.max_batch)
            .field("placement", &self.placement)
            .field("store", &self.store.as_ref().map(|_| "dyn GraphStore"))
            .field("clock", &self.clock)
            .field("slowlog_cap", &self.slowlog_cap)
            .finish()
    }
}

/// One unit of work for a shard worker: a request plus the channel its
/// response goes back on, stamped with the telemetry clock reading at
/// submission (the span's enqueue mark — queue wait is measured from it).
struct Job {
    request: Request,
    reply: Sender<Response>,
    enqueue: u64,
}

/// What travels through a shard's queue. Routing invariants: `Exec` jobs
/// for one graph always sit in that graph's current shard's queue;
/// migration markers are enqueued in pairs by the router (out on the old
/// shard, in on the new, in that submission order); steal handoffs are
/// front-inserted by thieves under the queue lock.
enum WorkItem {
    /// Execute a request and reply.
    Exec(Job),
    /// Migration barrier, source side: detach `name` (reclaiming it first
    /// if lent out) and send it to the target shard. Sits behind every
    /// job for `name` submitted before the migration, so the entry leaves
    /// only after they all executed.
    MigrateOut { name: String, to: Sender<MigrationPkg> },
    /// Migration barrier, target side: block until the entry arrives and
    /// install it. Sits ahead of every job for `name` submitted after the
    /// migration, so none executes before the entry exists here.
    MigrateIn { name: String, from: Receiver<MigrationPkg> },
    /// Steal handoff: lend `name`'s entry to the thief on `loan`, and
    /// remember `ret` for the reclaim (entry plus the stolen run's stats
    /// delta). Front-inserted, which is safe because a steal only happens
    /// when the stolen tail run was the graph's entire presence in this
    /// queue — there is no earlier job for the graph to jump.
    StealHandoff { name: String, loan: Sender<LoanPkg>, ret: Receiver<ReturnPkg> },
}

/// A migrating graph (`export: None` when the graph was dropped between
/// the rebalance decision and the source shard reaching the marker — or,
/// with `spilled`, when the graph is cold on disk: ownership of the
/// durable copy moves without faulting it in).
struct MigrationPkg {
    export: Option<crate::engine::GraphExport>,
    /// The source shard held the graph as a spilled (on-disk) entry; the
    /// target adopts the name and faults it in on first touch.
    spilled: bool,
}

/// A loaned graph entry (`None` when the graph vanished first; the thief
/// then answers its stolen run with the engine's unknown-graph error).
struct LoanPkg {
    entry: Option<GraphEntry>,
}

/// A loan coming home: the entry plus the counters the stolen run accrued,
/// which merge into the owning shard's stats.
struct ReturnPkg {
    entry: Option<GraphEntry>,
    delta: EngineStats,
}

/// The latency-proxy feedback: cumulative `(serve nanos, requests served)`
/// per graph, posted by workers (and thieves), read by the router once per
/// rebalance window to re-derive each graph's mean observed serve time —
/// the signal no static table can provide (graph size and density, cache
/// hit rates, drifting mixes all fold into it). Writes are one short lock
/// per served request (or per batch).
type LoadBoard = Mutex<BTreeMap<String, (u64, u64)>>;

/// One shard's shared job queue. Workers pop from the front; the router
/// pushes to the back; thieves inspect it and may remove a tail run (and
/// front-insert a handoff) under the same lock.
struct ShardQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<WorkItem>,
    closed: bool,
}

impl Default for ShardQueue {
    fn default() -> Self {
        Self { state: Mutex::new(QueueState::default()), cv: Condvar::new() }
    }
}

/// Which cross-shard request a broadcast ticket is merging.
#[derive(Debug, Clone, Copy)]
enum MergeKind {
    ListGraphs,
    Stats,
    Metrics,
    Slowlog,
}

/// A pending response from [`ShardedEngine::submit`].
///
/// Waiting is detached from submission so callers can keep many requests
/// in flight; [`Ticket::wait`] blocks until the owning shard (or, for
/// broadcasts, every shard) has answered. Tickets remain valid across
/// [`ShardedEngine::shutdown`]: workers drain their queues before exiting.
#[must_use = "a ticket holds a pending response; call wait() to collect it"]
pub struct Ticket {
    /// `None` once the response has been collected (the ticket is spent).
    inner: Option<TicketInner>,
    /// Bumped at drop when the ticket still held a pending response —
    /// the caller abandoned it without waiting. The work still executes
    /// (mutations apply, the WAL is written); only the answer is lost.
    abandoned: Option<Arc<AtomicU64>>,
}

enum TicketInner {
    /// One shard answers.
    Single(Receiver<Response>),
    /// Every shard answers; the partials merge into one response. `got`
    /// buffers the partials [`Ticket::try_wait`] has already collected.
    Merge { kind: MergeKind, parts: Vec<Receiver<Response>>, got: Vec<Option<Response>> },
}

impl Ticket {
    /// Block until the response is available.
    ///
    /// If a shard worker died (panicked) before answering, this returns a
    /// [`Response::Error`] instead of hanging or propagating the panic.
    pub fn wait(mut self) -> Response {
        match self.inner.take() {
            None => worker_lost(),
            Some(TicketInner::Single(rx)) => rx.recv().unwrap_or_else(|_| worker_lost()),
            Some(TicketInner::Merge { kind, parts, got }) => {
                let mut partials = Vec::with_capacity(parts.len());
                for (rx, buffered) in parts.iter().zip(got) {
                    match buffered {
                        Some(r) => partials.push(r),
                        None => match rx.recv() {
                            Ok(r) => partials.push(r),
                            Err(_) => return worker_lost(),
                        },
                    }
                }
                merge_partials(kind, partials)
            }
        }
    }

    /// Non-blocking poll: `Some(response)` once every owing shard has
    /// answered, `None` while any is still working. The open-loop stress
    /// harness uses this to stamp per-request completion times without
    /// head-of-line blocking on slower earlier tickets.
    ///
    /// Once this returns `Some`, the ticket is spent — further calls
    /// return `None`, and dropping it no longer counts as abandonment.
    pub fn try_wait(&mut self) -> Option<Response> {
        let response = Self::poll(self.inner.as_mut()?)?;
        self.inner = None;
        Some(response)
    }

    /// Non-blocking poll of a live ticket — the `try_wait` body, split
    /// out so spending the ticket (clearing `inner`) happens in exactly
    /// one place per public entry point.
    fn poll(inner: &mut TicketInner) -> Option<Response> {
        match inner {
            TicketInner::Single(rx) => match rx.try_recv() {
                Ok(r) => Some(r),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(worker_lost()),
            },
            TicketInner::Merge { kind, parts, got } => {
                for (rx, slot) in parts.iter().zip(got.iter_mut()) {
                    if slot.is_some() {
                        continue;
                    }
                    match rx.try_recv() {
                        Ok(r) => *slot = Some(r),
                        Err(TryRecvError::Empty) => return None,
                        Err(TryRecvError::Disconnected) => return Some(worker_lost()),
                    }
                }
                let partials = got.iter_mut().map(|s| s.take().expect("all arrived")).collect();
                Some(merge_partials(*kind, partials))
            }
        }
    }

    /// Bounded-blocking poll: park up to `timeout` for the next missing
    /// answer, then report like [`Ticket::try_wait`]. Collectors that would
    /// otherwise hot-poll `try_wait` in a spin loop should park here
    /// instead — the wait ends the moment the answer lands, so completion
    /// timestamps stay accurate without burning a core.
    ///
    /// `None` means the timeout elapsed (any partials that arrived are
    /// buffered); `Some` spends the ticket exactly as `try_wait` does.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Response> {
        let resolved = match self.inner.as_mut()? {
            TicketInner::Single(rx) => match rx.recv_timeout(timeout) {
                Ok(r) => Some(r),
                Err(RecvTimeoutError::Timeout) => return None,
                Err(RecvTimeoutError::Disconnected) => Some(worker_lost()),
            },
            TicketInner::Merge { parts, got, .. } => {
                // Park on the first missing partial only; the rest are
                // swept non-blockingly below (they usually land together).
                if let Some((rx, slot)) =
                    parts.iter().zip(got.iter_mut()).find(|(_, slot)| slot.is_none())
                {
                    match rx.recv_timeout(timeout) {
                        Ok(r) => *slot = Some(r),
                        Err(RecvTimeoutError::Timeout) => return None,
                        // Let try_wait below report the lost worker.
                        Err(RecvTimeoutError::Disconnected) => {}
                    }
                }
                None
            }
        };
        match resolved {
            Some(r) => {
                self.inner = None;
                Some(r)
            }
            None => self.try_wait(),
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.inner.is_some() {
            if let Some(counter) = &self.abandoned {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn worker_lost() -> Response {
    Response::Error { message: "shard worker disconnected before answering".into() }
}

/// Merge per-shard partial answers to a broadcast request into the answer
/// an unsharded engine would give.
fn merge_partials(kind: MergeKind, partials: Vec<Response>) -> Response {
    match kind {
        MergeKind::ListGraphs => {
            let mut names = Vec::new();
            for p in partials {
                match p {
                    Response::Graphs { names: part } => names.extend(part),
                    other => return unexpected_partial(other),
                }
            }
            // Each shard's list is sorted; the global contract is one
            // sorted list. Dedup guards the durable-adoption edge: a
            // name must never be double-reported even if two shards
            // transiently track it.
            names.sort_unstable();
            names.dedup();
            Response::Graphs { names }
        }
        MergeKind::Stats => {
            let (mut graphs, mut queries, mut hits, mut misses, mut mutations) = (0, 0, 0, 0, 0);
            for p in partials {
                match p {
                    Response::EngineStats {
                        graphs: g,
                        queries: q,
                        cache_hits: h,
                        cache_misses: m,
                        mutations: mu,
                    } => {
                        graphs += g;
                        queries += q;
                        hits += h;
                        misses += m;
                        mutations += mu;
                    }
                    other => return unexpected_partial(other),
                }
            }
            Response::EngineStats {
                graphs,
                queries,
                cache_hits: hits,
                cache_misses: misses,
                mutations,
            }
        }
        MergeKind::Metrics => {
            // Each shard snapshots its registry (counters, gauges,
            // histograms) onto the wire; the merge is the same explicit
            // addition `EngineStats` uses, so the merged answer equals
            // what one engine serving the whole stream would report.
            let mut merged = Registry::new();
            for p in partials {
                match p {
                    Response::Metrics { snapshot } => match Registry::from_wire(&snapshot) {
                        Ok(part) => merged.merge(&part),
                        Err(e) => {
                            return Response::Error { message: format!("bad metrics partial: {e}") }
                        }
                    },
                    other => return unexpected_partial(other),
                }
            }
            Response::Metrics { snapshot: merged.to_wire() }
        }
        MergeKind::Slowlog => {
            // Worst-N across all shards: fold each shard's log and keep
            // the globally slowest spans under the largest capacity.
            let mut merged = SlowLog::new(0);
            for p in partials {
                match p {
                    Response::Slowlog { snapshot } => match SlowLog::from_wire(&snapshot) {
                        Ok(part) => merged.merge(&part),
                        Err(e) => {
                            return Response::Error { message: format!("bad slowlog partial: {e}") }
                        }
                    },
                    other => return unexpected_partial(other),
                }
            }
            Response::Slowlog { snapshot: merged.to_wire() }
        }
    }
}

fn unexpected_partial(got: Response) -> Response {
    Response::Error { message: format!("unexpected shard partial: {got}") }
}

/// Stable FNV-1a over the graph name — the *default* placement. Kept
/// platform- and run-independent so shard assignment (and therefore the
/// per-shard occupancy a harness reports) is reproducible.
fn name_hash(name: &str) -> u64 {
    cut_graph::hash::fnv1a(name.as_bytes())
}

/// The shard a name lands on before any rebalancing touches it.
fn default_shard(name: &str, shards: usize) -> usize {
    (name_hash(name) % shards as u64) as usize
}

/// What the adaptive placement layer has done so far — rebalance rounds,
/// migrations, and the current graph-to-shard assignment. The stress
/// harness prints this as the placement section of its report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementReport {
    /// Graph migrations enqueued (each one is a per-graph barrier).
    pub migrations: u64,
    /// Rebalance rounds run (window boundaries with rebalancing on).
    pub rebalances: u64,
    /// Placement generation: bumped once per migration, so two reports
    /// with equal generations describe the same table.
    pub generation: u64,
    /// Current `graph -> shard` assignment, sorted by name. Names persist
    /// across drops (a re-created graph keeps its last home).
    pub assignments: Vec<(String, usize)>,
}

/// The sharded, multi-threaded front-end over [`Engine`].
///
/// See the [module docs](self) for the routing, placement, and ordering
/// contract. Use [`ShardedEngine::new`] for defaults,
/// [`ShardedEngine::with_config`] to set the per-shard [`EngineConfig`],
/// [`ShardedEngine::with_options`] for batching and adaptive placement.
pub struct ShardedEngine {
    queues: Arc<Vec<ShardQueue>>,
    workers: Vec<JoinHandle<EngineStats>>,
    /// Jobs enqueued per shard (broadcasts count on every shard).
    routed: Vec<u64>,
    placement: PlacementOptions,
    /// The placement table: where each graph currently lives. Entries are
    /// created on first routing (default = stable FNV shard) and moved
    /// only by [`rebalance`](Self::rebalance) migrations.
    table: BTreeMap<String, usize>,
    /// Per-graph window load in the static cost-weight currency, decayed
    /// each rebalance — the queue-pressure signal (drives hot-graph
    /// rotation, and satellite shedding when no better signal exists).
    loads: BTreeMap<String, u64>,
    /// Per-graph window *request counts*, decayed alongside `loads`
    /// (`latency_proxy` mode only): multiplied by each graph's measured
    /// mean serve time they give the compute-pressure signal shedding
    /// uses.
    counts: BTreeMap<String, u64>,
    /// Cumulative per-graph measured serve times, posted by workers
    /// (`latency_proxy` mode only).
    board: Arc<LoadBoard>,
    /// Mean observed nanoseconds per request of each graph, re-derived
    /// from the board at every rebalance. Captures per-graph cost (size,
    /// density, hit rate) the static table cannot see; the compute-
    /// pressure currency shedding uses under the latency proxy.
    graph_mean: BTreeMap<String, u64>,
    since_rebalance: usize,
    migrations: u64,
    rebalances: u64,
    generation: u64,
    /// The telemetry clock, shared with every worker: the router stamps
    /// each job's enqueue mark at submission.
    clock: Arc<dyn Clock>,
    /// Tickets dropped while still holding a pending response.
    abandoned: Arc<AtomicU64>,
}

impl ShardedEngine {
    /// Spawn `shards` worker threads with the default [`EngineConfig`].
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, EngineConfig::default())
    }

    /// Spawn `shards` worker threads, each owning an `Engine` built from
    /// `cfg`.
    ///
    /// # Panics
    /// Panics if `shards` is zero, or if the OS refuses to spawn a worker
    /// thread (callers taking `shards` from user input should bound it —
    /// the stress harness caps at 1024).
    pub fn with_config(shards: usize, cfg: EngineConfig) -> Self {
        Self::with_options(shards, ShardOptions { cfg, ..ShardOptions::default() })
    }

    /// Spawn `shards` worker threads with batching, rebalancing, and
    /// stealing configured — see [`ShardOptions`] and
    /// [`PlacementOptions`].
    ///
    /// # Panics
    /// Panics if `shards` is zero, or if the OS refuses to spawn a worker
    /// thread (callers taking `shards` from user input should bound it —
    /// the stress harness caps at 1024).
    pub fn with_options(shards: usize, opts: ShardOptions) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        let mut opts = opts;
        // With the kernel on, every shard's engine shares one idle-worker
        // ledger: a worker parking with an empty queue becomes loanable
        // capacity for whichever shard is chewing a whale cut. (The plain
        // Engine keeps the disabled pool: nobody to borrow from.)
        if opts.cfg.kernel && shards > 1 && !opts.cfg.pool.is_enabled() {
            opts.cfg.pool = CutPool::enabled();
        }
        let queues: Arc<Vec<ShardQueue>> =
            Arc::new((0..shards).map(|_| ShardQueue::default()).collect());
        let placement = opts.placement;
        let board: Arc<LoadBoard> = Arc::new(Mutex::new(BTreeMap::new()));
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut engine = Engine::with_config(opts.cfg.clone());
            engine.set_clock(Arc::clone(&opts.clock));
            if let Some(store) = &opts.store {
                engine.attach_store(Arc::clone(store));
                // Adopt this shard's slice of the durable graphs — by
                // the stable FNV default placement, so recovery is
                // portable across shard counts and needs no record of
                // the previous run's placement table. Adopted graphs
                // stay on disk until first touched.
                for name in store.names() {
                    if default_shard(&name, shards) == shard {
                        engine.adopt_stored(&name);
                    }
                }
            }
            let worker = Worker {
                id: shard,
                queues: Arc::clone(&queues),
                engine,
                // Observed serve times only matter where a rebalancer
                // will read them; otherwise skip the per-request lock.
                observe: placement.rebalance && placement.latency_proxy,
                board: Arc::clone(&board),
                registry: Registry::new(),
                slowlog: SlowLog::new(opts.slowlog_cap),
                opts: opts.clone(),
                lent: BTreeMap::new(),
                pending: None,
            };
            let handle = std::thread::Builder::new()
                .name(format!("cut-shard-{shard}"))
                .spawn(move || worker.run())
                .expect("spawn shard worker");
            workers.push(handle);
        }
        let clock = Arc::clone(&opts.clock);
        Self {
            queues,
            workers,
            routed: vec![0; shards],
            placement,
            table: BTreeMap::new(),
            loads: BTreeMap::new(),
            counts: BTreeMap::new(),
            board,
            graph_mean: BTreeMap::new(),
            since_rebalance: 0,
            migrations: 0,
            rebalances: 0,
            generation: 0,
            clock,
            abandoned: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The shard that currently owns graph `name`. Without rebalancing
    /// this is the stable FNV default and never changes; with rebalancing
    /// it reflects the placement table as of the last submission.
    pub fn shard_of(&self, name: &str) -> usize {
        self.table.get(name).copied().unwrap_or_else(|| default_shard(name, self.queues.len()))
    }

    /// Jobs enqueued per shard so far (broadcast requests count once on
    /// every shard; internal migration markers are not counted). The
    /// stress harness reads this for occupancy stats.
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// What the placement layer has done: rebalances, migrations, and the
    /// current graph-to-shard table. See the [`PlacementOptions`] example
    /// for usage.
    pub fn placement_report(&self) -> PlacementReport {
        PlacementReport {
            migrations: self.migrations,
            rebalances: self.rebalances,
            generation: self.generation,
            assignments: self.table.iter().map(|(name, &shard)| (name.clone(), shard)).collect(),
        }
    }

    /// Enqueue one request and return a [`Ticket`] for its response.
    ///
    /// Requests that name a graph go to that graph's current shard (per
    /// the placement table); `ListGraphs` and `Stats` are broadcast to
    /// every shard and merged at [`Ticket::wait`]. Submission order *is*
    /// per-graph execution order. With rebalancing on, every `window`
    /// submissions the router may also enqueue migration barriers here —
    /// they are invisible to responses.
    pub fn submit(&mut self, request: Request) -> Ticket {
        // Exhaustive: a new Request variant must declare here whether it
        // routes by graph name or broadcasts (and how its partials merge).
        let ticket = match &request {
            Request::Create { name, .. }
            | Request::Drop { name }
            | Request::Mutate { name, .. }
            | Request::Query { name, .. } => {
                let shard = self.place(name);
                if self.placement.rebalance {
                    if matches!(request, Request::Drop { .. }) {
                        // Stop accounting a graph the stream is dropping:
                        // migrating a tombstone would spend a barrier (and
                        // a move budget slot) on nothing. The board entry
                        // goes too, so per-graph state stays bounded by
                        // live graphs and a re-created name starts its
                        // serve-time history fresh instead of inheriting
                        // a dead namesake's mean. (A straggler job timed
                        // after this purge recreates a small, fresh
                        // entry — harmless.)
                        self.loads.remove(name);
                        self.counts.remove(name);
                        self.graph_mean.remove(name);
                        if self.placement.latency_proxy {
                            self.board.lock().expect("load board poisoned").remove(name);
                        }
                    } else {
                        // Queue-pressure accounting, charged at submit
                        // time so it leads the queue, not trails it.
                        *self.loads.entry(name.clone()).or_insert(0) += request.cost_weight();
                        if self.placement.latency_proxy {
                            // Raw request counts: multiplied by measured
                            // mean serve times at the next rebalance, they
                            // estimate each graph's *compute* pressure.
                            *self.counts.entry(name.clone()).or_insert(0) += 1;
                        }
                    }
                }
                let (reply, rx) = unbounded();
                self.routed[shard] += 1;
                let enqueue = self.clock.now();
                self.push(shard, WorkItem::Exec(Job { request, reply, enqueue }));
                self.ticket(TicketInner::Single(rx))
            }
            Request::ListGraphs | Request::Stats | Request::Metrics | Request::Slowlog => {
                let kind = match request {
                    Request::ListGraphs => MergeKind::ListGraphs,
                    Request::Metrics => MergeKind::Metrics,
                    Request::Slowlog => MergeKind::Slowlog,
                    _ => MergeKind::Stats,
                };
                let mut parts = Vec::with_capacity(self.queues.len());
                let enqueue = self.clock.now();
                for shard in 0..self.queues.len() {
                    let (reply, rx) = unbounded();
                    self.routed[shard] += 1;
                    self.push(
                        shard,
                        WorkItem::Exec(Job { request: request.clone(), reply, enqueue }),
                    );
                    parts.push(rx);
                }
                let got = (0..parts.len()).map(|_| None).collect();
                self.ticket(TicketInner::Merge { kind, parts, got })
            }
        };
        if self.placement.rebalance {
            self.since_rebalance += 1;
            if self.since_rebalance >= self.placement.window.max(1) {
                self.since_rebalance = 0;
                self.rebalance();
            }
        }
        ticket
    }

    /// Wrap a pending response with the abandoned-ticket accounting.
    fn ticket(&self, inner: TicketInner) -> Ticket {
        Ticket { inner: Some(inner), abandoned: Some(Arc::clone(&self.abandoned)) }
    }

    /// Tickets dropped while still holding a pending response — callers
    /// that fired a request and never waited. The work itself is not
    /// lost (mutations apply, the WAL is written before the reply is
    /// released); only the answer went uncollected.
    pub fn abandoned_tickets(&self) -> u64 {
        self.abandoned.load(Ordering::Relaxed)
    }

    /// Submit one request and block for its response — a drop-in for
    /// [`Engine::execute`] (correct, but serialized; use [`submit`] to
    /// overlap work across shards).
    ///
    /// [`submit`]: ShardedEngine::submit
    pub fn execute(&mut self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Close the job queues and join every worker, returning each shard's
    /// final [`EngineStats`] (index = shard id).
    ///
    /// Graceful: workers drain every job already queued — migration
    /// markers and steal loans included — before exiting, so tickets
    /// obtained before `shutdown` still resolve with real answers.
    ///
    /// # Panics
    /// Propagates a shard worker's panic rather than silently reporting
    /// zeroed stats for the dead shard. (In-flight tickets against a dead
    /// shard resolve to [`Response::Error`], not a hang — see
    /// [`Ticket::wait`].)
    pub fn shutdown(mut self) -> Vec<EngineStats> {
        self.close_queues();
        self.workers
            .drain(..)
            .enumerate()
            .map(|(shard, h)| h.join().unwrap_or_else(|_| panic!("shard worker {shard} panicked")))
            .collect()
    }

    fn close_queues(&self) {
        for q in self.queues.iter() {
            q.state.lock().expect("queue lock poisoned").closed = true;
            q.cv.notify_all();
        }
    }

    fn push(&self, shard: usize, item: WorkItem) {
        let q = &self.queues[shard];
        q.state.lock().expect("queue lock poisoned").items.push_back(item);
        q.cv.notify_all();
    }

    /// Current shard of `name`, creating the table entry (at the stable
    /// FNV default) on first sight.
    fn place(&mut self, name: &str) -> usize {
        if let Some(&shard) = self.table.get(name) {
            return shard;
        }
        let shard = default_shard(name, self.queues.len());
        self.table.insert(name.to_string(), shard);
        shard
    }

    /// One rebalance round. Phase 1 rotates a graph hotter than one
    /// shard's fair share to the least-loaded other shard — no placement
    /// can shrink such a graph's instantaneous share, but rotating it
    /// spreads its *run-long* routed share across shards (stealing
    /// relieves the instantaneous queue). Phase 2 greedily moves the
    /// heaviest helpful satellite graphs off the hottest shard onto the
    /// coldest while that strictly lowers the pair's max — in the static
    /// cost-weight currency, or, under [`PlacementOptions::latency_proxy`],
    /// in **measured compute pressure** (window request count × the
    /// graph's mean observed serve time), which sees expensive graphs the
    /// static weights misjudge. Loads then decay (halve) so the
    /// accounting tracks recent traffic.
    ///
    /// Without the latency proxy this is fully deterministic: ties break
    /// by shard index / name order, so a given request stream always
    /// produces the same migration schedule. With it, the *schedule*
    /// depends on measured times — responses never do.
    fn rebalance(&mut self) {
        let shards = self.queues.len();
        if shards < 2 {
            return;
        }
        self.rebalances += 1;
        let mut shard_load = vec![0u64; shards];
        for (name, &load) in &self.loads {
            if let Some(&s) = self.table.get(name) {
                shard_load[s] += load;
            }
        }
        let total: u64 = shard_load.iter().sum();
        let mut moves: Vec<(String, usize, usize)> = Vec::new();

        if total > 0 && self.placement.max_moves > 0 {
            // Phase 1: spread a graph no single shard should keep. The
            // rotation spends from the same move budget as phase 2, so
            // `max_moves: 0` really does mean zero migrations. Always
            // judged in the queue-pressure (cost-weight) currency: the
            // point of rotation is spreading *routed traffic*, and cheap
            // requests still occupy queue slots.
            if let Some((name, load)) = hottest_graph(&self.loads) {
                if load * shards as u64 > total {
                    let cur = self.table[&name];
                    // Least-loaded target, scanned in rotation order from
                    // cur+1 so even ties still round-robin the hot graph.
                    let mut target = cur;
                    let mut best = u64::MAX;
                    for offset in 1..shards {
                        let s = (cur + offset) % shards;
                        if shard_load[s] < best {
                            best = shard_load[s];
                            target = s;
                        }
                    }
                    if target != cur {
                        shard_load[cur] -= load;
                        shard_load[target] += load;
                        moves.push((name, cur, target));
                    }
                }
            }

            // Phase 1b (latency proxy only): also rotate a graph whose
            // *measured compute* exceeds one shard's fair share of busy
            // time — a shard can be swamped in actual serve time (one
            // expensive graph, cold caches, lopsided sizes) while its
            // request counts look fine; the static currency cannot see
            // that, the workers' measurements can. Rotation, not
            // shedding, because a graph too hot for any shard must be
            // *spread*, and because this leaves the count-balancing
            // machinery below untouched.
            if self.placement.latency_proxy && moves.len() < self.placement.max_moves {
                let (tloads, shard_time) = self.compute_pressure(&moves, shards);
                let total_time: u64 = shard_time.iter().sum();
                if let Some((name, tload)) = hottest_graph(&tloads) {
                    let already_moved = moves.iter().any(|(moved, _, _)| *moved == name);
                    if !already_moved && total_time > 0 && tload * shards as u64 > total_time {
                        let cur = self.table[&name];
                        let mut target = cur;
                        let mut best = u64::MAX;
                        for offset in 1..shards {
                            let s = (cur + offset) % shards;
                            if shard_time[s] < best {
                                best = shard_time[s];
                                target = s;
                            }
                        }
                        if target != cur {
                            // Keep the count currency's books consistent
                            // for the shedding pass below.
                            let cost = self.loads.get(&name).copied().unwrap_or(0);
                            shard_load[cur] -= cost.min(shard_load[cur]);
                            shard_load[target] += cost;
                            moves.push((name, cur, target));
                        }
                    }
                }
            }

            // Phase 2: shed satellites from the hottest shard, in the
            // queue-pressure (cost-weight) currency — identical with or
            // without the latency proxy, so measured feedback never costs
            // the count balance the static accounting already achieves.
            shed_satellites(
                &self.placement,
                &self.table,
                &self.loads,
                &mut shard_load,
                &mut moves,
                self.placement.max_moves,
            );
        }

        for (name, from, to) in moves {
            self.migrate(name, from, to);
        }
        // Decay, dropping entries that reach zero so the accounting stays
        // proportional to recently-active graphs, not all names ever seen.
        let decay = |map: &mut BTreeMap<String, u64>| {
            map.retain(|_, load| {
                *load /= 2;
                *load > 0
            })
        };
        decay(&mut self.loads);
        decay(&mut self.counts);
    }

    /// The compute-pressure view for this window: per graph, its
    /// estimated busy time — window request count × mean observed
    /// nanoseconds per request, falling back to the static guess at ~1µs
    /// per cost-weight unit for graphs the workers have not measured
    /// yet — and the per-shard sums with the moves already decided this
    /// round applied. Refreshes `graph_mean` from the workers' board
    /// first.
    fn compute_pressure(
        &mut self,
        moves: &[(String, usize, usize)],
        shards: usize,
    ) -> (BTreeMap<String, u64>, Vec<u64>) {
        for (name, (nanos, count)) in self.board.lock().expect("load board poisoned").iter() {
            // Only graphs the router is still accounting (dropped names
            // leave `loads` at the Drop): a straggler measurement must
            // not resurrect a dead graph's mean.
            if *count > 0 && self.loads.contains_key(name) {
                self.graph_mean.insert(name.clone(), (nanos / count).max(1));
            }
        }
        let mut tloads = BTreeMap::new();
        let mut shard_time = vec![0u64; shards];
        for (name, &count) in &self.counts {
            if count == 0 {
                continue;
            }
            let mean = self.graph_mean.get(name).copied().unwrap_or_else(|| {
                // Unmeasured graph: the static guess, scaled to
                // nanosecond-ish units (one cost-weight unit ≈ 1µs).
                self.loads.get(name).copied().unwrap_or(count) * 1_000 / count
            });
            let load = count * mean.max(1);
            let Some(&home) = self.table.get(name) else { continue };
            let shard = moves
                .iter()
                .find_map(|(moved, _, to)| (moved == name).then_some(*to))
                .unwrap_or(home);
            shard_time[shard] += load;
            tloads.insert(name.clone(), load);
        }
        (tloads, shard_time)
    }

    /// Enqueue one migration: the barrier pair (out marker on the old
    /// shard, in marker on the new) plus the table flip, all at this
    /// single point in the submission stream — which is what makes the
    /// move invisible to per-graph ordering and to broadcasts.
    fn migrate(&mut self, name: String, from: usize, to: usize) {
        debug_assert_ne!(from, to, "migration must change shards");
        let (tx, rx) = unbounded();
        self.push(from, WorkItem::MigrateOut { name: name.clone(), to: tx });
        self.push(to, WorkItem::MigrateIn { name: name.clone(), from: rx });
        self.table.insert(name, to);
        self.generation += 1;
        self.migrations += 1;
    }
}

/// Greedily move the heaviest helpful satellite graphs off the hottest
/// shard onto the coldest while that strictly lowers the pair's max —
/// the currency (cost weights or measured compute pressure) is whatever
/// `loads`/`shard_load` were built in. Spends from the shared `moves`
/// vector up to `budget` (≤ [`PlacementOptions::max_moves`]); graphs
/// already moved this round (e.g. by rotation) are skipped, and the
/// hot/cold membership check uses the pre-round `table`.
fn shed_satellites(
    placement: &PlacementOptions,
    table: &BTreeMap<String, usize>,
    loads: &BTreeMap<String, u64>,
    shard_load: &mut [u64],
    moves: &mut Vec<(String, usize, usize)>,
    budget: usize,
) {
    let shards = shard_load.len();
    let total: u64 = shard_load.iter().sum();
    while moves.len() < budget.min(placement.max_moves) {
        let (mut hot, mut cold) = (0usize, 0usize);
        for s in 1..shards {
            if shard_load[s] > shard_load[hot] {
                hot = s;
            }
            if shard_load[s] < shard_load[cold] {
                cold = s;
            }
        }
        let mean = total as f64 / shards as f64;
        if hot == cold || shard_load[hot] as f64 <= placement.imbalance.max(1.0) * mean {
            break;
        }
        let mut best: Option<(String, u64)> = None;
        for (name, &load) in loads {
            if load == 0
                || table.get(name) != Some(&hot)
                || moves.iter().any(|(moved, _, _)| moved == name)
            {
                continue;
            }
            // Only moves that strictly lower the pair's max load.
            if shard_load[cold] + load < shard_load[hot]
                && best.as_ref().is_none_or(|(_, b)| load > *b)
            {
                best = Some((name.clone(), load));
            }
        }
        let Some((name, load)) = best else { break };
        shard_load[hot] -= load;
        shard_load[cold] += load;
        moves.push((name, hot, cold));
    }
}

/// The graph with the largest window load (first in name order on ties).
fn hottest_graph(loads: &BTreeMap<String, u64>) -> Option<(String, u64)> {
    let mut best: Option<(&String, u64)> = None;
    for (name, &load) in loads {
        if load > 0 && best.is_none_or(|(_, b)| load > b) {
            best = Some((name, load));
        }
    }
    best.map(|(name, load)| (name.clone(), load))
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // `shutdown` joined these already; a plain drop also closes and
        // joins so no worker outlives the engine.
        self.close_queues();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// An outstanding steal: the thief holds the stolen jobs and waits (by
/// polling, never blocking its own queue) for the victim to lend the
/// graph's entry.
struct PendingSteal {
    name: String,
    loan: Receiver<LoanPkg>,
    ret: Sender<ReturnPkg>,
    jobs: Vec<Job>,
}

/// One shard worker: drains its queue FIFO into a private engine, lends
/// entries to thieves, executes migrations, and — when idle — steals tail
/// runs from overloaded siblings. Reports final stats to `shutdown`.
struct Worker {
    id: usize,
    queues: Arc<Vec<ShardQueue>>,
    engine: Engine,
    /// Post measured per-graph serve times to the board
    /// (`rebalance && latency_proxy`).
    observe: bool,
    board: Arc<LoadBoard>,
    /// Shard-local telemetry: queue-wait and serve-time histograms (one
    /// observation per named request served here), merged across shards
    /// at a `stats metrics` barrier. No locks — each worker owns its own.
    registry: Registry,
    /// Worst-N spans served by this shard, merged at `stats slowlog`.
    slowlog: SlowLog,
    opts: ShardOptions,
    /// Graphs currently lent to thieves, with the channel each loan comes
    /// home on. Any job touching one of these (and every broadcast) is a
    /// reclaim barrier.
    lent: BTreeMap<String, Receiver<ReturnPkg>>,
    /// At most one outstanding steal per worker; polled at every blocking
    /// point so loans always resolve (no wait cycle can include a thief).
    pending: Option<PendingSteal>,
}

impl Worker {
    fn run(mut self) -> EngineStats {
        while let Some(item) = self.next_item() {
            self.process(item);
        }
        // Closed and drained: every loan must come home (merging its
        // stats delta) before this shard's numbers are final.
        self.reclaim_all();
        self.engine.stats()
    }

    /// Next work item, or `None` at graceful exit (queue closed, drained,
    /// and no steal outstanding). While idle: resolve an arrived loan,
    /// else try to steal, else park.
    fn next_item(&mut self) -> Option<WorkItem> {
        loop {
            {
                let mut st = self.queues[self.id].state.lock().expect("queue lock poisoned");
                if let Some(item) = st.items.pop_front() {
                    return Some(item);
                }
                if st.closed && self.pending.is_none() {
                    return None;
                }
            }
            if self.poll_pending() {
                continue;
            }
            if self.opts.placement.steal && self.pending.is_none() && self.try_steal() {
                continue;
            }
            let st = self.queues[self.id].state.lock().expect("queue lock poisoned");
            if !st.items.is_empty() {
                continue;
            }
            if st.closed {
                // Closed with a loan still outstanding: spin gently until
                // the victim lends (handoffs drain before workers exit).
                drop(st);
                std::thread::sleep(POLL);
                continue;
            }
            // A parked worker's core is loanable: register it with the
            // kernel pool for the duration of the wait (no-op when the
            // pool is disabled).
            self.opts.cfg.pool.enter_idle();
            if self.opts.placement.steal || self.pending.is_some() {
                // Bounded park: steal opportunities and pending loans need
                // periodic re-polling even while this queue sleeps.
                drop(self.queues[self.id].cv.wait_timeout(st, PARK).expect("queue lock poisoned"));
            } else {
                drop(self.queues[self.id].cv.wait(st).expect("queue lock poisoned"));
            }
            self.opts.cfg.pool.leave_idle();
        }
    }

    fn process(&mut self, item: WorkItem) {
        match item {
            WorkItem::Exec(job) => self.exec(job),
            WorkItem::MigrateOut { name, to } => {
                if self.lent.contains_key(&name) {
                    self.reclaim(&name);
                }
                let export = self.engine.export_graph(&name);
                // A cold (spilled) graph migrates without touching disk:
                // only the ownership of the durable copy moves.
                let spilled = export.is_none() && self.engine.is_spilled(&name);
                if spilled {
                    self.engine.forget_spilled(&name);
                }
                // A failed send means the target worker died; its panic
                // surfaces at join.
                let _ = to.send(MigrationPkg { export, spilled });
            }
            WorkItem::MigrateIn { name, from } => {
                let pkg = self.wait_on(&from, "migration");
                if let Some(export) = pkg.export {
                    let installed = self.engine.import_graph(export).is_ok();
                    debug_assert!(installed, "graph '{name}' collided at migrate-in");
                } else if pkg.spilled {
                    self.engine.adopt_stored(&name);
                }
            }
            WorkItem::StealHandoff { name, loan, ret } => {
                if self.lent.contains_key(&name) {
                    // A second thief wants a graph still out with the
                    // first: serialize the loans (earlier run first).
                    self.reclaim(&name);
                }
                // A spilled graph can be stolen from: fault it in first
                // (the loaned entry must be real memory).
                self.engine.ensure_resident(&name);
                let entry = self.engine.take_entry(&name);
                let _ = loan.send(LoanPkg { entry });
                self.lent.insert(name, ret);
            }
        }
    }

    fn exec(&mut self, job: Job) {
        // A job touching a lent-out graph — or any broadcast — is a
        // reclaim barrier: the loan (its responses are already promised to
        // the thief's tickets, plus its stats delta) must come home first.
        // This is what keeps merged broadcast answers exactly equal to the
        // unsharded engine's.
        match &job.request {
            Request::ListGraphs | Request::Stats | Request::Metrics | Request::Slowlog => {
                self.reclaim_all()
            }
            Request::Create { name, .. }
            | Request::Drop { name }
            | Request::Mutate { name, .. }
            | Request::Query { name, .. } => {
                if self.lent.contains_key(name.as_str()) {
                    let name = name.clone();
                    self.reclaim(&name);
                }
            }
        }
        // Introspection broadcasts answer from the worker itself, not the
        // engine: the snapshot covers the shard-local span histograms plus
        // the engine's counter families, and (so a store shared by every
        // shard is counted once, not `shards` times) worker 0 alone folds
        // in the `store_` families. They record no spans of their own,
        // which keeps each span histogram's total count equal to the
        // named ops served.
        match &job.request {
            Request::Metrics => {
                let _ = job
                    .reply
                    .send(Response::Metrics { snapshot: self.metrics_snapshot().to_wire() });
                return;
            }
            Request::Slowlog => {
                let _ = job.reply.send(Response::Slowlog { snapshot: self.slowlog.to_wire() });
                return;
            }
            _ => {}
        }
        if self.opts.batch {
            if let Request::Query { name, .. } = &job.request {
                let name = name.clone();
                self.exec_batched(name, job);
                return;
            }
        }
        // Broadcasts are cheap and not charged by the router's load
        // accounting, so only named requests feed the measurements — and
        // only named requests get lifecycle spans.
        let target = match &job.request {
            Request::Create { name, .. }
            | Request::Drop { name }
            | Request::Mutate { name, .. }
            | Request::Query { name, .. } => Some(name.clone()),
            Request::ListGraphs | Request::Stats | Request::Metrics | Request::Slowlog => None,
        };
        let Job { request, reply, enqueue } = job;
        let kind = request.kind();
        let start = std::time::Instant::now();
        let dequeue = self.opts.clock.now();
        let response = self.engine.execute(request);
        let end = self.opts.clock.now();
        let nanos = start.elapsed().as_nanos() as u64;
        self.engine.stats_mut().serve_nanos += nanos;
        if let Some(name) = &target {
            if self.observe {
                self.post_serve_time(name, 1, nanos);
            }
        }
        if let Some(name) = target {
            let delta = self.engine.obs_mut().take_delta();
            let mut flags = 0;
            if delta.fault_ins > 0 {
                flags |= span_flags::FAULT_IN;
            }
            if delta.spills > 0 {
                flags |= span_flags::SPILL;
            }
            self.observe_span(Span {
                kind: kind.to_string(),
                target: name,
                shard: self.id as u64,
                enqueue,
                dequeue,
                end,
                index_nanos: delta.index_nanos,
                store_nanos: delta.store_nanos,
                flags,
            });
        }
        // A dropped ticket is fine — compute anyway (mutations must still
        // apply), discard the undeliverable answer.
        let _ = reply.send(response);
    }

    /// One span into the shard-local telemetry: queue-wait and serve-time
    /// histogram observations plus a slow-log admission attempt.
    fn observe_span(&mut self, span: Span) {
        self.registry.observe("request_queue_wait_nanos", span.queue_nanos());
        self.registry.observe("request_serve_nanos", span.serve_nanos());
        self.slowlog.record(span);
    }

    /// This shard's `stats metrics` partial: span histograms merged with
    /// the engine's counter families (and, on worker 0 only, the shared
    /// store's `store_` families).
    fn metrics_snapshot(&self) -> Registry {
        let mut reg = self.registry.clone();
        reg.merge(&self.engine.metrics_registry());
        if self.id == 0 {
            reg.merge(&self.engine.store_metrics());
        }
        reg
    }

    /// Post `nanos` of measured serve time covering `requests` requests
    /// for graph `name` to the feedback board (multi-request postings
    /// come from batches and stolen runs, which are timed as a whole).
    fn post_serve_time(&self, name: &str, requests: u64, nanos: u64) {
        if requests == 0 {
            return;
        }
        let mut board = self.board.lock().expect("load board poisoned");
        let (graph_nanos, graph_count) = board.entry(name.to_string()).or_insert((0, 0));
        *graph_nanos += nanos;
        *graph_count += requests;
    }

    /// Batch mode: extend `job` with the maximal run of consecutive
    /// queries at the queue front (up to `max_batch` members in total),
    /// coalescing **across graph boundaries**: the run splits into
    /// per-graph groups — a new group opens whenever the graph name
    /// changes — and each group executes through one
    /// [`Engine::execute_read_batch`] call, groups in queue order and
    /// replies in queue order. Any non-query item is the barrier that
    /// ends the run, as is a query against a graph currently lent to a
    /// thief (that job must take the normal [`Worker::exec`] path so its
    /// reclaim barrier fires). Queue order is preserved exactly, so
    /// batching never changes a response; reads against *different*
    /// graphs touch disjoint entries and caches, so crossing the graph
    /// boundary is as invisible as staying inside it. A run spanning two
    /// or more graphs counts one `cross_batches`.
    fn exec_batched(&mut self, name: String, job: Job) {
        let Job { request, reply, enqueue } = job;
        let Request::Query { query, .. } = request else {
            unreachable!("exec_batched is only called for queries");
        };
        struct Group {
            name: String,
            queries: Vec<crate::request::Query>,
            replies: Vec<Sender<Response>>,
            enqueues: Vec<u64>,
        }
        let mut groups = vec![Group {
            name,
            queries: vec![query],
            replies: vec![reply],
            enqueues: vec![enqueue],
        }];
        let mut total = 1;
        {
            let mut st = self.queues[self.id].state.lock().expect("queue lock poisoned");
            while total < self.opts.max_batch {
                let joinable = matches!(
                    st.items.front(),
                    Some(WorkItem::Exec(Job { request: Request::Query { name: next, .. }, .. }))
                        if !self.lent.contains_key(next.as_str())
                );
                if !joinable {
                    break;
                }
                let Some(WorkItem::Exec(Job {
                    request: Request::Query { name: next, query },
                    reply,
                    enqueue,
                })) = st.items.pop_front()
                else {
                    unreachable!("front matched an unlent query");
                };
                if groups.last().expect("run is seeded").name != next {
                    groups.push(Group {
                        name: next,
                        queries: Vec::new(),
                        replies: Vec::new(),
                        enqueues: Vec::new(),
                    });
                }
                let group = groups.last_mut().expect("run is seeded");
                group.queries.push(query);
                group.replies.push(reply);
                group.enqueues.push(enqueue);
                total += 1;
            }
        }
        if groups.len() > 1 {
            self.engine.stats_mut().cross_batches += 1;
        }
        for Group { name, queries, replies, enqueues } in groups {
            let batch_len = queries.len() as u64;
            let start = std::time::Instant::now();
            let dequeue = self.opts.clock.now();
            let responses = self.engine.execute_read_batch(&name, queries);
            let end = self.opts.clock.now();
            let nanos = start.elapsed().as_nanos() as u64;
            self.engine.stats_mut().serve_nanos += nanos;
            if self.observe {
                self.post_serve_time(&name, batch_len, nanos);
            }
            // One span per query so the histogram count stays equal to ops
            // served: each member's serve share is its group's clock window
            // split evenly, and the whole group's index/store attribution
            // rides on its first member's span.
            let delta = self.engine.obs_mut().take_delta();
            let share = end.saturating_sub(dequeue) / batch_len;
            let mut flags = if batch_len > 1 { span_flags::BATCHED } else { 0 };
            if delta.fault_ins > 0 {
                flags |= span_flags::FAULT_IN;
            }
            if delta.spills > 0 {
                flags |= span_flags::SPILL;
            }
            for (i, &enq) in enqueues.iter().enumerate() {
                self.observe_span(Span {
                    kind: "query".to_string(),
                    target: name.clone(),
                    shard: self.id as u64,
                    enqueue: enq,
                    dequeue,
                    end: dequeue + share,
                    index_nanos: if i == 0 { delta.index_nanos } else { 0 },
                    store_nanos: if i == 0 { delta.store_nanos } else { 0 },
                    flags,
                });
            }
            for (reply, response) in replies.into_iter().zip(responses) {
                let _ = reply.send(response);
            }
        }
    }

    /// Wait for a package while continuing to service an outstanding steal
    /// loan — the polling that guarantees no blocking cycle can form
    /// between victims and thieves.
    fn wait_on<T>(&mut self, rx: &Receiver<T>, what: &str) -> T {
        loop {
            match rx.try_recv() {
                Ok(pkg) => return pkg,
                Err(TryRecvError::Disconnected) => {
                    panic!("shard worker {}: {what} channel lost (peer worker died)", self.id)
                }
                Err(TryRecvError::Empty) => {}
            }
            if !self.poll_pending() {
                std::thread::sleep(POLL);
            }
        }
    }

    /// Take a lent graph back: block (politely) for the thief's return,
    /// reinstall the entry, and merge the stolen run's counters into this
    /// shard's stats — stolen work is accounted where the graph lives.
    fn reclaim(&mut self, name: &str) {
        let Some(rx) = self.lent.remove(name) else { return };
        let pkg = self.wait_on(&rx, "steal return");
        if let Some(entry) = pkg.entry {
            self.engine.put_entry(name.to_string(), entry);
        }
        self.engine.stats_mut().merge(&pkg.delta);
    }

    fn reclaim_all(&mut self) {
        let names: Vec<String> = self.lent.keys().cloned().collect();
        for name in names {
            self.reclaim(&name);
        }
    }

    /// If the pending loan has arrived, serve the stolen run against the
    /// borrowed entry, reply to its tickets, and send the entry (plus the
    /// run's stats delta) home. Returns whether a loan was serviced.
    fn poll_pending(&mut self) -> bool {
        let Some(pending) = &self.pending else { return false };
        let pkg = match pending.loan.try_recv() {
            Ok(pkg) => pkg,
            Err(TryRecvError::Empty) => return false,
            Err(TryRecvError::Disconnected) => {
                panic!("shard worker {}: steal loan channel lost (victim died)", self.id)
            }
        };
        let PendingSteal { name, ret, jobs, .. } =
            self.pending.take().expect("pending checked above");
        match pkg.entry {
            Some(mut entry) => {
                let stolen = jobs.len() as u64;
                let mut delta = EngineStats::default();
                // Stolen runs serve outside any engine, so attribution
                // (index builds, store appends) collects in a thief-local
                // scratch and the spans land in the thief's telemetry —
                // busy time belongs where it burned, same as serve_nanos.
                let mut obs = ObsScratch::with_clock(Arc::clone(&self.opts.clock));
                let enqueues: Vec<u64> = jobs.iter().map(|j| j.enqueue).collect();
                let start = std::time::Instant::now();
                let dequeue = self.opts.clock.now();
                for job in jobs {
                    let Request::Query { query, .. } = job.request else {
                        unreachable!("steals only take query runs");
                    };
                    let response =
                        serve_query(&mut delta, &self.opts.cfg, &mut entry, query, &mut obs);
                    // The thief serves against the borrowed entry, so the
                    // thief also logs: during a loan nobody else appends
                    // to this graph's WAL, and the append must precede
                    // the response's release (log-then-ack).
                    if let Some(store) = &self.opts.store {
                        let request = Request::Query { name: name.clone(), query };
                        let t0 = obs.now();
                        store.log(&name, &request, &response);
                        obs.charge_store(t0);
                    }
                    let _ = job.reply.send(response);
                }
                let end = self.opts.clock.now();
                // Stolen work still measures: the board is global, not
                // per-shard, so it doesn't matter where the run executed.
                let nanos = start.elapsed().as_nanos() as u64;
                if self.observe {
                    self.post_serve_time(&name, stolen, nanos);
                }
                let obs_delta = obs.take_delta();
                let share = end.saturating_sub(dequeue) / stolen;
                for (i, &enq) in enqueues.iter().enumerate() {
                    self.observe_span(Span {
                        kind: "query".to_string(),
                        target: name.clone(),
                        shard: self.id as u64,
                        enqueue: enq,
                        dequeue,
                        end: dequeue + share,
                        index_nanos: if i == 0 { obs_delta.index_nanos } else { 0 },
                        store_nanos: if i == 0 { obs_delta.store_nanos } else { 0 },
                        flags: span_flags::STOLEN,
                    });
                }
                let stats = self.engine.stats_mut();
                // The delta's logical counters merge on the victim, but
                // busy time belongs to the worker that burned it: here.
                stats.serve_nanos += nanos;
                stats.steal_batches += 1;
                stats.steal_reads += stolen;
                let _ = ret.send(ReturnPkg { entry: Some(entry), delta });
            }
            None => {
                // The graph was gone by handoff time: answer exactly as
                // the engine would for an unknown name (and, like the
                // engine, bump no counters).
                for job in jobs {
                    let message = format!("no graph named '{name}'");
                    let _ = job.reply.send(Response::Error { message });
                }
                let _ = ret.send(ReturnPkg { entry: None, delta: EngineStats::default() });
            }
        }
        true
    }

    /// Attempt one steal: from the longest sibling queue, take the maximal
    /// tail run of same-graph queries — but only when the run is that
    /// graph's entire presence in the queue (per-graph order cannot be
    /// jumped) and no broadcast is pending there (a stolen run's counters
    /// merge at the victim's barriers; lifting reads over a queued `Stats`
    /// would merge them too early). Returns whether a steal is now
    /// pending.
    fn try_steal(&mut self) -> bool {
        debug_assert!(self.pending.is_none(), "one outstanding steal at a time");
        let min = self.opts.placement.steal_min.max(1);
        let mut victims: Vec<(usize, usize)> = Vec::new(); // (queue len, shard)
        for (shard, q) in self.queues.iter().enumerate() {
            if shard == self.id {
                continue;
            }
            let st = q.state.lock().expect("queue lock poisoned");
            if !st.closed && st.items.len() >= min {
                victims.push((st.items.len(), shard));
            }
        }
        victims.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        victims.into_iter().any(|(_, shard)| self.steal_from(shard))
    }

    fn steal_from(&mut self, victim: usize) -> bool {
        let q = &self.queues[victim];
        let mut st = q.state.lock().expect("queue lock poisoned");
        if st.closed {
            return false;
        }
        // The maximal same-graph query run at the tail.
        let mut run_len = 0usize;
        let mut graph: Option<&str> = None;
        for item in st.items.iter().rev() {
            match item {
                WorkItem::Exec(Job { request: Request::Query { name, .. }, .. }) => match graph {
                    None => {
                        graph = Some(name);
                        run_len = 1;
                    }
                    Some(g) if g == name => run_len += 1,
                    Some(_) => break,
                },
                _ => break,
            }
        }
        let Some(graph) = graph else { return false };
        if run_len < self.opts.placement.steal_min.max(1) {
            return false;
        }
        let graph = graph.to_string();
        // Disqualifiers in the rest of the queue: any other reference to
        // the graph (order safety), any broadcast (stats-merge safety).
        let rest = st.items.len() - run_len;
        for item in st.items.iter().take(rest) {
            match item {
                WorkItem::Exec(Job { request, .. }) => match request {
                    Request::ListGraphs | Request::Stats | Request::Metrics | Request::Slowlog => {
                        return false
                    }
                    Request::Create { name, .. }
                    | Request::Drop { name }
                    | Request::Mutate { name, .. }
                    | Request::Query { name, .. } => {
                        if *name == graph {
                            return false;
                        }
                    }
                },
                WorkItem::MigrateOut { name, .. }
                | WorkItem::MigrateIn { name, .. }
                | WorkItem::StealHandoff { name, .. } => {
                    if *name == graph {
                        return false;
                    }
                }
            }
        }
        // Take the run and leave a handoff at the queue *front*: the
        // victim lends the entry as its very next step (after whatever it
        // is currently executing — possibly the graph's last earlier job —
        // completes). Front insertion is order-safe because the queue
        // holds no other job for this graph.
        let jobs: Vec<Job> = st
            .items
            .drain(rest..)
            .map(|item| match item {
                WorkItem::Exec(job) => job,
                _ => unreachable!("the tail run holds only exec items"),
            })
            .collect();
        let (loan_tx, loan_rx) = unbounded();
        let (ret_tx, ret_rx) = unbounded();
        st.items.push_front(WorkItem::StealHandoff {
            name: graph.clone(),
            loan: loan_tx,
            ret: ret_rx,
        });
        drop(st);
        q.cv.notify_all();
        self.pending = Some(PendingSteal { name: graph, loan: loan_rx, ret: ret_tx, jobs });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{GraphSpec, Mutation, Query};

    fn create(engine: &mut ShardedEngine, name: &str, n: usize) {
        let r = engine.execute(Request::Create { name: name.into(), spec: GraphSpec::Cycle { n } });
        assert!(matches!(r, Response::Created { .. }), "create failed: {r}");
    }

    #[test]
    fn wait_timeout_parks_then_delivers_like_try_wait() {
        let mut e = ShardedEngine::new(3);
        create(&mut e, "ring", 12);
        // Single-shard ticket: park-polling must converge on the answer.
        let mut ticket =
            e.submit(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
        let response = loop {
            if let Some(r) = ticket.wait_timeout(Duration::from_millis(1)) {
                break r;
            }
        };
        assert!(matches!(response, Response::CutValue { weight: 2, .. }), "got {response}");
        // Broadcast (merge) ticket: partials buffer across timeouts.
        let mut ticket = e.submit(Request::ListGraphs);
        let response = loop {
            if let Some(r) = ticket.wait_timeout(Duration::from_millis(1)) {
                break r;
            }
        };
        assert!(
            matches!(&response, Response::Graphs { names } if names == &vec!["ring".to_string()]),
            "got {response}"
        );
        e.shutdown();
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let e = ShardedEngine::new(4);
        for name in ["g000", "g001", "alpha", "β-graph", ""] {
            let s = e.shard_of(name);
            assert!(s < 4);
            assert_eq!(s, e.shard_of(name), "routing must be deterministic");
        }
    }

    #[test]
    fn full_lifecycle_stays_on_one_shard() {
        let mut e = ShardedEngine::new(3);
        create(&mut e, "ring", 10);
        let shard = e.shard_of("ring");
        let r = e.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
        assert!(matches!(r, Response::CutValue { weight: 2, .. }), "got {r}");
        let r = e.execute(Request::Mutate {
            name: "ring".into(),
            op: Mutation::InsertEdge { u: 0, v: 5, w: 4 },
        });
        assert!(matches!(r, Response::Mutated { epoch: 1, .. }), "got {r}");
        let r = e.execute(Request::Drop { name: "ring".into() });
        assert!(matches!(r, Response::Dropped { .. }), "got {r}");
        // Everything above targeted one graph, so exactly one shard worked.
        let busy: Vec<usize> = (0..3).filter(|&s| e.routed()[s] > 0).collect();
        assert_eq!(busy, vec![shard]);
    }

    #[test]
    fn list_and_stats_merge_across_shards() {
        let mut e = ShardedEngine::new(4);
        for name in ["delta", "alpha", "charlie", "bravo"] {
            create(&mut e, name, 6);
        }
        assert_eq!(
            e.execute(Request::ListGraphs),
            Response::Graphs {
                names: vec!["alpha".into(), "bravo".into(), "charlie".into(), "delta".into()]
            }
        );
        for name in ["alpha", "bravo"] {
            e.execute(Request::Query { name: name.into(), query: Query::Connectivity });
            e.execute(Request::Query { name: name.into(), query: Query::Connectivity });
        }
        let r = e.execute(Request::Stats);
        assert_eq!(
            r,
            Response::EngineStats {
                graphs: 4,
                queries: 4,
                cache_hits: 2,
                cache_misses: 2,
                mutations: 0
            }
        );
    }

    #[test]
    fn unknown_graph_errors_match_the_unsharded_engine() {
        let mut sharded = ShardedEngine::new(4);
        let mut plain = Engine::new();
        let requests = [
            Request::Drop { name: "ghost".into() },
            Request::Mutate { name: "ghost".into(), op: Mutation::DeleteEdge { u: 0, v: 1 } },
            Request::Query { name: "ghost".into(), query: Query::ExactMinCut },
        ];
        for req in requests {
            assert_eq!(sharded.execute(req.clone()), plain.execute(req));
        }
    }

    #[test]
    fn shutdown_drains_in_flight_tickets() {
        let mut e = ShardedEngine::new(4);
        create(&mut e, "work", 32);
        let tickets: Vec<Ticket> = (0..64)
            .map(|i| {
                e.submit(Request::Query {
                    name: "work".into(),
                    query: Query::ApproxMinCut { seed: i },
                })
            })
            .collect();
        // Shut down with (potentially) all 64 still queued.
        let per_shard = e.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), Response::CutValue { .. }));
        }
        let total: u64 = per_shard.iter().map(|s| s.queries).sum();
        assert_eq!(total, 64, "every in-flight query must have been served");
    }

    #[test]
    fn dropped_tickets_still_apply_mutations() {
        let mut e = ShardedEngine::new(2);
        create(&mut e, "g", 8);
        for _ in 0..3 {
            // Fire-and-forget: drop the ticket immediately.
            let _ = e.submit(Request::Mutate {
                name: "g".into(),
                op: Mutation::InsertEdge { u: 0, v: 4, w: 1 },
            });
        }
        let r = e.execute(Request::Query { name: "g".into(), query: Query::Connectivity });
        assert!(matches!(r, Response::ConnectivityValue { .. }));
        let mutations: u64 = e.shutdown().iter().map(|s| s.mutations).sum();
        assert_eq!(mutations, 3, "fire-and-forget mutations must still land");
    }

    #[test]
    fn batched_workers_answer_identically() {
        // Pipeline a read-heavy stream with interleaved mutations through
        // a batching sharded engine; responses must match the plain
        // engine's element-wise (mutation = batch barrier).
        let mut requests = vec![
            Request::Create { name: "a".into(), spec: GraphSpec::Cycle { n: 10 } },
            Request::Create { name: "b".into(), spec: GraphSpec::Cycle { n: 12 } },
        ];
        for round in 0..4u64 {
            for i in 0..8u64 {
                requests.push(Request::Query {
                    name: if i % 3 == 0 { "b" } else { "a" }.into(),
                    query: Query::ApproxMinCut { seed: i % 2 },
                });
                requests.push(Request::Query { name: "a".into(), query: Query::Connectivity });
            }
            requests.push(Request::Mutate {
                name: "a".into(),
                op: Mutation::InsertEdge { u: 0, v: (round + 2) as u32, w: 1 + round },
            });
        }
        requests.push(Request::Stats);

        let mut plain = Engine::new();
        let expected: Vec<Response> = requests.iter().map(|r| plain.execute(r.clone())).collect();

        for shards in [1, 3] {
            let mut batched = ShardedEngine::with_options(
                shards,
                ShardOptions { batch: true, ..ShardOptions::default() },
            );
            let tickets: Vec<Ticket> = requests.iter().map(|r| batched.submit(r.clone())).collect();
            let got: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
            assert_eq!(got, expected, "batched responses diverged at shards={shards}");

            let mut total = EngineStats::default();
            for s in batched.shutdown() {
                total.merge(&s);
            }
            assert_eq!(total.queries, plain.stats().queries);
            assert_eq!(total.cache_hits, plain.stats().cache_hits);
            assert_eq!(total.mutations, plain.stats().mutations);
        }
    }

    #[test]
    fn batched_worker_forms_multi_read_batches() {
        // One shard, submissions queued while the worker grinds: runs of
        // same-graph reads must coalesce (batches < batched reads).
        let mut e =
            ShardedEngine::with_options(1, ShardOptions { batch: true, ..ShardOptions::default() });
        create(&mut e, "hot", 48);
        // An expensive head occupies the worker so the read burst queues
        // up behind it and gets drained as (large) batches.
        let head = e.submit(Request::Query { name: "hot".into(), query: Query::KCut { k: 4 } });
        let tickets: Vec<Ticket> = (0..200)
            .map(|i| {
                e.submit(Request::Query {
                    name: "hot".into(),
                    query: Query::StCutWeight { s: i % 48, t: (i + 7) % 48 },
                })
            })
            .collect();
        assert!(!matches!(head.wait(), Response::Error { .. }));
        for t in tickets {
            assert!(!matches!(t.wait(), Response::Error { .. }));
        }
        let stats = &e.shutdown()[0];
        assert_eq!(stats.batched_reads, 201, "every read went through the batch path");
        assert!(
            stats.batches < 201,
            "queued reads must coalesce into multi-read batches (got {} batches)",
            stats.batches
        );
        // Batching shares the snapshot, so the whole burst costs one build.
        assert_eq!(stats.index.csr_builds, 1);
    }

    #[test]
    fn batched_worker_coalesces_across_graphs() {
        // One shard, two graphs, reads strictly alternating: under
        // per-graph-only batching every run would have length 1; the
        // cross-graph coalescer must fold the queued burst into runs
        // spanning both graphs — while answering byte-identically to the
        // plain engine.
        let mut requests = vec![
            Request::Create { name: "a".into(), spec: GraphSpec::Cycle { n: 48 } },
            Request::Create { name: "b".into(), spec: GraphSpec::Cycle { n: 54 } },
            // An expensive head occupies the worker so the alternating
            // burst queues up behind it.
            Request::Query { name: "a".into(), query: Query::KCut { k: 4 } },
        ];
        for i in 0..120u32 {
            requests.push(Request::Query {
                // Runs of four per graph, alternating graphs: a graph
                // switch every fourth read.
                name: if (i / 4) % 2 == 0 { "a" } else { "b" }.into(),
                query: Query::StCutWeight { s: i % 48, t: (i + 5) % 48 },
            });
        }
        let mut plain = Engine::new();
        let expected: Vec<Response> = requests.iter().map(|r| plain.execute(r.clone())).collect();

        let mut e =
            ShardedEngine::with_options(1, ShardOptions { batch: true, ..ShardOptions::default() });
        let tickets: Vec<Ticket> = requests.iter().map(|r| e.submit(r.clone())).collect();
        let got: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(got, expected, "cross-graph batching changed a response");

        let stats = &e.shutdown()[0];
        assert_eq!(stats.batched_reads, 121, "every read went through the batch path");
        assert!(
            stats.cross_batches >= 1,
            "queued alternating-graph burst must form at least one cross-graph run"
        );
    }

    #[test]
    fn cross_graph_runs_stop_at_mutation_barriers() {
        // Mutations interleaved in the alternating stream are still
        // barriers: the stream must answer identically to the plain
        // engine at 1 and 4 shards, and the mutated graph's epoch must
        // observe every insert in submission order.
        let mut requests = vec![
            Request::Create { name: "a".into(), spec: GraphSpec::Cycle { n: 12 } },
            Request::Create { name: "b".into(), spec: GraphSpec::Cycle { n: 16 } },
        ];
        for round in 0..5u64 {
            for i in 0..6u32 {
                requests.push(Request::Query {
                    name: if i % 2 == 0 { "a" } else { "b" }.into(),
                    query: Query::Connectivity,
                });
            }
            requests.push(Request::Mutate {
                name: if round % 2 == 0 { "a" } else { "b" }.into(),
                op: Mutation::InsertEdge { u: 0, v: 3 + round as u32, w: 1 + round },
            });
            requests.push(Request::Query { name: "a".into(), query: Query::ExactMinCut });
            requests.push(Request::Query { name: "b".into(), query: Query::ExactMinCut });
        }
        let mut plain = Engine::new();
        let expected: Vec<Response> = requests.iter().map(|r| plain.execute(r.clone())).collect();
        for shards in [1, 4] {
            let mut e = ShardedEngine::with_options(
                shards,
                ShardOptions { batch: true, ..ShardOptions::default() },
            );
            let tickets: Vec<Ticket> = requests.iter().map(|r| e.submit(r.clone())).collect();
            let got: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
            assert_eq!(got, expected, "diverged at shards={shards}");
            let mut total = EngineStats::default();
            for s in e.shutdown() {
                total.merge(&s);
            }
            assert_eq!(total.mutations, plain.stats().mutations);
            assert_eq!(total.queries, plain.stats().queries);
        }
    }

    #[test]
    fn cut_gate_counters_merge_across_shards() {
        // Two graphs, wherever the router places them: each serves one
        // real cut compute and one certified carry (parallel-edge insert
        // freezes the partition). The per-shard counters must fold into
        // the fleet view through the same exhaustive merge the broadcast
        // Stats path uses.
        let mut e = ShardedEngine::new(2);
        for name in ["left", "right"] {
            let r = e.execute(Request::Create {
                name: name.into(),
                spec: GraphSpec::Edges { n: 4, edges: vec![(0, 1, 1), (2, 3, 1)] },
            });
            assert!(matches!(r, Response::Created { .. }), "create failed: {r}");
            let first = e.execute(Request::Query { name: name.into(), query: Query::ExactMinCut });
            assert!(matches!(first, Response::CutValue { weight: 0, .. }), "got {first}");
            e.execute(Request::Mutate {
                name: name.into(),
                op: Mutation::InsertEdge { u: 0, v: 1, w: 7 },
            });
            let again = e.execute(Request::Query { name: name.into(), query: Query::ExactMinCut });
            assert_eq!(format!("{again}"), format!("{first}"), "carried answer for {name}");
        }
        let mut total = EngineStats::default();
        for s in e.shutdown() {
            total.merge(&s);
        }
        assert_eq!(total.cut_recomputes, 2, "one real compute per graph");
        assert_eq!(total.cut_certified_skips, 2, "one carry per graph");
        assert_eq!(total.index.dsu_rebuilds, 0, "dynamic path: no rebuilds anywhere");
    }

    #[test]
    fn single_shard_matches_engine_exactly() {
        let mut sharded = ShardedEngine::new(1);
        let mut plain = Engine::new();
        let requests = vec![
            Request::Create { name: "a".into(), spec: GraphSpec::Cycle { n: 8 } },
            Request::Create { name: "b".into(), spec: GraphSpec::RandomTree { n: 9, seed: 4 } },
            Request::Query { name: "a".into(), query: Query::ExactMinCut },
            Request::Query { name: "a".into(), query: Query::ExactMinCut },
            Request::Mutate { name: "a".into(), op: Mutation::InsertEdge { u: 1, v: 5, w: 2 } },
            Request::Query { name: "a".into(), query: Query::ExactMinCut },
            Request::Query { name: "b".into(), query: Query::SingletonCut { seed: 3 } },
            Request::ListGraphs,
            Request::Stats,
            Request::Drop { name: "b".into() },
            Request::ListGraphs,
        ];
        for req in requests {
            assert_eq!(sharded.execute(req.clone()), plain.execute(req));
        }
    }

    #[test]
    fn rebalancing_rotates_a_pinned_hot_graph() {
        // One graph takes all the traffic: static placement pins it (and
        // 100% of the routed share) to one shard forever. With rebalancing
        // on, the router must rotate it so both shards carry real share.
        let placement =
            PlacementOptions { rebalance: true, window: 8, ..PlacementOptions::default() };
        let mut e =
            ShardedEngine::with_options(2, ShardOptions { placement, ..ShardOptions::default() });
        create(&mut e, "hot", 12);
        for _ in 0..200 {
            let r = e.execute(Request::Query { name: "hot".into(), query: Query::Connectivity });
            assert!(matches!(r, Response::ConnectivityValue { components: 1, .. }));
        }
        let report = e.placement_report();
        assert!(report.migrations >= 10, "got only {} migrations", report.migrations);
        assert_eq!(report.generation, report.migrations);
        let routed = e.routed().to_vec();
        let min = routed.iter().min().copied().unwrap_or(0);
        assert!(
            min >= 40,
            "rotation must spread the hot graph's routed share (routed: {routed:?})"
        );
        let per_shard = e.shutdown();
        let ins: u64 = per_shard.iter().map(|s| s.migrations_in).sum();
        let outs: u64 = per_shard.iter().map(|s| s.migrations_out).sum();
        assert_eq!(ins, report.migrations);
        assert_eq!(outs, report.migrations);
    }

    #[test]
    fn rebalancing_migrations_preserve_responses_and_counters() {
        // A dense migration schedule (window 3) interleaved with
        // mutations, drops, re-creates, and broadcasts: every response
        // must equal the unsharded engine's, and the per-shard migration
        // counters must balance against the router's count.
        let placement = PlacementOptions {
            rebalance: true,
            window: 3,
            max_moves: 4,
            ..PlacementOptions::default()
        };
        let mut sharded =
            ShardedEngine::with_options(3, ShardOptions { placement, ..ShardOptions::default() });
        let mut plain = Engine::new();

        let mut requests: Vec<Request> = Vec::new();
        for i in 0..4 {
            requests.push(Request::Create {
                name: format!("g{i}"),
                spec: GraphSpec::Cycle { n: 12 + i },
            });
        }
        for round in 0..30u64 {
            requests.push(Request::Query { name: "g0".into(), query: Query::ExactMinCut });
            requests.push(Request::Query { name: "g0".into(), query: Query::Connectivity });
            if round % 3 == 0 {
                requests.push(Request::Mutate {
                    name: "g0".into(),
                    op: Mutation::InsertEdge { u: 0, v: 2 + (round % 9) as u32, w: 1 + round },
                });
            }
            if round % 7 == 0 {
                requests.push(Request::Query {
                    name: format!("g{}", round % 4),
                    query: Query::ExactMinCut,
                });
            }
            if round == 10 {
                requests.push(Request::Drop { name: "g1".into() });
            }
            if round == 20 {
                requests
                    .push(Request::Create { name: "g1".into(), spec: GraphSpec::Cycle { n: 9 } });
            }
            if round % 10 == 5 {
                requests.push(Request::Stats);
                requests.push(Request::ListGraphs);
            }
        }
        for req in requests {
            assert_eq!(sharded.execute(req.clone()), plain.execute(req));
        }

        let report = sharded.placement_report();
        assert!(report.migrations > 0, "window=3 under hot skew must migrate");
        let per_shard = sharded.shutdown();
        let ins: u64 = per_shard.iter().map(|s| s.migrations_in).sum();
        let outs: u64 = per_shard.iter().map(|s| s.migrations_out).sum();
        assert_eq!(ins, report.migrations, "every migration must land");
        assert_eq!(outs, report.migrations, "every migration must leave");
        let mut total = EngineStats::default();
        for s in &per_shard {
            total.merge(s);
        }
        assert_eq!(total.queries, plain.stats().queries);
        assert_eq!(total.cache_hits, plain.stats().cache_hits);
        assert_eq!(total.mutations, plain.stats().mutations);
    }

    #[test]
    fn migrations_with_kernel_caches_preserve_responses() {
        // Kernelized shards under a dense migration schedule: graphs move
        // between workers with their kernel caches *not* travelling (the
        // kernel is per-engine derived state), so the destination rebuilds
        // — and every response must still equal an unkernelized,
        // unsharded engine's, cached flags included.
        let placement = PlacementOptions {
            rebalance: true,
            window: 3,
            max_moves: 4,
            ..PlacementOptions::default()
        };
        let cfg = EngineConfig { kernel: true, kernel_threshold: 4, ..EngineConfig::default() };
        let mut sharded = ShardedEngine::with_options(
            3,
            ShardOptions { cfg, placement, ..ShardOptions::default() },
        );
        let mut plain = Engine::new();

        let mut requests: Vec<Request> = Vec::new();
        for i in 0..4usize {
            // Sparse connected graphs: rich stage-1 structure, so the
            // kernel path genuinely serves s-t reads.
            requests.push(Request::Create {
                name: format!("g{i}"),
                spec: GraphSpec::ConnectedGnm {
                    n: 18 + i,
                    m: 22 + i,
                    w_min: 1,
                    w_max: 8,
                    seed: i as u64,
                },
            });
        }
        for round in 0..30u64 {
            let (s, t) = ((round % 7) as u32, 17 - (round % 5) as u32);
            requests.push(Request::Query { name: "g0".into(), query: Query::ExactMinCut });
            requests.push(Request::Query { name: "g0".into(), query: Query::StCutWeight { s, t } });
            requests.push(Request::Query {
                name: "g0".into(),
                query: Query::ApproxMinCut { seed: round },
            });
            if round % 3 == 0 {
                requests.push(Request::Mutate {
                    name: "g0".into(),
                    op: Mutation::InsertEdge { u: 0, v: 2 + (round % 9) as u32, w: 1 + round },
                });
            }
            if round % 7 == 0 {
                requests.push(Request::Query {
                    name: format!("g{}", round % 4),
                    query: Query::StCutWeight { s: 1, t: 16 },
                });
            }
        }
        for req in requests {
            assert_eq!(sharded.execute(req.clone()), plain.execute(req));
        }

        let report = sharded.placement_report();
        assert!(report.migrations > 0, "window=3 under hot skew must migrate");
        let per_shard = sharded.shutdown();
        let mut total = EngineStats::default();
        for s in &per_shard {
            total.merge(s);
        }
        assert!(total.kernel_cut_serves > 0, "kernel path never served");
        assert!(total.index.kernel_builds > 0, "kernel never built");
        assert_eq!(total.queries, plain.stats().queries);
        assert_eq!(total.mutations, plain.stats().mutations);
    }

    #[test]
    fn idle_worker_steals_tail_run_preserving_order() {
        // Shard 0 gets a heavy head plus a long run of cheap queries;
        // shard 1 owns nothing. With stealing on, the idle worker must
        // take (some of) the tail run — and every response must still
        // match the unsharded engine, cached flags included.
        let placement =
            PlacementOptions { steal: true, steal_min: 2, ..PlacementOptions::default() };
        let opts = ShardOptions { placement, ..ShardOptions::default() };
        let mut sharded = ShardedEngine::with_options(2, opts);
        // A name that the default placement puts on shard 0.
        let hot = (0..)
            .map(|i| format!("hot{i}"))
            .find(|n| default_shard(n, 2) == 0)
            .expect("some name hashes to shard 0");
        let n = 96u32;
        let spec = GraphSpec::ConnectedGnm {
            n: n as usize,
            m: 3 * n as usize,
            w_min: 1,
            w_max: 9,
            seed: 5,
        };

        let mut requests: Vec<Request> =
            vec![Request::Create { name: hot.clone(), spec: spec.clone() }];
        // The heavy head occupies the victim while the run queues behind.
        requests.push(Request::Query { name: hot.clone(), query: Query::KCut { k: 4 } });
        for i in 0..400u32 {
            requests.push(Request::Query {
                name: hot.clone(),
                query: Query::StCutWeight { s: i % n, t: (i + 11) % n },
            });
        }

        let mut plain = Engine::new();
        let mut expected: Vec<Response> =
            requests.iter().map(|r| plain.execute(r.clone())).collect();

        let mut tickets: Vec<Ticket> = requests.iter().map(|r| sharded.submit(r.clone())).collect();
        // Leave the queues alone while the victim grinds the heavy head —
        // a queued broadcast would (correctly) disqualify stealing, and
        // this test wants to observe a steal.
        std::thread::sleep(Duration::from_millis(30));
        expected.push(plain.execute(Request::Stats));
        tickets.push(sharded.submit(Request::Stats));
        let got: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(got, expected, "stolen runs must not change any response");

        let per_shard = sharded.shutdown();
        let stolen: u64 = per_shard.iter().map(|s| s.steal_reads).sum();
        assert!(stolen > 0, "the idle shard must have stolen part of the tail run");
        assert_eq!(per_shard[0].steal_reads, 0, "the busy victim steals nothing");
        // Stolen work is accounted where the graph lives: the merged
        // query counters must match the unsharded engine exactly.
        let mut total = EngineStats::default();
        for s in &per_shard {
            total.merge(s);
        }
        assert_eq!(total.queries, plain.stats().queries);
        assert_eq!(total.cache_hits, plain.stats().cache_hits);
    }

    #[test]
    fn latency_proxy_preserves_responses_and_counters() {
        // Same shape as the dense-migration test, with the latency proxy
        // driving placement: every response must still equal the
        // unsharded engine's, and the migration counters must balance —
        // the measured feedback may only change the *schedule*.
        let placement = PlacementOptions {
            rebalance: true,
            latency_proxy: true,
            window: 3,
            max_moves: 4,
            steal: true,
            steal_min: 2,
            ..PlacementOptions::default()
        };
        let mut sharded =
            ShardedEngine::with_options(3, ShardOptions { placement, ..ShardOptions::default() });
        let mut plain = Engine::new();

        let mut requests: Vec<Request> = Vec::new();
        for i in 0..4 {
            requests.push(Request::Create {
                name: format!("g{i}"),
                spec: GraphSpec::Cycle { n: 12 + i },
            });
        }
        for round in 0..30u64 {
            requests.push(Request::Query { name: "g0".into(), query: Query::ExactMinCut });
            requests.push(Request::Query { name: "g1".into(), query: Query::KCut { k: 3 } });
            requests.push(Request::Query { name: "g0".into(), query: Query::Connectivity });
            if round % 4 == 0 {
                requests.push(Request::Mutate {
                    name: "g0".into(),
                    op: Mutation::InsertEdge { u: 0, v: 2 + (round % 9) as u32, w: 1 + round },
                });
            }
            if round == 12 {
                requests.push(Request::Drop { name: "g2".into() });
            }
            if round % 9 == 5 {
                requests.push(Request::Stats);
                requests.push(Request::ListGraphs);
            }
        }
        for req in requests {
            assert_eq!(sharded.execute(req.clone()), plain.execute(req));
        }

        let report = sharded.placement_report();
        assert!(report.rebalances > 0);
        let per_shard = sharded.shutdown();
        let ins: u64 = per_shard.iter().map(|s| s.migrations_in).sum();
        let outs: u64 = per_shard.iter().map(|s| s.migrations_out).sum();
        // The proxy's schedule is timing-dependent (a migration may find
        // its graph already dropped and move nothing), so assert the
        // balance invariant rather than an exact count.
        assert_eq!(ins, outs, "every migration that leaves must land");
        assert!(ins <= report.migrations);
        let mut total = EngineStats::default();
        for s in &per_shard {
            total.merge(s);
        }
        assert_eq!(total.queries, plain.stats().queries);
        assert_eq!(total.cache_hits, plain.stats().cache_hits);
        assert_eq!(total.mutations, plain.stats().mutations);
        assert!(total.serve_nanos > 0, "workers must account busy time");
    }

    #[test]
    fn latency_proxy_rotates_a_measured_hot_graph() {
        // One expensive graph, hammered: the measured feedback must
        // detect it and rotate it even though the static weights would
        // agree here — the point is that the loop closes end to end.
        let placement = PlacementOptions {
            rebalance: true,
            latency_proxy: true,
            window: 8,
            ..PlacementOptions::default()
        };
        let mut e =
            ShardedEngine::with_options(2, ShardOptions { placement, ..ShardOptions::default() });
        create(&mut e, "hot", 24);
        for seed in 0..120u64 {
            let r = e.execute(Request::Query {
                name: "hot".into(),
                query: Query::ApproxMinCut { seed },
            });
            assert!(matches!(r, Response::CutValue { .. }));
        }
        let report = e.placement_report();
        assert!(report.migrations > 0, "measured load must trigger rotation");
        let routed = e.routed().to_vec();
        assert!(routed.iter().all(|&r| r > 0), "rotation must spread traffic: {routed:?}");
        e.shutdown();
    }

    #[test]
    fn try_wait_resolves_single_and_broadcast_tickets() {
        let mut e = ShardedEngine::new(3);
        create(&mut e, "ring", 10);
        let mut single =
            e.submit(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
        let mut broadcast = e.submit(Request::Stats);
        let spin = |t: &mut Ticket| loop {
            if let Some(r) = t.try_wait() {
                return r;
            }
            std::thread::yield_now();
        };
        assert!(matches!(spin(&mut single), Response::CutValue { weight: 2, .. }));
        let stats = spin(&mut broadcast);
        assert!(
            matches!(stats, Response::EngineStats { graphs: 1, queries: 1, .. }),
            "broadcast partials must merge through try_wait: {stats}"
        );
        e.shutdown();
    }

    #[test]
    fn shutdown_resolves_pending_steals() {
        // Close the queues while a steal may be in flight: every ticket
        // must still resolve with the right answer (the victim lends
        // during its drain; the thief serves, returns, and exits).
        let placement =
            PlacementOptions { steal: true, steal_min: 2, ..PlacementOptions::default() };
        let mut sharded =
            ShardedEngine::with_options(2, ShardOptions { placement, ..ShardOptions::default() });
        let hot = (0..)
            .map(|i| format!("hot{i}"))
            .find(|n| default_shard(n, 2) == 0)
            .expect("some name hashes to shard 0");
        let mut plain = Engine::new();
        let mut requests: Vec<Request> =
            vec![Request::Create { name: hot.clone(), spec: GraphSpec::Cycle { n: 24 } }];
        requests.push(Request::Query { name: hot.clone(), query: Query::KCut { k: 4 } });
        for i in 0..100u32 {
            requests.push(Request::Query {
                name: hot.clone(),
                query: Query::StCutWeight { s: i % 24, t: (i + 5) % 24 },
            });
        }
        let expected: Vec<Response> = requests.iter().map(|r| plain.execute(r.clone())).collect();
        let tickets: Vec<Ticket> = requests.iter().map(|r| sharded.submit(r.clone())).collect();
        let _ = sharded.shutdown();
        let got: Vec<Response> = tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(got, expected);
    }

    /// Pull the merged metrics registry out of a live sharded engine.
    fn metrics_of(e: &mut ShardedEngine) -> cut_obs::Registry {
        match e.execute(Request::Metrics) {
            Response::Metrics { snapshot } => {
                cut_obs::Registry::from_wire(&snapshot).expect("well-formed metrics wire")
            }
            other => panic!("expected a metrics snapshot, got {other}"),
        }
    }

    #[test]
    fn merged_span_histograms_count_every_named_op() {
        let mut e = ShardedEngine::new(4);
        let mut named_ops = 0u64;
        for i in 0..6 {
            create(&mut e, &format!("g{i}"), 8);
            named_ops += 1;
        }
        for i in 0..30 {
            let name = format!("g{}", i % 6);
            let r = e.execute(Request::Query { name, query: Query::ExactMinCut });
            assert!(matches!(r, Response::CutValue { .. }), "got {r}");
            named_ops += 1;
        }
        // Broadcasts (including metrics itself) record no spans, so the
        // histogram totals stay exactly the named ops served.
        let _ = e.execute(Request::Stats);
        let _ = e.execute(Request::ListGraphs);
        let _ = metrics_of(&mut e);
        let reg = metrics_of(&mut e);
        for hist in ["request_queue_wait_nanos", "request_serve_nanos"] {
            let h = reg.histogram(hist).unwrap_or_else(|| panic!("missing histogram {hist}"));
            assert_eq!(h.count(), named_ops, "{hist} must count every named op exactly once");
        }
        // The engine counter families ride along, merged across shards.
        assert_eq!(reg.counter("engine_queries"), 30);
        assert_eq!(reg.counter("engine_graphs_created"), 6);
        e.shutdown();
    }

    #[test]
    fn deterministic_clock_spans_split_queue_wait_and_serve_exactly() {
        // A counting clock makes every stamp exact: for each span,
        // queue + serve == wall by construction, enqueue precedes
        // dequeue, and the slow log surfaces the spans.
        let clock = Arc::new(cut_obs::TestClock::new());
        let opts = ShardOptions { clock, slowlog_cap: 64, ..ShardOptions::default() };
        let mut e = ShardedEngine::with_options(2, opts);
        create(&mut e, "ring", 12);
        for _ in 0..5 {
            let r = e.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
            assert!(matches!(r, Response::CutValue { weight: 2, .. }), "got {r}");
        }
        let log = match e.execute(Request::Slowlog) {
            Response::Slowlog { snapshot } => {
                SlowLog::from_wire(&snapshot).expect("well-formed slowlog wire")
            }
            other => panic!("expected a slowlog snapshot, got {other}"),
        };
        assert_eq!(log.entries().len(), 6, "create + 5 queries all rank in a cap-64 log");
        for span in log.entries() {
            assert!(span.enqueue <= span.dequeue, "submit stamps precede dequeue: {span:?}");
            assert!(span.dequeue <= span.end, "serve cannot end before it starts: {span:?}");
            assert_eq!(
                span.queue_nanos() + span.serve_nanos(),
                span.wall_nanos(),
                "queue wait + serve time must partition the wall span exactly: {span:?}"
            );
            assert_eq!(span.target, "ring");
        }
        e.shutdown();
    }

    #[test]
    fn dropped_tickets_count_as_abandoned() {
        let mut e = ShardedEngine::new(2);
        create(&mut e, "ring", 8);
        assert_eq!(e.abandoned_tickets(), 0, "waited tickets are not abandoned");
        // Fire-and-forget: the mutation still applies, the ticket drop
        // is counted.
        let ticket = e.submit(Request::Mutate {
            name: "ring".into(),
            op: Mutation::InsertEdge { u: 0, v: 4, w: 3 },
        });
        drop(ticket);
        assert_eq!(e.abandoned_tickets(), 1);
        // A ticket resolved through try_wait is spent, not abandoned.
        let mut ticket =
            e.submit(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
        loop {
            if ticket.try_wait().is_some() {
                break;
            }
            std::thread::yield_now();
        }
        drop(ticket);
        assert_eq!(e.abandoned_tickets(), 1);
        // A broadcast ticket abandons too, and the mutation above landed.
        drop(e.submit(Request::Stats));
        assert_eq!(e.abandoned_tickets(), 2);
        let r = e.execute(Request::Query { name: "ring".into(), query: Query::ExactMinCut });
        assert!(matches!(r, Response::CutValue { .. }), "got {r}");
        e.shutdown();
    }
}
