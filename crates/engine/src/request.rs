//! The engine's wire types: graph specifications, mutations, queries, and
//! responses.
//!
//! Everything is plain data with a deterministic [`std::fmt::Display`] so a
//! sequence of `(Request, Response)` pairs can be logged and byte-compared
//! across runs — the stress harness's determinism check relies on this.

use std::fmt;

use cut_graph::{Edge, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How to build a named graph.
///
/// Generator variants carry their seed, so a spec is a *value*: the engine
/// and the workload generator materialize identical graphs from equal
/// specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// Explicit weighted edge list on `n` vertices.
    Edges {
        /// Vertex count.
        n: usize,
        /// `(u, v, w)` triples.
        edges: Vec<(u32, u32, u64)>,
    },
    /// Seeded `G(n, m)` with weights in `[w_min, w_max]`.
    Gnm {
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
        /// Minimum edge weight.
        w_min: u64,
        /// Maximum edge weight.
        w_max: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Seeded connected `G(n, m)` (random spanning tree plus extra edges).
    ConnectedGnm {
        /// Vertex count.
        n: usize,
        /// Edge count (at least `n - 1`).
        m: usize,
        /// Minimum edge weight.
        w_min: u64,
        /// Maximum edge weight.
        w_max: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Two dense halves joined by `cross` unit edges — min cut ≤ `cross`.
    PlantedCut {
        /// Vertices per half.
        half: usize,
        /// Random internal edges per half.
        internal_m: usize,
        /// Crossing edges (the planted cut weight).
        cross: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Unit-weight cycle on `n ≥ 3` vertices (min cut 2).
    Cycle {
        /// Vertex count.
        n: usize,
    },
    /// Seeded uniform random labeled tree (every edge is a min cut of 1).
    RandomTree {
        /// Vertex count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Materialize the spec into `(n, edges)`.
    ///
    /// Deterministic: equal specs produce identical edge lists, whoever
    /// calls (engine or workload generator).
    pub fn materialize(&self) -> Result<(usize, Vec<Edge>), String> {
        match self {
            GraphSpec::Edges { n, edges } => {
                let mut out = Vec::with_capacity(edges.len());
                for &(u, v, w) in edges {
                    validate_edge(*n, u, v, w)?;
                    out.push(Edge::new(u, v, w));
                }
                Ok((*n, out))
            }
            GraphSpec::Gnm { n, m, w_min, w_max, seed } => {
                if *w_min == 0 || w_min > w_max {
                    return Err(format!("bad weight range [{w_min}, {w_max}]"));
                }
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::gnm(*n, *m, *w_min..=*w_max, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::ConnectedGnm { n, m, w_min, w_max, seed } => {
                if *n < 2 {
                    return Err("connected_gnm needs n >= 2".into());
                }
                if *m + 1 < *n {
                    return Err(format!("connected_gnm needs m >= n-1 ({m} < {})", n - 1));
                }
                if *w_min == 0 || w_min > w_max {
                    return Err(format!("bad weight range [{w_min}, {w_max}]"));
                }
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::connected_gnm(*n, *m, *w_min..=*w_max, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::PlantedCut { half, internal_m, cross, seed } => {
                if *half < 2 {
                    return Err("planted_cut needs half >= 2".into());
                }
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::planted_cut(*half, *internal_m, *cross, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::Cycle { n } => {
                if *n < 3 {
                    return Err("cycle needs n >= 3".into());
                }
                let g = cut_graph::gen::cycle(*n);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::RandomTree { n, seed } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::random_tree(*n, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
        }
    }

    /// Materialize straight to a [`Graph`].
    pub fn build(&self) -> Result<Graph, String> {
        let (n, edges) = self.materialize()?;
        Ok(Graph::new_unchecked(n, edges))
    }
}

fn validate_edge(n: usize, u: u32, v: u32, w: u64) -> Result<(), String> {
    if u as usize >= n || v as usize >= n {
        return Err(format!("edge ({u}, {v}) out of range for n = {n}"));
    }
    if u == v {
        return Err(format!("self-loop at vertex {u}"));
    }
    if w == 0 {
        return Err(format!("zero-weight edge ({u}, {v})"));
    }
    Ok(())
}

/// A change to a registered graph. Every applied mutation bumps the
/// graph's epoch, invalidating cached query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Add a weighted edge (parallel edges are allowed).
    InsertEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// Positive weight.
        w: u64,
    },
    /// Remove one edge between `u` and `v` (the first match; fails if no
    /// such edge exists).
    DeleteEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Merge vertex `v` into vertex `u`: parallel edges between the merged
    /// vertex and any neighbor are combined (weights summed), self-loops
    /// drop, and vertex ids above `v` shift down by one.
    ContractVertices {
        /// Surviving vertex.
        u: u32,
        /// Vertex merged away.
        v: u32,
    },
}

/// New id of vertex `x` after contracting `v` into `u`: `v` maps to `u`,
/// and every id above `v` shifts down by one. The single source of truth
/// for contraction relabeling — the engine and the workload generator's
/// mirror both use it, so they cannot drift.
pub fn contract_relabel(u: u32, v: u32, x: u32) -> u32 {
    let x = if x == v { u } else { x };
    if x > v {
        x - 1
    } else {
        x
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::InsertEdge { u, v, w } => write!(f, "insert({u},{v},w={w})"),
            Mutation::DeleteEdge { u, v } => write!(f, "delete({u},{v})"),
            Mutation::ContractVertices { u, v } => write!(f, "contract({u}<-{v})"),
        }
    }
}

/// A read against a registered graph. `Hash + Eq` so results cache by
/// query value; every parameter is an integer so keys are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// `(2+ε)`-approximate global min cut (the paper's Algorithm 1,
    /// reference engine) under the engine's configured ε.
    ApproxMinCut {
        /// Contraction seed.
        seed: u64,
    },
    /// Exact global min cut (Stoer–Wagner).
    ExactMinCut,
    /// Smallest singleton cut of the contraction process (Algorithm 3).
    SingletonCut {
        /// Priority seed.
        seed: u64,
    },
    /// `(4+ε)`-approximate min k-cut (Algorithm 4).
    KCut {
        /// Number of parts.
        k: usize,
    },
    /// Connected components count.
    Connectivity,
    /// Exact minimum s-t cut weight (Dinic max-flow).
    StCutWeight {
        /// Source.
        s: u32,
        /// Sink.
        t: u32,
    },
}

/// The [`Query::kind`] labels, indexed by [`Query::kind_index`] — the
/// shared axis for per-action counters (e.g. the engine's snapshot
/// build/reuse accounting).
pub const QUERY_KINDS: [&str; 6] =
    ["approx-min-cut", "exact-min-cut", "singleton-cut", "k-cut", "connectivity", "st-cut"];

impl Query {
    /// Short stable label for per-action reporting.
    pub fn kind(&self) -> &'static str {
        QUERY_KINDS[self.kind_index()]
    }

    /// Position of this query's kind in [`QUERY_KINDS`] — the index for
    /// fixed-size per-action counter arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            Query::ApproxMinCut { .. } => 0,
            Query::ExactMinCut => 1,
            Query::SingletonCut { .. } => 2,
            Query::KCut { .. } => 3,
            Query::Connectivity => 4,
            Query::StCutWeight { .. } => 5,
        }
    }

    /// Relative serve-cost weight of this query — the **serve-time proxy**
    /// the sharded router's load accounting uses (it cannot observe real
    /// serve times, since it never waits for responses). The scale is
    /// arbitrary; only ratios matter. Deliberately coarse: a cache hit
    /// costs far less than these weights suggest, which the placement
    /// layer tolerates because rebalancing reacts to *relative* per-graph
    /// load, not absolute cost.
    pub fn cost_weight(&self) -> u64 {
        match self {
            // DSU fast path: near-free.
            Query::Connectivity => 1,
            // One Dinic run / one priority sweep.
            Query::StCutWeight { .. } | Query::SingletonCut { .. } => 6,
            // Contraction engine with repetitions.
            Query::ApproxMinCut { .. } => 8,
            // Stoer–Wagner over the whole graph.
            Query::ExactMinCut => 10,
            // Recursive splitting, the heaviest served query.
            Query::KCut { .. } => 12,
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::ApproxMinCut { seed } => write!(f, "approx-min-cut(seed={seed})"),
            Query::ExactMinCut => write!(f, "exact-min-cut"),
            Query::SingletonCut { seed } => write!(f, "singleton-cut(seed={seed})"),
            Query::KCut { k } => write!(f, "k-cut(k={k})"),
            Query::Connectivity => write!(f, "connectivity"),
            Query::StCutWeight { s, t } => write!(f, "st-cut({s},{t})"),
        }
    }
}

/// One operation against the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a graph under `name` (fails if the name is taken).
    Create {
        /// Registry key.
        name: String,
        /// How to build it.
        spec: GraphSpec,
    },
    /// Remove a graph and its cache.
    Drop {
        /// Registry key.
        name: String,
    },
    /// Mutate a graph.
    Mutate {
        /// Registry key.
        name: String,
        /// The change.
        op: Mutation,
    },
    /// Query a graph (answers are cached per mutation epoch).
    Query {
        /// Registry key.
        name: String,
        /// The question.
        query: Query,
    },
    /// List registered graph names (sorted).
    ListGraphs,
    /// Engine-level counters.
    Stats,
}

impl Request {
    /// Short stable label for per-action reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Create { .. } => "create",
            Request::Drop { .. } => "drop",
            Request::Mutate { op: Mutation::InsertEdge { .. }, .. } => "insert-edge",
            Request::Mutate { op: Mutation::DeleteEdge { .. }, .. } => "delete-edge",
            Request::Mutate { op: Mutation::ContractVertices { .. }, .. } => "contract",
            Request::Query { query, .. } => query.kind(),
            Request::ListGraphs => "list",
            Request::Stats => "stats",
        }
    }

    /// Relative serve-cost weight of this request (see
    /// [`Query::cost_weight`]): what the adaptive placement layer charges
    /// a graph per routed request when accounting per-window load.
    pub fn cost_weight(&self) -> u64 {
        match self {
            // Graph materialization plus index construction.
            Request::Create { .. } => 4,
            // Edge-list edit plus index notification.
            Request::Mutate { .. } => 2,
            // Registry removal / registry scans: cheap.
            Request::Drop { .. } | Request::ListGraphs | Request::Stats => 1,
            Request::Query { query, .. } => query.cost_weight(),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Create { name, spec } => {
                // Specs log by shape, not full edge lists (logs stay small).
                let shape = match spec {
                    GraphSpec::Edges { n, edges } => format!("edges(n={n},m={})", edges.len()),
                    GraphSpec::Gnm { n, m, seed, .. } => format!("gnm(n={n},m={m},seed={seed})"),
                    GraphSpec::ConnectedGnm { n, m, seed, .. } => {
                        format!("cgnm(n={n},m={m},seed={seed})")
                    }
                    GraphSpec::PlantedCut { half, internal_m, cross, seed } => {
                        format!("planted(half={half},m={internal_m},cross={cross},seed={seed})")
                    }
                    GraphSpec::Cycle { n } => format!("cycle(n={n})"),
                    GraphSpec::RandomTree { n, seed } => format!("tree(n={n},seed={seed})"),
                };
                write!(f, "create {name} {shape}")
            }
            Request::Drop { name } => write!(f, "drop {name}"),
            Request::Mutate { name, op } => write!(f, "mutate {name} {op}"),
            Request::Query { name, query } => write!(f, "query {name} {query}"),
            Request::ListGraphs => write!(f, "list-graphs"),
            Request::Stats => write!(f, "stats"),
        }
    }
}

/// The engine's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Graph registered.
    Created {
        /// Registry key.
        name: String,
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
    },
    /// Graph removed.
    Dropped {
        /// Registry key.
        name: String,
    },
    /// Mutation applied.
    Mutated {
        /// Registry key.
        name: String,
        /// Epoch after the mutation.
        epoch: u64,
        /// Vertex count after the mutation.
        n: usize,
        /// Edge count after the mutation.
        m: usize,
    },
    /// A cut-valued answer (min cut, singleton cut, s-t cut).
    CutValue {
        /// Cut weight.
        weight: u64,
        /// Size of the realizing side (0 when the query reports only a
        /// weight, e.g. s-t cuts).
        side_size: usize,
        /// Served from the epoch cache.
        cached: bool,
    },
    /// A k-cut answer.
    KCutValue {
        /// Total crossing weight.
        weight: u64,
        /// Number of parts.
        parts: usize,
        /// Served from the epoch cache.
        cached: bool,
    },
    /// A connectivity answer.
    ConnectivityValue {
        /// Connected-component count.
        components: usize,
        /// Served from the epoch cache.
        cached: bool,
    },
    /// Registered graph names, sorted.
    Graphs {
        /// Registry keys.
        names: Vec<String>,
    },
    /// Engine-level counters snapshot.
    EngineStats {
        /// Registered graphs.
        graphs: usize,
        /// Queries served.
        queries: u64,
        /// Cache hits.
        cache_hits: u64,
        /// Cache misses.
        cache_misses: u64,
        /// Mutations applied.
        mutations: u64,
    },
    /// The request failed; the engine state is unchanged.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// True when this response was served from the query cache.
    pub fn was_cached(&self) -> bool {
        matches!(
            self,
            Response::CutValue { cached: true, .. }
                | Response::KCutValue { cached: true, .. }
                | Response::ConnectivityValue { cached: true, .. }
        )
    }

    /// The same response with its `cached` flag set.
    pub(crate) fn as_cached(&self) -> Response {
        let mut r = self.clone();
        match &mut r {
            Response::CutValue { cached, .. }
            | Response::KCutValue { cached, .. }
            | Response::ConnectivityValue { cached, .. } => *cached = true,
            _ => {}
        }
        r
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Created { name, n, m } => write!(f, "created {name} n={n} m={m}"),
            Response::Dropped { name } => write!(f, "dropped {name}"),
            Response::Mutated { name, epoch, n, m } => {
                write!(f, "mutated {name} epoch={epoch} n={n} m={m}")
            }
            Response::CutValue { weight, side_size, cached } => {
                write!(f, "cut weight={weight} side={side_size} cached={cached}")
            }
            Response::KCutValue { weight, parts, cached } => {
                write!(f, "kcut weight={weight} parts={parts} cached={cached}")
            }
            Response::ConnectivityValue { components, cached } => {
                write!(f, "connectivity components={components} cached={cached}")
            }
            Response::Graphs { names } => write!(f, "graphs [{}]", names.join(", ")),
            Response::EngineStats { graphs, queries, cache_hits, cache_misses, mutations } => {
                write!(
                    f,
                    "stats graphs={graphs} queries={queries} hits={cache_hits} \
                     misses={cache_misses} mutations={mutations}"
                )
            }
            Response::Error { message } => write!(f, "error: {message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weights_order_by_algorithmic_heft() {
        // The proxy only needs sane ratios: connectivity (DSU fast path)
        // cheapest, k-cut (recursive splitting) dearest, mutations between.
        let connectivity = Request::Query { name: "g".into(), query: Query::Connectivity };
        let kcut = Request::Query { name: "g".into(), query: Query::KCut { k: 3 } };
        let exact = Request::Query { name: "g".into(), query: Query::ExactMinCut };
        let mutate =
            Request::Mutate { name: "g".into(), op: Mutation::InsertEdge { u: 0, v: 1, w: 1 } };
        assert!(connectivity.cost_weight() < mutate.cost_weight());
        assert!(mutate.cost_weight() < exact.cost_weight());
        assert!(exact.cost_weight() < kcut.cost_weight());
        assert_eq!(Request::ListGraphs.cost_weight(), Request::Stats.cost_weight());
        // Every request kind has a positive weight (a zero weight would
        // make a graph invisible to the rebalancer).
        for q in [
            Query::ApproxMinCut { seed: 0 },
            Query::ExactMinCut,
            Query::SingletonCut { seed: 0 },
            Query::KCut { k: 2 },
            Query::Connectivity,
            Query::StCutWeight { s: 0, t: 1 },
        ] {
            assert!(q.cost_weight() > 0, "{q} must cost something");
        }
    }
}
