//! The engine's wire types: graph specifications, mutations, queries, and
//! responses.
//!
//! Everything is plain data with a deterministic [`std::fmt::Display`] so a
//! sequence of `(Request, Response)` pairs can be logged and byte-compared
//! across runs — the stress harness's determinism check relies on this.

use std::fmt;

use cut_graph::{Edge, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How to build a named graph.
///
/// Generator variants carry their seed, so a spec is a *value*: the engine
/// and the workload generator materialize identical graphs from equal
/// specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// Explicit weighted edge list on `n` vertices.
    Edges {
        /// Vertex count.
        n: usize,
        /// `(u, v, w)` triples.
        edges: Vec<(u32, u32, u64)>,
    },
    /// Seeded `G(n, m)` with weights in `[w_min, w_max]`.
    Gnm {
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
        /// Minimum edge weight.
        w_min: u64,
        /// Maximum edge weight.
        w_max: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Seeded connected `G(n, m)` (random spanning tree plus extra edges).
    ConnectedGnm {
        /// Vertex count.
        n: usize,
        /// Edge count (at least `n - 1`).
        m: usize,
        /// Minimum edge weight.
        w_min: u64,
        /// Maximum edge weight.
        w_max: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Two dense halves joined by `cross` unit edges — min cut ≤ `cross`.
    PlantedCut {
        /// Vertices per half.
        half: usize,
        /// Random internal edges per half.
        internal_m: usize,
        /// Crossing edges (the planted cut weight).
        cross: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Unit-weight cycle on `n ≥ 3` vertices (min cut 2).
    Cycle {
        /// Vertex count.
        n: usize,
    },
    /// Seeded uniform random labeled tree (every edge is a min cut of 1).
    RandomTree {
        /// Vertex count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Materialize the spec into `(n, edges)`.
    ///
    /// Deterministic: equal specs produce identical edge lists, whoever
    /// calls (engine or workload generator).
    pub fn materialize(&self) -> Result<(usize, Vec<Edge>), String> {
        match self {
            GraphSpec::Edges { n, edges } => {
                let mut out = Vec::with_capacity(edges.len());
                for &(u, v, w) in edges {
                    validate_edge(*n, u, v, w)?;
                    out.push(Edge::new(u, v, w));
                }
                Ok((*n, out))
            }
            GraphSpec::Gnm { n, m, w_min, w_max, seed } => {
                if *w_min == 0 || w_min > w_max {
                    return Err(format!("bad weight range [{w_min}, {w_max}]"));
                }
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::gnm(*n, *m, *w_min..=*w_max, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::ConnectedGnm { n, m, w_min, w_max, seed } => {
                if *n < 2 {
                    return Err("connected_gnm needs n >= 2".into());
                }
                if *m + 1 < *n {
                    return Err(format!("connected_gnm needs m >= n-1 ({m} < {})", n - 1));
                }
                if *w_min == 0 || w_min > w_max {
                    return Err(format!("bad weight range [{w_min}, {w_max}]"));
                }
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::connected_gnm(*n, *m, *w_min..=*w_max, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::PlantedCut { half, internal_m, cross, seed } => {
                if *half < 2 {
                    return Err("planted_cut needs half >= 2".into());
                }
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::planted_cut(*half, *internal_m, *cross, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::Cycle { n } => {
                if *n < 3 {
                    return Err("cycle needs n >= 3".into());
                }
                let g = cut_graph::gen::cycle(*n);
                Ok((g.n(), g.edges().to_vec()))
            }
            GraphSpec::RandomTree { n, seed } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                let g = cut_graph::gen::random_tree(*n, &mut rng);
                Ok((g.n(), g.edges().to_vec()))
            }
        }
    }

    /// Materialize straight to a [`Graph`].
    pub fn build(&self) -> Result<Graph, String> {
        let (n, edges) = self.materialize()?;
        Ok(Graph::new_unchecked(n, edges))
    }
}

fn validate_edge(n: usize, u: u32, v: u32, w: u64) -> Result<(), String> {
    if u as usize >= n || v as usize >= n {
        return Err(format!("edge ({u}, {v}) out of range for n = {n}"));
    }
    if u == v {
        return Err(format!("self-loop at vertex {u}"));
    }
    if w == 0 {
        return Err(format!("zero-weight edge ({u}, {v})"));
    }
    Ok(())
}

/// A change to a registered graph. Every applied mutation bumps the
/// graph's epoch, invalidating cached query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Add a weighted edge (parallel edges are allowed).
    InsertEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// Positive weight.
        w: u64,
    },
    /// Remove one edge between `u` and `v` (the first match; fails if no
    /// such edge exists).
    DeleteEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Merge vertex `v` into vertex `u`: parallel edges between the merged
    /// vertex and any neighbor are combined (weights summed), self-loops
    /// drop, and vertex ids above `v` shift down by one.
    ContractVertices {
        /// Surviving vertex.
        u: u32,
        /// Vertex merged away.
        v: u32,
    },
}

/// New id of vertex `x` after contracting `v` into `u`: `v` maps to `u`,
/// and every id above `v` shifts down by one. The single source of truth
/// for contraction relabeling — the engine and the workload generator's
/// mirror both use it, so they cannot drift.
pub fn contract_relabel(u: u32, v: u32, x: u32) -> u32 {
    let x = if x == v { u } else { x };
    if x > v {
        x - 1
    } else {
        x
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::InsertEdge { u, v, w } => write!(f, "insert({u},{v},w={w})"),
            Mutation::DeleteEdge { u, v } => write!(f, "delete({u},{v})"),
            Mutation::ContractVertices { u, v } => write!(f, "contract({u}<-{v})"),
        }
    }
}

/// A read against a registered graph. `Hash + Eq` so results cache by
/// query value; every parameter is an integer so keys are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// `(2+ε)`-approximate global min cut (the paper's Algorithm 1,
    /// reference engine) under the engine's configured ε.
    ApproxMinCut {
        /// Contraction seed.
        seed: u64,
    },
    /// Exact global min cut (Stoer–Wagner).
    ExactMinCut,
    /// Smallest singleton cut of the contraction process (Algorithm 3).
    SingletonCut {
        /// Priority seed.
        seed: u64,
    },
    /// `(4+ε)`-approximate min k-cut (Algorithm 4).
    KCut {
        /// Number of parts.
        k: usize,
    },
    /// Connected components count.
    Connectivity,
    /// Exact minimum s-t cut weight (Dinic max-flow).
    StCutWeight {
        /// Source.
        s: u32,
        /// Sink.
        t: u32,
    },
}

/// The [`Query::kind`] labels, indexed by [`Query::kind_index`] — the
/// shared axis for per-action counters (e.g. the engine's snapshot
/// build/reuse accounting).
pub const QUERY_KINDS: [&str; 6] =
    ["approx-min-cut", "exact-min-cut", "singleton-cut", "k-cut", "connectivity", "st-cut"];

impl Query {
    /// Short stable label for per-action reporting.
    pub fn kind(&self) -> &'static str {
        QUERY_KINDS[self.kind_index()]
    }

    /// Position of this query's kind in [`QUERY_KINDS`] — the index for
    /// fixed-size per-action counter arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            Query::ApproxMinCut { .. } => 0,
            Query::ExactMinCut => 1,
            Query::SingletonCut { .. } => 2,
            Query::KCut { .. } => 3,
            Query::Connectivity => 4,
            Query::StCutWeight { .. } => 5,
        }
    }

    /// True for the query kinds the engine's certificate gate covers:
    /// expensive cut computations whose stale cached answers can
    /// sometimes be proven still exact (partition unchanged + answer a
    /// pure function of the partition) and carried instead of recomputed.
    /// These are the kinds `cut_recomputes` / `cut_certified_skips`
    /// count.
    pub fn is_certificate_gated(&self) -> bool {
        matches!(self, Query::ExactMinCut | Query::ApproxMinCut { .. } | Query::StCutWeight { .. })
    }

    /// Relative serve-cost weight of this query — the **serve-time proxy**
    /// the sharded router's load accounting uses (it cannot observe real
    /// serve times, since it never waits for responses). The scale is
    /// arbitrary; only ratios matter. Deliberately coarse: a cache hit
    /// costs far less than these weights suggest, which the placement
    /// layer tolerates because rebalancing reacts to *relative* per-graph
    /// load, not absolute cost.
    pub fn cost_weight(&self) -> u64 {
        match self {
            // DSU fast path: near-free.
            Query::Connectivity => 1,
            // One Dinic run / one priority sweep.
            Query::StCutWeight { .. } | Query::SingletonCut { .. } => 6,
            // Contraction engine with repetitions.
            Query::ApproxMinCut { .. } => 8,
            // Stoer–Wagner over the whole graph.
            Query::ExactMinCut => 10,
            // Recursive splitting, the heaviest served query.
            Query::KCut { .. } => 12,
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::ApproxMinCut { seed } => write!(f, "approx-min-cut(seed={seed})"),
            Query::ExactMinCut => write!(f, "exact-min-cut"),
            Query::SingletonCut { seed } => write!(f, "singleton-cut(seed={seed})"),
            Query::KCut { k } => write!(f, "k-cut(k={k})"),
            Query::Connectivity => write!(f, "connectivity"),
            Query::StCutWeight { s, t } => write!(f, "st-cut({s},{t})"),
        }
    }
}

/// Percent-encode the characters that would break the whitespace-delimited
/// trace format: `%` itself, spaces, tabs, newlines. Graph names the
/// workload generator emits (`g000`, …) pass through unchanged. The empty
/// name gets the sentinel `%-` (which no non-empty name can encode to,
/// since a literal `%` always escapes to `%25`).
pub(crate) fn encode_name(name: &str) -> String {
    if name.is_empty() {
        return "%-".to_string();
    }
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other => out.push(other),
        }
    }
    out
}

/// Invert [`encode_name`].
pub(crate) fn decode_name(token: &str) -> Result<String, String> {
    if token == "%-" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next().ok_or("truncated %-escape in name")?;
        let lo = chars.next().ok_or("truncated %-escape in name")?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16)
            .map_err(|_| format!("bad %-escape '%{hi}{lo}' in name"))?;
        out.push(byte as char);
    }
    Ok(out)
}

/// Pull the next whitespace token, or error with context.
fn next_tok<'a>(tokens: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, String> {
    tokens.next().ok_or_else(|| format!("trace line ended early: expected {what}"))
}

/// Parse the next token as an integer/float, or error with context.
fn parse_tok<'a, T: std::str::FromStr>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<T, String> {
    let tok = next_tok(tokens, what)?;
    tok.parse().map_err(|_| format!("bad {what} '{tok}' in trace line"))
}

impl GraphSpec {
    /// Serialize to the trace token form (see [`Request::to_trace_line`]).
    fn to_trace_tokens(&self) -> String {
        match self {
            GraphSpec::Edges { n, edges } => {
                let mut s = format!("edges {n} {}", edges.len());
                for &(u, v, w) in edges {
                    s.push_str(&format!(" {u}:{v}:{w}"));
                }
                s
            }
            GraphSpec::Gnm { n, m, w_min, w_max, seed } => {
                format!("gnm {n} {m} {w_min} {w_max} {seed}")
            }
            GraphSpec::ConnectedGnm { n, m, w_min, w_max, seed } => {
                format!("cgnm {n} {m} {w_min} {w_max} {seed}")
            }
            GraphSpec::PlantedCut { half, internal_m, cross, seed } => {
                format!("planted {half} {internal_m} {cross} {seed}")
            }
            GraphSpec::Cycle { n } => format!("cycle {n}"),
            GraphSpec::RandomTree { n, seed } => format!("tree {n} {seed}"),
        }
    }

    /// Parse the token form produced by [`GraphSpec::to_trace_tokens`].
    fn from_trace_tokens<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Self, String> {
        match next_tok(tokens, "graph spec kind")? {
            "edges" => {
                let n = parse_tok(tokens, "edges n")?;
                let m: usize = parse_tok(tokens, "edges m")?;
                let mut edges = Vec::with_capacity(m);
                for _ in 0..m {
                    let triple = next_tok(tokens, "u:v:w edge triple")?;
                    let mut parts = triple.split(':');
                    let mut field = |what: &str| -> Result<&str, String> {
                        parts.next().ok_or_else(|| format!("bad edge triple '{triple}': {what}"))
                    };
                    let u = field("u")?.parse().map_err(|_| format!("bad u in '{triple}'"))?;
                    let v = field("v")?.parse().map_err(|_| format!("bad v in '{triple}'"))?;
                    let w = field("w")?.parse().map_err(|_| format!("bad w in '{triple}'"))?;
                    edges.push((u, v, w));
                }
                Ok(GraphSpec::Edges { n, edges })
            }
            "gnm" => Ok(GraphSpec::Gnm {
                n: parse_tok(tokens, "gnm n")?,
                m: parse_tok(tokens, "gnm m")?,
                w_min: parse_tok(tokens, "gnm w_min")?,
                w_max: parse_tok(tokens, "gnm w_max")?,
                seed: parse_tok(tokens, "gnm seed")?,
            }),
            "cgnm" => Ok(GraphSpec::ConnectedGnm {
                n: parse_tok(tokens, "cgnm n")?,
                m: parse_tok(tokens, "cgnm m")?,
                w_min: parse_tok(tokens, "cgnm w_min")?,
                w_max: parse_tok(tokens, "cgnm w_max")?,
                seed: parse_tok(tokens, "cgnm seed")?,
            }),
            "planted" => Ok(GraphSpec::PlantedCut {
                half: parse_tok(tokens, "planted half")?,
                internal_m: parse_tok(tokens, "planted internal_m")?,
                cross: parse_tok(tokens, "planted cross")?,
                seed: parse_tok(tokens, "planted seed")?,
            }),
            "cycle" => Ok(GraphSpec::Cycle { n: parse_tok(tokens, "cycle n")? }),
            "tree" => Ok(GraphSpec::RandomTree {
                n: parse_tok(tokens, "tree n")?,
                seed: parse_tok(tokens, "tree seed")?,
            }),
            other => Err(format!("unknown graph spec kind '{other}'")),
        }
    }
}

/// One operation against the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a graph under `name` (fails if the name is taken).
    Create {
        /// Registry key.
        name: String,
        /// How to build it.
        spec: GraphSpec,
    },
    /// Remove a graph and its cache.
    Drop {
        /// Registry key.
        name: String,
    },
    /// Mutate a graph.
    Mutate {
        /// Registry key.
        name: String,
        /// The change.
        op: Mutation,
    },
    /// Query a graph (answers are cached per mutation epoch).
    Query {
        /// Registry key.
        name: String,
        /// The question.
        query: Query,
    },
    /// List registered graph names (sorted).
    ListGraphs,
    /// Engine-level counters.
    Stats,
    /// Merged telemetry registry snapshot (`stats metrics` on the wire).
    /// Broadcast with the same barrier semantics as [`Request::Stats`].
    Metrics,
    /// Merged slow-query log (`stats slowlog` on the wire). Broadcast
    /// like [`Request::Stats`].
    Slowlog,
}

impl Request {
    /// Short stable label for per-action reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Create { .. } => "create",
            Request::Drop { .. } => "drop",
            Request::Mutate { op: Mutation::InsertEdge { .. }, .. } => "insert-edge",
            Request::Mutate { op: Mutation::DeleteEdge { .. }, .. } => "delete-edge",
            Request::Mutate { op: Mutation::ContractVertices { .. }, .. } => "contract",
            Request::Query { query, .. } => query.kind(),
            Request::ListGraphs => "list",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Slowlog => "slowlog",
        }
    }

    /// Serialize to one line of the workload trace format — a lossless,
    /// whitespace-delimited encoding (unlike [`std::fmt::Display`], which
    /// abbreviates graph specs for log compactness). Graph names are
    /// percent-encoded, so any name round-trips.
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_engine::{Query, Request};
    ///
    /// let req = Request::Query { name: "g000".into(), query: Query::StCutWeight { s: 2, t: 9 } };
    /// let line = req.to_trace_line();
    /// assert_eq!(line, "stcut g000 2 9");
    /// assert_eq!(Request::from_trace_line(&line), Ok(req));
    /// ```
    pub fn to_trace_line(&self) -> String {
        match self {
            Request::Create { name, spec } => {
                format!("create {} {}", encode_name(name), spec.to_trace_tokens())
            }
            Request::Drop { name } => format!("drop {}", encode_name(name)),
            Request::Mutate { name, op } => {
                let name = encode_name(name);
                match op {
                    Mutation::InsertEdge { u, v, w } => format!("insert {name} {u} {v} {w}"),
                    Mutation::DeleteEdge { u, v } => format!("delete {name} {u} {v}"),
                    Mutation::ContractVertices { u, v } => format!("contract {name} {u} {v}"),
                }
            }
            Request::Query { name, query } => {
                let name = encode_name(name);
                match query {
                    Query::ApproxMinCut { seed } => format!("approx {name} {seed}"),
                    Query::ExactMinCut => format!("exact {name}"),
                    Query::SingletonCut { seed } => format!("singleton {name} {seed}"),
                    Query::KCut { k } => format!("kcut {name} {k}"),
                    Query::Connectivity => format!("conn {name}"),
                    Query::StCutWeight { s, t } => format!("stcut {name} {s} {t}"),
                }
            }
            Request::ListGraphs => "list".to_string(),
            Request::Stats => "stats".to_string(),
            // Sub-commands of `stats`; a tab types the separator as easily
            // as a space, so `stats\tmetrics` on a socket works verbatim.
            Request::Metrics => "stats metrics".to_string(),
            Request::Slowlog => "stats slowlog".to_string(),
        }
    }

    /// Parse one line produced by [`Request::to_trace_line`]. Inverse of
    /// serialization: `from_trace_line(&r.to_trace_line()) == Ok(r)` for
    /// every request.
    pub fn from_trace_line(line: &str) -> Result<Request, String> {
        let mut tokens = line.split_whitespace();
        let kind = next_tok(&mut tokens, "request kind")?;
        let name = |tokens: &mut std::str::SplitWhitespace| -> Result<String, String> {
            decode_name(next_tok(tokens, "graph name")?)
        };
        let request = match kind {
            "create" => {
                let name = name(&mut tokens)?;
                let spec = GraphSpec::from_trace_tokens(&mut tokens)?;
                Request::Create { name, spec }
            }
            "drop" => Request::Drop { name: name(&mut tokens)? },
            "insert" => Request::Mutate {
                name: name(&mut tokens)?,
                op: Mutation::InsertEdge {
                    u: parse_tok(&mut tokens, "insert u")?,
                    v: parse_tok(&mut tokens, "insert v")?,
                    w: parse_tok(&mut tokens, "insert w")?,
                },
            },
            "delete" => Request::Mutate {
                name: name(&mut tokens)?,
                op: Mutation::DeleteEdge {
                    u: parse_tok(&mut tokens, "delete u")?,
                    v: parse_tok(&mut tokens, "delete v")?,
                },
            },
            "contract" => Request::Mutate {
                name: name(&mut tokens)?,
                op: Mutation::ContractVertices {
                    u: parse_tok(&mut tokens, "contract u")?,
                    v: parse_tok(&mut tokens, "contract v")?,
                },
            },
            "approx" => Request::Query {
                name: name(&mut tokens)?,
                query: Query::ApproxMinCut { seed: parse_tok(&mut tokens, "approx seed")? },
            },
            "exact" => Request::Query { name: name(&mut tokens)?, query: Query::ExactMinCut },
            "singleton" => Request::Query {
                name: name(&mut tokens)?,
                query: Query::SingletonCut { seed: parse_tok(&mut tokens, "singleton seed")? },
            },
            "kcut" => Request::Query {
                name: name(&mut tokens)?,
                query: Query::KCut { k: parse_tok(&mut tokens, "kcut k")? },
            },
            "conn" => Request::Query { name: name(&mut tokens)?, query: Query::Connectivity },
            "stcut" => Request::Query {
                name: name(&mut tokens)?,
                query: Query::StCutWeight {
                    s: parse_tok(&mut tokens, "stcut s")?,
                    t: parse_tok(&mut tokens, "stcut t")?,
                },
            },
            "list" => Request::ListGraphs,
            "stats" => {
                // Optional sub-command selects an introspection snapshot;
                // bare `stats` keeps its original meaning. An unknown
                // trailing word falls through to the trailing-token error.
                let mut peek = tokens.clone();
                match peek.next() {
                    Some("metrics") => {
                        tokens.next();
                        Request::Metrics
                    }
                    Some("slowlog") => {
                        tokens.next();
                        Request::Slowlog
                    }
                    _ => Request::Stats,
                }
            }
            other => return Err(format!("unknown request kind '{other}'")),
        };
        if let Some(extra) = tokens.next() {
            return Err(format!("trailing token '{extra}' after {kind} request"));
        }
        Ok(request)
    }

    /// Relative serve-cost weight of this request (see
    /// [`Query::cost_weight`]): what the adaptive placement layer charges
    /// a graph per routed request when accounting per-window load.
    pub fn cost_weight(&self) -> u64 {
        match self {
            // Graph materialization plus index construction.
            Request::Create { .. } => 4,
            // Edge-list edit plus index notification.
            Request::Mutate { .. } => 2,
            // Registry removal / registry scans / telemetry snapshots: cheap.
            Request::Drop { .. }
            | Request::ListGraphs
            | Request::Stats
            | Request::Metrics
            | Request::Slowlog => 1,
            Request::Query { query, .. } => query.cost_weight(),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Create { name, spec } => {
                // Specs log by shape, not full edge lists (logs stay small).
                let shape = match spec {
                    GraphSpec::Edges { n, edges } => format!("edges(n={n},m={})", edges.len()),
                    GraphSpec::Gnm { n, m, seed, .. } => format!("gnm(n={n},m={m},seed={seed})"),
                    GraphSpec::ConnectedGnm { n, m, seed, .. } => {
                        format!("cgnm(n={n},m={m},seed={seed})")
                    }
                    GraphSpec::PlantedCut { half, internal_m, cross, seed } => {
                        format!("planted(half={half},m={internal_m},cross={cross},seed={seed})")
                    }
                    GraphSpec::Cycle { n } => format!("cycle(n={n})"),
                    GraphSpec::RandomTree { n, seed } => format!("tree(n={n},seed={seed})"),
                };
                write!(f, "create {name} {shape}")
            }
            Request::Drop { name } => write!(f, "drop {name}"),
            Request::Mutate { name, op } => write!(f, "mutate {name} {op}"),
            Request::Query { name, query } => write!(f, "query {name} {query}"),
            Request::ListGraphs => write!(f, "list-graphs"),
            Request::Stats => write!(f, "stats"),
            Request::Metrics => write!(f, "stats-metrics"),
            Request::Slowlog => write!(f, "stats-slowlog"),
        }
    }
}

/// The engine's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Graph registered.
    Created {
        /// Registry key.
        name: String,
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
    },
    /// Graph removed.
    Dropped {
        /// Registry key.
        name: String,
    },
    /// Mutation applied.
    Mutated {
        /// Registry key.
        name: String,
        /// Epoch after the mutation.
        epoch: u64,
        /// Vertex count after the mutation.
        n: usize,
        /// Edge count after the mutation.
        m: usize,
    },
    /// A cut-valued answer (min cut, singleton cut, s-t cut).
    CutValue {
        /// Cut weight.
        weight: u64,
        /// Size of the realizing side (0 when the query reports only a
        /// weight, e.g. s-t cuts).
        side_size: usize,
        /// Served from the epoch cache.
        cached: bool,
    },
    /// A k-cut answer.
    KCutValue {
        /// Total crossing weight.
        weight: u64,
        /// Number of parts.
        parts: usize,
        /// Served from the epoch cache.
        cached: bool,
    },
    /// A connectivity answer.
    ConnectivityValue {
        /// Connected-component count.
        components: usize,
        /// Served from the epoch cache.
        cached: bool,
    },
    /// Registered graph names, sorted.
    Graphs {
        /// Registry keys.
        names: Vec<String>,
    },
    /// Engine-level counters snapshot.
    EngineStats {
        /// Registered graphs.
        graphs: usize,
        /// Queries served.
        queries: u64,
        /// Cache hits.
        cache_hits: u64,
        /// Cache misses.
        cache_misses: u64,
        /// Mutations applied.
        mutations: u64,
    },
    /// Merged telemetry registry snapshot (answer to [`Request::Metrics`]).
    Metrics {
        /// `cut-metrics/1` single-line wire form (see
        /// `cut_obs::Registry::to_wire`); render with
        /// `Registry::from_wire` + `render_text`/`render_json`.
        snapshot: String,
    },
    /// Merged slow-query log (answer to [`Request::Slowlog`]).
    Slowlog {
        /// `cut-slowlog/1` single-line wire form (see
        /// `cut_obs::SlowLog::to_wire`).
        snapshot: String,
    },
    /// The request failed; the engine state is unchanged.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Parse the next token as a strict `0`/`1` boolean (the trace encoding of
/// `cached` flags). Anything else — including `true`/`false` — is rejected,
/// so a corrupted line cannot silently flip a flag.
fn parse_bool_tok<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<bool, String> {
    match next_tok(tokens, what)? {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad {what} '{other}' in trace line (want 0 or 1)")),
    }
}

impl Response {
    /// Serialize to one line of the wire/trace format — the lossless
    /// counterpart of [`Request::to_trace_line`], and the encoding
    /// `cut-server` puts on the socket. Graph names and error messages are
    /// percent-encoded, so any response round-trips byte-exactly; in
    /// particular `from_trace_line(&r.to_trace_line()) == Ok(r)` and the
    /// decoded response's [`std::fmt::Display`] (the operation-log form the
    /// stress digest hashes) is identical to the original's.
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_engine::Response;
    ///
    /// let resp = Response::CutValue { weight: 7, side_size: 3, cached: true };
    /// let line = resp.to_trace_line();
    /// assert_eq!(line, "cut 7 3 1");
    /// assert_eq!(Response::from_trace_line(&line), Ok(resp));
    /// ```
    pub fn to_trace_line(&self) -> String {
        match self {
            Response::Created { name, n, m } => format!("created {} {n} {m}", encode_name(name)),
            Response::Dropped { name } => format!("dropped {}", encode_name(name)),
            Response::Mutated { name, epoch, n, m } => {
                format!("mutated {} {epoch} {n} {m}", encode_name(name))
            }
            Response::CutValue { weight, side_size, cached } => {
                format!("cut {weight} {side_size} {}", *cached as u8)
            }
            Response::KCutValue { weight, parts, cached } => {
                format!("kcut {weight} {parts} {}", *cached as u8)
            }
            Response::ConnectivityValue { components, cached } => {
                format!("conn {components} {}", *cached as u8)
            }
            Response::Graphs { names } => {
                let mut s = format!("graphs {}", names.len());
                for name in names {
                    s.push(' ');
                    s.push_str(&encode_name(name));
                }
                s
            }
            Response::EngineStats { graphs, queries, cache_hits, cache_misses, mutations } => {
                format!("stats {graphs} {queries} {cache_hits} {cache_misses} {mutations}")
            }
            Response::Metrics { snapshot } => format!("metrics {}", encode_name(snapshot)),
            Response::Slowlog { snapshot } => format!("slowlog {}", encode_name(snapshot)),
            Response::Error { message } => format!("error {}", encode_name(message)),
        }
    }

    /// Parse one line produced by [`Response::to_trace_line`]. Strict, like
    /// the request parser: unknown kinds, truncated headers, missing
    /// fields, malformed booleans, and trailing tokens are all errors —
    /// this is the wire format, so a garbled line must surface as a typed
    /// protocol error, never as a silently wrong answer.
    pub fn from_trace_line(line: &str) -> Result<Response, String> {
        let mut tokens = line.split_whitespace();
        let kind = next_tok(&mut tokens, "response kind")?;
        let name = |tokens: &mut std::str::SplitWhitespace| -> Result<String, String> {
            decode_name(next_tok(tokens, "graph name")?)
        };
        let response = match kind {
            "created" => Response::Created {
                name: name(&mut tokens)?,
                n: parse_tok(&mut tokens, "created n")?,
                m: parse_tok(&mut tokens, "created m")?,
            },
            "dropped" => Response::Dropped { name: name(&mut tokens)? },
            "mutated" => Response::Mutated {
                name: name(&mut tokens)?,
                epoch: parse_tok(&mut tokens, "mutated epoch")?,
                n: parse_tok(&mut tokens, "mutated n")?,
                m: parse_tok(&mut tokens, "mutated m")?,
            },
            "cut" => Response::CutValue {
                weight: parse_tok(&mut tokens, "cut weight")?,
                side_size: parse_tok(&mut tokens, "cut side size")?,
                cached: parse_bool_tok(&mut tokens, "cut cached flag")?,
            },
            "kcut" => Response::KCutValue {
                weight: parse_tok(&mut tokens, "kcut weight")?,
                parts: parse_tok(&mut tokens, "kcut parts")?,
                cached: parse_bool_tok(&mut tokens, "kcut cached flag")?,
            },
            "conn" => Response::ConnectivityValue {
                components: parse_tok(&mut tokens, "connectivity components")?,
                cached: parse_bool_tok(&mut tokens, "connectivity cached flag")?,
            },
            "graphs" => {
                let count: usize = parse_tok(&mut tokens, "graphs count")?;
                let mut names = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    names.push(name(&mut tokens)?);
                }
                Response::Graphs { names }
            }
            "stats" => Response::EngineStats {
                graphs: parse_tok(&mut tokens, "stats graphs")?,
                queries: parse_tok(&mut tokens, "stats queries")?,
                cache_hits: parse_tok(&mut tokens, "stats cache hits")?,
                cache_misses: parse_tok(&mut tokens, "stats cache misses")?,
                mutations: parse_tok(&mut tokens, "stats mutations")?,
            },
            "metrics" => Response::Metrics { snapshot: name(&mut tokens)? },
            "slowlog" => Response::Slowlog { snapshot: name(&mut tokens)? },
            "error" => Response::Error { message: name(&mut tokens)? },
            other => return Err(format!("unknown response kind '{other}'")),
        };
        if let Some(extra) = tokens.next() {
            return Err(format!("trailing token '{extra}' after {kind} response"));
        }
        Ok(response)
    }

    /// True when this response was served from the query cache.
    pub fn was_cached(&self) -> bool {
        matches!(
            self,
            Response::CutValue { cached: true, .. }
                | Response::KCutValue { cached: true, .. }
                | Response::ConnectivityValue { cached: true, .. }
        )
    }

    /// The same response with its `cached` flag set.
    pub(crate) fn as_cached(&self) -> Response {
        let mut r = self.clone();
        match &mut r {
            Response::CutValue { cached, .. }
            | Response::KCutValue { cached, .. }
            | Response::ConnectivityValue { cached, .. } => *cached = true,
            _ => {}
        }
        r
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Created { name, n, m } => write!(f, "created {name} n={n} m={m}"),
            Response::Dropped { name } => write!(f, "dropped {name}"),
            Response::Mutated { name, epoch, n, m } => {
                write!(f, "mutated {name} epoch={epoch} n={n} m={m}")
            }
            Response::CutValue { weight, side_size, cached } => {
                write!(f, "cut weight={weight} side={side_size} cached={cached}")
            }
            Response::KCutValue { weight, parts, cached } => {
                write!(f, "kcut weight={weight} parts={parts} cached={cached}")
            }
            Response::ConnectivityValue { components, cached } => {
                write!(f, "connectivity components={components} cached={cached}")
            }
            Response::Graphs { names } => write!(f, "graphs [{}]", names.join(", ")),
            Response::EngineStats { graphs, queries, cache_hits, cache_misses, mutations } => {
                write!(
                    f,
                    "stats graphs={graphs} queries={queries} hits={cache_hits} \
                     misses={cache_misses} mutations={mutations}"
                )
            }
            // Telemetry snapshots log whole: they are on-demand diagnostic
            // dumps, never part of a digest-compared stream.
            Response::Metrics { snapshot } => write!(f, "metrics {snapshot}"),
            Response::Slowlog { snapshot } => write!(f, "slowlog {snapshot}"),
            Response::Error { message } => write!(f, "error: {message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weights_order_by_algorithmic_heft() {
        // The proxy only needs sane ratios: connectivity (DSU fast path)
        // cheapest, k-cut (recursive splitting) dearest, mutations between.
        let connectivity = Request::Query { name: "g".into(), query: Query::Connectivity };
        let kcut = Request::Query { name: "g".into(), query: Query::KCut { k: 3 } };
        let exact = Request::Query { name: "g".into(), query: Query::ExactMinCut };
        let mutate =
            Request::Mutate { name: "g".into(), op: Mutation::InsertEdge { u: 0, v: 1, w: 1 } };
        assert!(connectivity.cost_weight() < mutate.cost_weight());
        assert!(mutate.cost_weight() < exact.cost_weight());
        assert!(exact.cost_weight() < kcut.cost_weight());
        assert_eq!(Request::ListGraphs.cost_weight(), Request::Stats.cost_weight());
        // Every request kind has a positive weight (a zero weight would
        // make a graph invisible to the rebalancer).
        for q in [
            Query::ApproxMinCut { seed: 0 },
            Query::ExactMinCut,
            Query::SingletonCut { seed: 0 },
            Query::KCut { k: 2 },
            Query::Connectivity,
            Query::StCutWeight { s: 0, t: 1 },
        ] {
            assert!(q.cost_weight() > 0, "{q} must cost something");
        }
    }

    #[test]
    fn trace_lines_round_trip_every_request_shape() {
        let requests = vec![
            Request::Create {
                name: "g".into(),
                spec: GraphSpec::Edges { n: 4, edges: vec![(0, 1, 9), (2, 3, 1)] },
            },
            Request::Create { name: "g".into(), spec: GraphSpec::Edges { n: 2, edges: vec![] } },
            Request::Create {
                name: "g".into(),
                spec: GraphSpec::Gnm { n: 10, m: 20, w_min: 1, w_max: 5, seed: 42 },
            },
            Request::Create {
                name: "g".into(),
                spec: GraphSpec::ConnectedGnm { n: 10, m: 20, w_min: 2, w_max: 7, seed: u64::MAX },
            },
            Request::Create {
                name: "g".into(),
                spec: GraphSpec::PlantedCut { half: 8, internal_m: 30, cross: 3, seed: 7 },
            },
            Request::Create { name: "g".into(), spec: GraphSpec::Cycle { n: 9 } },
            Request::Create { name: "g".into(), spec: GraphSpec::RandomTree { n: 12, seed: 3 } },
            Request::Drop { name: "g".into() },
            Request::Mutate { name: "g".into(), op: Mutation::InsertEdge { u: 0, v: 7, w: 16 } },
            Request::Mutate { name: "g".into(), op: Mutation::DeleteEdge { u: 3, v: 1 } },
            Request::Mutate { name: "g".into(), op: Mutation::ContractVertices { u: 2, v: 5 } },
            Request::Query { name: "g".into(), query: Query::ApproxMinCut { seed: 11 } },
            Request::Query { name: "g".into(), query: Query::ExactMinCut },
            Request::Query { name: "g".into(), query: Query::SingletonCut { seed: 0 } },
            Request::Query { name: "g".into(), query: Query::KCut { k: 3 } },
            Request::Query { name: "g".into(), query: Query::Connectivity },
            Request::Query { name: "g".into(), query: Query::StCutWeight { s: 1, t: 8 } },
            Request::ListGraphs,
            Request::Stats,
            Request::Metrics,
            Request::Slowlog,
        ];
        for req in requests {
            let line = req.to_trace_line();
            assert_eq!(Request::from_trace_line(&line), Ok(req.clone()), "line: {line}");
        }
    }

    #[test]
    fn stats_subcommands_parse_with_any_whitespace_separator() {
        // The protocol docs advertise `stats\tmetrics`; the codec
        // tokenizes on any whitespace, so tab and space both work.
        assert_eq!(Request::from_trace_line("stats\tmetrics"), Ok(Request::Metrics));
        assert_eq!(Request::from_trace_line("stats metrics"), Ok(Request::Metrics));
        assert_eq!(Request::from_trace_line("stats\tslowlog"), Ok(Request::Slowlog));
        assert_eq!(Request::from_trace_line("stats"), Ok(Request::Stats));
        assert!(Request::from_trace_line("stats bogus").is_err());
        assert!(Request::from_trace_line("stats metrics extra").is_err());
    }

    #[test]
    fn trace_names_escape_whitespace_and_percent() {
        for name in ["plain", "two words", "tab\there", "line\nbreak", "100%", "%20", "", "%-"] {
            let req = Request::Drop { name: name.to_string() };
            let line = req.to_trace_line();
            assert!(!line.trim_end().contains('\n'), "encoded line must stay one line: {line:?}");
            assert_eq!(Request::from_trace_line(&line), Ok(req), "name: {name:?}");
        }
    }

    #[test]
    fn from_trace_line_rejects_malformed_input() {
        for bad in [
            "",
            "warp g",
            "insert g 0 1",     // missing weight
            "insert g 0 1 2 3", // trailing token
            "kcut g notanumber",
            "create g gnm 1 2 3",    // truncated spec
            "create g blob 1 2 3 4", // unknown spec kind
        ] {
            assert!(Request::from_trace_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn response_trace_lines_round_trip_every_shape() {
        let responses = vec![
            Response::Created { name: "g000".into(), n: 48, m: 96 },
            Response::Dropped { name: "two words".into() },
            Response::Mutated { name: "g".into(), epoch: 17, n: 10, m: 20 },
            Response::CutValue { weight: 0, side_size: 0, cached: false },
            Response::CutValue { weight: u64::MAX, side_size: 31, cached: true },
            Response::KCutValue { weight: 9, parts: 3, cached: false },
            Response::ConnectivityValue { components: 1, cached: true },
            Response::Graphs { names: vec![] },
            Response::Graphs { names: vec!["a".into(), "".into(), "100%".into()] },
            Response::EngineStats {
                graphs: 8,
                queries: 10_000,
                cache_hits: 7_400,
                cache_misses: 2_600,
                mutations: 1_200,
            },
            Response::Metrics { snapshot: "cut-metrics/1 c 0 g 0 h 0".into() },
            Response::Slowlog { snapshot: "cut-slowlog/1 8 0".into() },
            Response::Error { message: "graph 'g' not found".into() },
            Response::Error { message: String::new() },
        ];
        for resp in responses {
            let line = resp.to_trace_line();
            assert!(!line.contains('\n'), "encoded line must stay one line: {line:?}");
            assert_eq!(Response::from_trace_line(&line), Ok(resp.clone()), "line: {line}");
            // The wire hop must not perturb the operation log the stress
            // digest hashes: Display survives the round trip byte-exactly.
            let back = Response::from_trace_line(&line).unwrap();
            assert_eq!(format!("{back}"), format!("{resp}"));
        }
    }

    #[test]
    fn response_from_trace_line_rejects_malformed_input() {
        for bad in [
            "",
            "warped 1 2",        // unknown kind
            "created g 4",       // truncated header (missing m)
            "created g 4 5 6",   // trailing token
            "cut 7 3",           // missing cached flag
            "cut 7 3 maybe",     // non-0/1 cached flag
            "cut 7 3 true",      // Display form is not the wire form
            "conn x 0",          // non-numeric field
            "graphs 2 only-one", // fewer names than the count promises
            "graphs two a b",    // non-numeric count
            "stats 1 2 3 4",     // truncated stats
            "metrics",           // missing snapshot token
            "slowlog",           // missing snapshot token
            "error",             // missing message token
            "mutated g 1 2",     // truncated mutated
        ] {
            assert!(Response::from_trace_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    /// Names (and error messages) exercising every escape the codec knows.
    fn name_from_seed(seed: u64, len: usize) -> String {
        const PALETTE: [char; 10] = ['g', '0', '%', ' ', '\t', '\n', '\r', '-', 'é', '7'];
        let mut s = String::new();
        let mut x = seed;
        for _ in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push(PALETTE[(x >> 33) as usize % PALETTE.len()]);
        }
        s
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]

        /// Wire-format pinning: every reachable response round-trips
        /// losslessly, including hostile graph names and messages.
        #[test]
        fn response_trace_round_trip_is_lossless(
            (variant, a, b, flag, nseed) in
                (0u8..11, proptest::any::<u64>(), proptest::any::<u64>(),
                 proptest::any::<bool>(), proptest::any::<u64>())
        ) {
            let name = name_from_seed(nseed, (nseed % 7) as usize);
            let resp = match variant {
                0 => Response::Created { name, n: a as usize, m: b as usize },
                1 => Response::Dropped { name },
                2 => Response::Mutated { name, epoch: a, n: b as usize, m: (a ^ b) as usize },
                3 => Response::CutValue { weight: a, side_size: b as usize, cached: flag },
                4 => Response::KCutValue { weight: a, parts: b as usize, cached: flag },
                5 => Response::ConnectivityValue { components: a as usize, cached: flag },
                6 => Response::Graphs {
                    names: (0..(a % 5))
                        .map(|i| name_from_seed(nseed.wrapping_add(i), (b % 6) as usize))
                        .collect(),
                },
                7 => Response::EngineStats {
                    graphs: a as usize,
                    queries: b,
                    cache_hits: a ^ b,
                    cache_misses: a.wrapping_add(b),
                    mutations: a.rotate_left(17),
                },
                8 => Response::Metrics { snapshot: name },
                9 => Response::Slowlog { snapshot: name },
                _ => Response::Error { message: name },
            };
            let line = resp.to_trace_line();
            proptest::prop_assert!(!line.contains('\n'), "line must stay one line: {:?}", line);
            proptest::prop_assert_eq!(Response::from_trace_line(&line), Ok(resp));
        }

        /// Truncation never parses: chopping any trailing portion off a
        /// valid line (leaving at least the kind token intact) is rejected
        /// rather than decoded as a shorter valid response.
        #[test]
        fn response_trace_rejects_every_truncation(
            (a, b, cut_at) in
                (proptest::any::<u64>(), proptest::any::<u64>(), proptest::any::<u64>())
        ) {
            let resp = Response::Mutated {
                name: "graph name".into(),
                epoch: a,
                n: b as usize,
                m: (a ^ b) as usize,
            };
            let line = resp.to_trace_line();
            // Truncate at a boundary strictly inside the token stream:
            // keep the kind, drop at least one later token.
            let cuts: Vec<usize> = (0..line.len())
                .filter(|&i| i > "mutated".len() && line.as_bytes()[i] == b' ')
                .collect();
            let cut = cuts[(cut_at % cuts.len() as u64) as usize];
            proptest::prop_assert!(
                Response::from_trace_line(&line[..cut]).is_err(),
                "truncated line must not parse: {:?}",
                &line[..cut]
            );
        }
    }
}
