//! Seeded workload generation: a deterministic stream of engine requests,
//! optionally **trace-shaped** — phased, timestamped, and drifting.
//!
//! The generator follows the algorithm-engineering playbook for cut
//! benchmarks: a weighted action mix (`WeightedIndex`) decides *what* each
//! operation does, and a Zipf-skewed popularity table decides *which* graph
//! it targets — a few hot graphs absorb most of the traffic (which is what
//! makes the engine's epoch cache earn its keep), while the long tail keeps
//! the registry honest.
//!
//! On top of that sits the **timeline layer**: a [`Timeline`] is a sequence
//! of [`Phase`]s, each with its own arrival process ([`ArrivalProcess`]:
//! steady pacing, Poisson bursts, a diurnal ramp), action mix, Zipf
//! exponent, and popularity drift ([`PopularityDrift`]: hot-set rotation or
//! a flash crowd that yanks the Zipf head onto another graph mid-run).
//! [`Workload::generate_timeline`] emits the concatenated phases as one
//! stream of requests with deterministic arrival timestamps — the open-loop
//! input the stress harness measures latency-under-load against.
//!
//! Determinism is load-bearing everywhere:
//!
//! - Every phase draws from its **own sub-seeded RNG** (derived from the
//!   master seed and the phase *name*), so inserting or removing a phase
//!   never perturbs the random streams of phases around it. (Mutations
//!   still carry state across phases through the shared graph mirrors —
//!   a query-only phase is entirely transparent to its successors.)
//! - The generator mirrors engine state (per-graph vertex counts and the
//!   multiset of present edges) so every emitted mutation is valid by
//!   construction: replaying a workload never produces `Response::Error`,
//!   and identical seeds produce identical request streams, timestamps
//!   included.
//! - A workload round-trips **byte-identically** through the trace format
//!   ([`Workload::to_trace`] / [`Workload::from_trace`]): save a run,
//!   diff it, replay it later — same requests, same timestamps, same
//!   stress digest.

use std::collections::BTreeMap;

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::request::{contract_relabel, GraphSpec, Mutation, Query, Request};

/// Relative weights of the operations in a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionMix {
    /// Insert a random weighted edge.
    pub insert_edge: f64,
    /// Delete a random present edge.
    pub delete_edge: f64,
    /// Contract a random vertex pair.
    pub contract: f64,
    /// `(2+ε)`-approximate min cut (seed drawn from a small pool, so
    /// repeats can hit the cache).
    pub approx_min_cut: f64,
    /// Exact min cut.
    pub exact_min_cut: f64,
    /// Smallest singleton cut.
    pub singleton_cut: f64,
    /// Approximate min k-cut.
    pub kcut: f64,
    /// Connected components.
    pub connectivity: f64,
    /// Exact s-t cut weight.
    pub st_cut: f64,
}

impl Default for ActionMix {
    /// A read-heavy mix: ~70% queries, ~30% mutations — the regime the
    /// epoch cache is designed for.
    fn default() -> Self {
        Self {
            insert_edge: 18.0,
            delete_edge: 8.0,
            contract: 2.0,
            approx_min_cut: 14.0,
            exact_min_cut: 8.0,
            singleton_cut: 10.0,
            kcut: 4.0,
            connectivity: 22.0,
            st_cut: 14.0,
        }
    }
}

impl ActionMix {
    /// A mutation-heavy mix (cache-hostile; useful for stressing rebuild
    /// and invalidation paths).
    pub fn write_heavy() -> Self {
        Self {
            insert_edge: 40.0,
            delete_edge: 25.0,
            contract: 5.0,
            approx_min_cut: 5.0,
            exact_min_cut: 5.0,
            singleton_cut: 5.0,
            kcut: 2.0,
            connectivity: 8.0,
            st_cut: 5.0,
        }
    }

    /// A query-only mix (every op after warm-up should be a cache hit).
    pub fn read_only() -> Self {
        Self {
            insert_edge: 0.0,
            delete_edge: 0.0,
            contract: 0.0,
            approx_min_cut: 20.0,
            exact_min_cut: 15.0,
            singleton_cut: 15.0,
            kcut: 5.0,
            connectivity: 25.0,
            st_cut: 20.0,
        }
    }

    fn weights(&self) -> [f64; 9] {
        [
            self.insert_edge,
            self.delete_edge,
            self.contract,
            self.approx_min_cut,
            self.exact_min_cut,
            self.singleton_cut,
            self.kcut,
            self.connectivity,
            self.st_cut,
        ]
    }
}

/// Parameters of a generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of operations after the create prologue.
    pub ops: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of registered graphs.
    pub graphs: usize,
    /// Vertices per graph at creation.
    pub initial_n: usize,
    /// Zipf exponent for graph popularity (0 = uniform; ~1 = classic skew).
    pub zipf_exponent: f64,
    /// Distinct query seeds per graph (smaller pool ⇒ more cache hits).
    pub query_seed_pool: u64,
    /// The action mix.
    pub mix: ActionMix,
    /// When nonzero, graph 0 (`g000`) is created as a *whale*: a sparse
    /// connected G(n, m) with this many vertices instead of the
    /// `initial_n`-sized family member — the one-huge-graph shape the
    /// [`Timeline::whale`] preset pairs with. Zero (the default) leaves
    /// the population unchanged, and the prologue's random draws are
    /// identical either way.
    pub whale_n: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            ops: 1_000,
            seed: 0xC07,
            graphs: 8,
            initial_n: 48,
            zipf_exponent: 1.1,
            query_seed_pool: 4,
            mix: ActionMix::default(),
            whale_n: 0,
        }
    }
}

/// When operations of a phase *arrive* — the open-loop load shape.
///
/// Rates are in operations per second; timestamps are deterministic
/// functions of the phase's sub-seeded RNG, so two generations of the same
/// timeline produce identical schedules. Time-varying processes
/// ([`ArrivalProcess::Bursts`], [`ArrivalProcess::Diurnal`]) evaluate their
/// rate at the phase-relative time, so a phase's shape is self-contained.
///
/// # Examples
///
/// ```
/// use cut_engine::{ArrivalProcess, Timeline, Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig { graphs: 4, seed: 9, ..WorkloadConfig::default() };
/// let timeline = Timeline::single("paced", 100, ArrivalProcess::Steady { rate: 10_000.0 });
/// let wl = Workload::generate_timeline(&cfg, &timeline);
/// assert_eq!(wl.arrivals.len(), 100);
/// // Steady pacing: op k arrives at (k+1) * 100µs.
/// assert_eq!(wl.arrivals[0], 100_000);
/// assert_eq!(wl.arrivals[99], 10_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: no pacing. Operations carry the phase-start timestamp
    /// and the harness issues them as fast as the engine drains them. (A
    /// `Closed` phase inside an otherwise open timeline is a *flash dump*:
    /// its whole batch lands at one instant.)
    Closed,
    /// Fixed inter-arrival gap of `1/rate` seconds — the metronome.
    Steady {
        /// Operations per second.
        rate: f64,
    },
    /// Poisson arrivals: exponential inter-arrival gaps with mean
    /// `1/rate` — memoryless, with the natural short-range clumping of
    /// real traffic.
    Poisson {
        /// Mean operations per second.
        rate: f64,
    },
    /// ON/OFF bursts: Poisson at `base` between bursts; for the first
    /// `burst` seconds of every `period` seconds (phase-relative), Poisson
    /// at `peak`. The flash-sale load shape.
    Bursts {
        /// Quiet-interval mean rate (ops/sec).
        base: f64,
        /// In-burst mean rate (ops/sec).
        peak: f64,
        /// Seconds from one burst start to the next.
        period: f64,
        /// Burst length in seconds (must be < `period`).
        burst: f64,
    },
    /// A sinusoidal ramp between `low` and `high` over `period` seconds —
    /// a compressed diurnal cycle (starts at `low`, peaks at `period/2`).
    Diurnal {
        /// Trough mean rate (ops/sec).
        low: f64,
        /// Peak mean rate (ops/sec).
        high: f64,
        /// Seconds per full cycle.
        period: f64,
    },
}

impl ArrivalProcess {
    /// The next inter-arrival gap in seconds, given the phase-relative
    /// time `t`. Consumes RNG draws only for stochastic processes, so a
    /// `Closed` or `Steady` phase's request stream is independent of its
    /// arrival bookkeeping.
    fn gap_secs(&self, rng: &mut SmallRng, t: f64) -> f64 {
        // Exponential inter-arrival with mean 1/rate; 1 - u is in (0, 1]
        // so ln never sees zero.
        let exp = |rng: &mut SmallRng, rate: f64| -(1.0 - rng.gen::<f64>()).ln() / rate;
        match *self {
            ArrivalProcess::Closed => 0.0,
            ArrivalProcess::Steady { rate } => 1.0 / rate,
            ArrivalProcess::Poisson { rate } => exp(rng, rate),
            ArrivalProcess::Bursts { base, peak, period, burst } => {
                let in_burst = t.rem_euclid(period.max(f64::MIN_POSITIVE)) < burst;
                exp(rng, if in_burst { peak } else { base })
            }
            ArrivalProcess::Diurnal { low, high, period } => {
                let phase =
                    t.rem_euclid(period.max(f64::MIN_POSITIVE)) / period.max(f64::MIN_POSITIVE);
                let rate = low + (high - low) * 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos());
                exp(rng, rate.max(low.min(high)))
            }
        }
    }

    /// True for processes that emit real timestamps (everything but
    /// [`ArrivalProcess::Closed`]).
    fn is_open(&self) -> bool {
        !matches!(self, ArrivalProcess::Closed)
    }

    /// Validate rates/periods; the generator calls this per phase so a bad
    /// timeline fails loudly before any request is emitted.
    fn validate(&self) -> Result<(), String> {
        let pos = |v: f64, what: &str| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{what} must be positive and finite (got {v})"))
            }
        };
        match *self {
            ArrivalProcess::Closed => Ok(()),
            ArrivalProcess::Steady { rate } | ArrivalProcess::Poisson { rate } => {
                pos(rate, "arrival rate")
            }
            ArrivalProcess::Bursts { base, peak, period, burst } => {
                pos(base, "burst base rate")?;
                pos(peak, "burst peak rate")?;
                pos(period, "burst period")?;
                pos(burst, "burst length")?;
                if burst >= period {
                    return Err(format!("burst length {burst} must be < period {period}"));
                }
                Ok(())
            }
            ArrivalProcess::Diurnal { low, high, period } => {
                pos(low, "diurnal low rate")?;
                pos(high, "diurnal high rate")?;
                pos(period, "diurnal period")
            }
        }
    }
}

/// How a phase's popularity ranking maps onto actual graphs — the knob
/// that makes the Zipf *head* move mid-run instead of pinning one graph
/// as eternally hot.
///
/// The Zipf table ranks abstract positions (rank 0 hottest); the drift
/// maps ranks to graph indices. Targets are taken modulo the graph count,
/// so a drift never lands out of range even on small registries.
///
/// # Examples
///
/// ```
/// use cut_engine::{PopularityDrift, Request};
/// use cut_engine::{ArrivalProcess, Phase, Timeline, Workload, WorkloadConfig};
///
/// // A flash crowd: 3/4 of the phase's arrivals pile onto graph 2.
/// let phase = Phase {
///     drift: PopularityDrift::FlashCrowd { target: 2, share: 0.75 },
///     ..Phase::named("flash", 400)
/// };
/// let cfg = WorkloadConfig { graphs: 4, zipf_exponent: 1.2, ..WorkloadConfig::default() };
/// let wl = Workload::generate_timeline(&cfg, &Timeline { phases: vec![phase] });
/// let on = |g: &str| {
///     wl.operations
///         .iter()
///         .filter(|r| {
///             matches!(r, Request::Mutate { name, .. } | Request::Query { name, .. } if name == g)
///         })
///         .count()
/// };
/// assert!(on("g002") > on("g000"), "the flash target must out-draw the usual head");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PopularityDrift {
    /// Rank `i` is graph `i` for the whole phase — the classic static skew.
    None,
    /// Hot-set drift: the rank→graph mapping rotates by one position every
    /// `every` emitted operations, so the Zipf head crawls across the
    /// registry during the phase (`every = 0` behaves as `1`).
    Rotate {
        /// Operations between rotation steps.
        every: usize,
    },
    /// Flash crowd: a `share` fraction of the phase's arrivals *is* the
    /// crowd and rides graph `target` directly; the rest is organic
    /// traffic keeping the phase's unmodified Zipf ranking (the usual
    /// head stays the organic head). This couples popularity to the
    /// arrival surge: a phase arriving at `k×` the baseline rate with
    /// `share = (k-1)/k` means exactly the *extra* arrivals are the
    /// crowd — organic load on every other graph is unchanged, which is
    /// what an engine under a real flash crowd sees. (The old head-swap
    /// formulation re-drew popularity independently of arrivals, so the
    /// "crowd" was just a relabeled static skew.)
    FlashCrowd {
        /// Graph index the crowd lands on (taken modulo the graph count).
        target: usize,
        /// Fraction of arrivals that are crowd traffic (clamped to 0..=1).
        share: f64,
    },
}

impl PopularityDrift {
    /// Map a sampled Zipf rank to a graph index, `emitted` operations into
    /// the phase. Draws the crowd-vs-organic coin from `rng`, so the
    /// mapping stays a pure function of the phase's seeded stream.
    fn graph_for(&self, rank: usize, emitted: usize, graphs: usize, rng: &mut SmallRng) -> usize {
        match *self {
            PopularityDrift::None => rank,
            PopularityDrift::Rotate { every } => (rank + emitted / every.max(1)) % graphs,
            PopularityDrift::FlashCrowd { target, share } => {
                if rng.gen_bool(share.clamp(0.0, 1.0)) {
                    target % graphs
                } else {
                    rank
                }
            }
        }
    }
}

/// One contiguous segment of a [`Timeline`]: how many operations, how they
/// arrive, what they do, and which graphs they favor.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name. Doubles as the phase's RNG identity: the sub-seed is
    /// derived from `(master seed, name)`, so renaming a phase reshuffles
    /// *its* stream only, and phases sharing a name draw identical streams.
    pub name: String,
    /// Operations this phase emits (0 is allowed: an empty phase is
    /// invisible to the request stream *and* to other phases' RNG).
    pub ops: usize,
    /// The arrival process (open-loop timestamps).
    pub arrival: ArrivalProcess,
    /// The action mix for this phase.
    pub mix: ActionMix,
    /// Zipf popularity exponent for this phase (0 = uniform).
    pub zipf_exponent: f64,
    /// How ranks map to graphs over the phase.
    pub drift: PopularityDrift,
}

impl Phase {
    /// A closed-loop phase with the default mix and skew — the base other
    /// phases are built from with struct update syntax.
    pub fn named(name: &str, ops: usize) -> Phase {
        Phase {
            name: name.to_string(),
            ops,
            arrival: ArrivalProcess::Closed,
            mix: ActionMix::default(),
            zipf_exponent: WorkloadConfig::default().zipf_exponent,
            drift: PopularityDrift::None,
        }
    }
}

/// A phased load shape: the phases run back to back, sharing graph state
/// (mutations persist) but each drawing from its own sub-seeded RNG.
///
/// Presets ([`Timeline::bursty`], [`Timeline::diurnal`],
/// [`Timeline::flash`]) build the trace shapes the stress harness exposes
/// as `--phases`; custom timelines compose the same pieces.
///
/// # Examples
///
/// ```
/// use cut_engine::{Timeline, Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig { seed: 3, graphs: 6, ..WorkloadConfig::default() };
/// let timeline = Timeline::bursty(2_000, 50_000.0, cfg.mix, cfg.zipf_exponent);
/// assert_eq!(timeline.total_ops(), 2_000);
///
/// let wl = Workload::generate_timeline(&cfg, &timeline);
/// assert_eq!(wl.operations.len(), 2_000);
/// assert_eq!(wl.arrivals.len(), 2_000, "open-loop timelines timestamp every op");
/// // Phase boundaries are recorded for per-phase latency reporting.
/// assert_eq!(wl.phases.iter().map(|(_, ops)| ops).sum::<usize>(), 2_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The phases, in execution order.
    pub phases: Vec<Phase>,
}

impl Timeline {
    /// A one-phase timeline with the default mix and skew.
    pub fn single(name: &str, ops: usize, arrival: ArrivalProcess) -> Timeline {
        Timeline { phases: vec![Phase { arrival, ..Phase::named(name, ops) }] }
    }

    /// The bursty preset: a steady warm-up, an ON/OFF burst phase with
    /// hot-set rotation, a flash-crowd spike on a cold graph, and a slow
    /// cool-down. `rate` is the baseline ops/sec; the burst peaks at 6×
    /// and the flash crowd runs at 3×.
    pub fn bursty(ops: usize, rate: f64, mix: ActionMix, zipf_exponent: f64) -> Timeline {
        let warm = ops / 5;
        let burst = ops * 3 / 10;
        let flash = ops / 4;
        let cool = ops - warm - burst - flash;
        // Aim for ~3 burst cycles across the burst phase (mean rate there
        // is roughly 8/3 the baseline with a 1:2 on:off split at 6×).
        let burst_span = burst as f64 / (rate * 8.0 / 3.0).max(f64::MIN_POSITIVE);
        let period = (burst_span / 3.0).max(1e-6);
        let base = Phase { mix, zipf_exponent, ..Phase::named("", 0) };
        Timeline {
            phases: vec![
                Phase {
                    arrival: ArrivalProcess::Steady { rate },
                    ..Phase { name: "warm".into(), ops: warm, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Bursts {
                        base: rate,
                        peak: 6.0 * rate,
                        period,
                        burst: period / 3.0,
                    },
                    drift: PopularityDrift::Rotate { every: (burst / 6).max(1) },
                    ..Phase { name: "burst".into(), ops: burst, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Poisson { rate: 3.0 * rate },
                    // 3× the baseline rate: the extra 2/3 of arrivals are
                    // the crowd, organic load stays at its usual skew.
                    drift: PopularityDrift::FlashCrowd { target: 3, share: 2.0 / 3.0 },
                    ..Phase { name: "flash".into(), ops: flash, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Poisson { rate: rate / 2.0 },
                    ..Phase { name: "cool".into(), ops: cool, ..base }
                },
            ],
        }
    }

    /// The diurnal preset: two sinusoidal day cycles (trough `rate/4`,
    /// peak `2×rate`), with the Zipf head drifting during the second.
    pub fn diurnal(ops: usize, rate: f64, mix: ActionMix, zipf_exponent: f64) -> Timeline {
        let day1 = ops / 2;
        let day2 = ops - day1;
        // One cycle per phase: the mean of the sinusoid is (low+high)/2.
        let mean = (rate / 4.0 + 2.0 * rate) / 2.0;
        let period = |ops: usize| (ops as f64 / mean.max(f64::MIN_POSITIVE)).max(1e-6);
        let arrival =
            |p: f64| ArrivalProcess::Diurnal { low: rate / 4.0, high: 2.0 * rate, period: p };
        let base = Phase { mix, zipf_exponent, ..Phase::named("", 0) };
        Timeline {
            phases: vec![
                Phase {
                    arrival: arrival(period(day1)),
                    ..Phase { name: "day1".into(), ops: day1, ..base.clone() }
                },
                Phase {
                    arrival: arrival(period(day2)),
                    drift: PopularityDrift::Rotate { every: (day2 / 4).max(1) },
                    ..Phase { name: "day2".into(), ops: day2, ..base }
                },
            ],
        }
    }

    /// The flash preset: steady cruise, a 4× Poisson flash crowd piling
    /// the surge (3/4 of arrivals) onto a normally-cold graph while
    /// organic traffic keeps its skew, then recovery at the old rate.
    pub fn flash(ops: usize, rate: f64, mix: ActionMix, zipf_exponent: f64) -> Timeline {
        let cruise = ops * 2 / 5;
        let crowd = ops * 2 / 5;
        let recover = ops - cruise - crowd;
        let base = Phase { mix, zipf_exponent, ..Phase::named("", 0) };
        Timeline {
            phases: vec![
                Phase {
                    arrival: ArrivalProcess::Steady { rate },
                    ..Phase { name: "cruise".into(), ops: cruise, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Poisson { rate: 4.0 * rate },
                    // 4× the baseline rate: the extra 3/4 of arrivals are
                    // the crowd piling onto the normally-cold target.
                    drift: PopularityDrift::FlashCrowd { target: 5, share: 0.75 },
                    ..Phase { name: "crowd".into(), ops: crowd, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Steady { rate },
                    ..Phase { name: "recover".into(), ops: recover, ..base }
                },
            ],
        }
    }

    /// The write-storm preset: the adversarial shape for the dynamic
    /// index. A steady soak builds up graph state, then a delete-heavy
    /// mutation storm (bursty arrivals at 5× peak, hot-set rotation) keeps
    /// invalidating between reads — the regime where the incremental DSU
    /// pays a full rebuild per connectivity read — and a read-mostly audit
    /// sweep closes over the churned graphs. `mix` shapes the soak and
    /// audit phases; the storm forces its own delete-heavy mix so the
    /// preset is adversarial regardless of the configured mix.
    pub fn write_storm(ops: usize, rate: f64, mix: ActionMix, zipf_exponent: f64) -> Timeline {
        let soak = ops / 5;
        let storm = ops * 3 / 5;
        let audit = ops - soak - storm;
        // Deletes rival inserts (the generator only emits a delete while
        // the mirror has spare edges, so heavier delete weight saturates
        // that bound), and connectivity reads land between invalidations.
        let storm_mix = ActionMix {
            insert_edge: 30.0,
            delete_edge: 32.0,
            contract: 2.0,
            approx_min_cut: 3.0,
            exact_min_cut: 4.0,
            singleton_cut: 2.0,
            kcut: 1.0,
            connectivity: 20.0,
            st_cut: 6.0,
        };
        // ~4 on/off cycles across the storm (mean rate ≈ 7/3 baseline
        // with a 1:2 on:off split at 5×).
        let storm_span = storm as f64 / (rate * 7.0 / 3.0).max(f64::MIN_POSITIVE);
        let period = (storm_span / 4.0).max(1e-6);
        let base = Phase { mix, zipf_exponent, ..Phase::named("", 0) };
        Timeline {
            phases: vec![
                Phase {
                    arrival: ArrivalProcess::Steady { rate },
                    ..Phase { name: "soak".into(), ops: soak, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Bursts {
                        base: rate,
                        peak: 5.0 * rate,
                        period,
                        burst: period / 3.0,
                    },
                    mix: storm_mix,
                    drift: PopularityDrift::Rotate { every: (storm / 8).max(1) },
                    ..Phase { name: "storm".into(), ops: storm, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Poisson { rate },
                    ..Phase { name: "audit".into(), ops: audit, ..base }
                },
            ],
        }
    }

    /// The whale preset: the kernel showcase. Pair it with
    /// [`WorkloadConfig::whale_n`] so `g000` is one huge sparse graph;
    /// the timeline then runs a short warm-up ramp, a long cut-heavy
    /// phase pinned to the whale (Zipf exponent forced to 1.6, so rank 0
    /// — the whale — absorbs most traffic; the mix forces s-t and global
    /// cut reads with a trickle of inserts that exercise kernel patching
    /// and rarer deletes that force rebuilds), and a cool-down at the
    /// configured mix. A sparse whale is exactly the shape the
    /// Padberg–Rinaldi rules eat: most vertices are degree-1/-2 and the
    /// kernel keeps `kernel_vertex_ratio` well under one half.
    pub fn whale(ops: usize, rate: f64, mix: ActionMix, zipf_exponent: f64) -> Timeline {
        let ramp = ops / 8;
        let hunt = ops * 3 / 4;
        let cool = ops - ramp - hunt;
        // Cut-read-heavy and mutation-light: inserts keep the kernel's
        // patch path hot without drowning it, deletes (and no contracts)
        // stay rare so cached kernels actually get reused, and the read
        // mass sits on the queries the kernel accelerates.
        let hunt_mix = ActionMix {
            insert_edge: 8.0,
            delete_edge: 3.0,
            contract: 0.0,
            approx_min_cut: 6.0,
            exact_min_cut: 2.0,
            singleton_cut: 4.0,
            kcut: 0.0,
            connectivity: 15.0,
            st_cut: 62.0,
        };
        let base = Phase { mix, zipf_exponent, ..Phase::named("", 0) };
        Timeline {
            phases: vec![
                Phase {
                    arrival: ArrivalProcess::Steady { rate },
                    ..Phase { name: "ramp".into(), ops: ramp, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Poisson { rate: 2.0 * rate },
                    mix: hunt_mix,
                    zipf_exponent: 1.6,
                    ..Phase { name: "hunt".into(), ops: hunt, ..base.clone() }
                },
                Phase {
                    arrival: ArrivalProcess::Steady { rate },
                    ..Phase { name: "cool".into(), ops: cool, ..base }
                },
            ],
        }
    }

    /// Total operations across all phases.
    pub fn total_ops(&self) -> usize {
        self.phases.iter().map(|p| p.ops).sum()
    }
}

/// Sub-seed for a namespaced random stream: FNV-1a over the master seed,
/// a namespace tag, and a name. Phase streams depend on the phase *name*,
/// not its position, so editing a timeline only reshuffles the phases
/// actually touched.
fn derived_seed(master: u64, tag: &str, name: &str) -> u64 {
    let mut bytes = Vec::with_capacity(8 + tag.len() + name.len());
    bytes.extend_from_slice(&master.to_le_bytes());
    bytes.extend_from_slice(tag.as_bytes());
    bytes.extend_from_slice(name.as_bytes());
    cut_graph::hash::fnv1a(&bytes)
}

/// Per-graph generator mirror: enough engine state to emit only valid
/// mutations. Edges are a **multiset** of normalized endpoint pairs
/// (parallel edges counted), matching the engine's edge-list semantics:
/// inserts increment, deletes decrement, and contraction collapses each
/// surviving pair to multiplicity 1 (the engine merges parallel edges).
struct GraphMirror {
    name: String,
    n: usize,
    /// Normalized `(min, max)` endpoint pair -> multiplicity.
    pairs: BTreeMap<(u32, u32), u32>,
    /// Total edge count (sum of multiplicities).
    m: usize,
}

impl GraphMirror {
    fn insert_pair(&mut self, u: u32, v: u32) {
        *self.pairs.entry((u.min(v), u.max(v))).or_insert(0) += 1;
        self.m += 1;
    }

    /// Remove one copy of the `i`-th distinct pair; returns its endpoints.
    fn delete_nth_pair(&mut self, i: usize) -> (u32, u32) {
        let &(u, v) = self.pairs.keys().nth(i).expect("index in range");
        let count = self.pairs.get_mut(&(u, v)).expect("pair present");
        *count -= 1;
        if *count == 0 {
            self.pairs.remove(&(u, v));
        }
        self.m -= 1;
        (u, v)
    }

    fn relabel_after_contract(&mut self, u: u32, v: u32) {
        let mut next = BTreeMap::new();
        for &(a, b) in self.pairs.keys() {
            let (mut a, mut b) = (contract_relabel(u, v, a), contract_relabel(u, v, b));
            if a == b {
                continue;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            // The engine merges parallel edges on contraction.
            next.insert((a, b), 1u32);
        }
        self.m = next.len();
        self.pairs = next;
        self.n -= 1;
    }
}

/// A fully materialized, replayable request stream.
///
/// # Examples
///
/// ```
/// use cut_engine::{Engine, Response, Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig { ops: 50, seed: 11, graphs: 3, ..WorkloadConfig::default() };
/// let workload = Workload::generate(&cfg);
/// assert_eq!(workload.len(), cfg.graphs + cfg.ops);
///
/// // Replaying never errors: every mutation is valid by construction …
/// let mut engine = Engine::new();
/// for request in workload.all_requests() {
///     assert!(!matches!(engine.execute(request.clone()), Response::Error { .. }));
/// }
///
/// // … and the stream is a pure function of the config.
/// let again = Workload::generate(&cfg);
/// assert_eq!(workload.operations, again.operations);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Create requests for every graph (run these first).
    pub prologue: Vec<Request>,
    /// The main-phase requests, phases concatenated in timeline order.
    pub operations: Vec<Request>,
    /// Arrival timestamp per operation, in nanoseconds from the start of
    /// the main phase (monotone non-decreasing). **Empty for fully
    /// closed-loop workloads** — e.g. anything from [`Workload::generate`] —
    /// where pacing is the replayer's business, not the workload's.
    pub arrivals: Vec<u64>,
    /// `(phase name, operation count)` in timeline order; `operations`
    /// concatenates them. Closed-loop workloads carry one `"main"` phase.
    pub phases: Vec<(String, usize)>,
}

impl Workload {
    /// Generate the workload for `cfg` — a single closed-loop phase named
    /// `"main"`. Pure: equal configs yield equal request streams.
    pub fn generate(cfg: &WorkloadConfig) -> Workload {
        let phase = Phase {
            mix: cfg.mix,
            zipf_exponent: cfg.zipf_exponent,
            ..Phase::named("main", cfg.ops)
        };
        Self::generate_timeline(cfg, &Timeline { phases: vec![phase] })
    }

    /// Generate a phased workload. The timeline's per-phase `ops`, `mix`,
    /// and `zipf_exponent` supersede the ones in `cfg` (which still
    /// supplies the master seed, graph population, and query-seed pool).
    /// Pure: equal `(cfg, timeline)` pairs yield equal request streams and
    /// arrival schedules.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (no graphs, `initial_n < 8`) or a phase's
    /// arrival process has a non-positive rate or period.
    pub fn generate_timeline(cfg: &WorkloadConfig, timeline: &Timeline) -> Workload {
        assert!(cfg.graphs > 0, "workload needs at least one graph");
        assert!(cfg.initial_n >= 8, "workload graphs need initial_n >= 8");
        for phase in &timeline.phases {
            if let Err(e) = phase.arrival.validate() {
                panic!("phase '{}': {e}", phase.name);
            }
        }

        // --- Prologue: register the graph population (its own namespaced
        // stream, so timeline edits never reshuffle the graphs). ---
        let mut rng = SmallRng::seed_from_u64(derived_seed(cfg.seed, "/prologue", ""));
        let mut mirrors: Vec<GraphMirror> = Vec::with_capacity(cfg.graphs);
        let mut prologue = Vec::with_capacity(cfg.graphs);
        for i in 0..cfg.graphs {
            let name = format!("g{i:03}");
            // Each graph consumes exactly one seed draw, whale or not, so
            // flipping `whale_n` never reshuffles the rest of the fleet.
            let spec = if i == 0 && cfg.whale_n > 0 {
                let n = cfg.whale_n;
                GraphSpec::ConnectedGnm { n, m: n + n / 10, w_min: 1, w_max: 12, seed: rng.gen() }
            } else {
                spec_for(i, cfg.initial_n, rng.gen())
            };
            let (n, edges) = spec.materialize().expect("workload specs are valid by construction");
            let mut mirror = GraphMirror { name: name.clone(), n, pairs: BTreeMap::new(), m: 0 };
            for e in &edges {
                mirror.insert_pair(e.u, e.v);
            }
            mirrors.push(mirror);
            prologue.push(Request::Create { name, spec });
        }

        // --- Phases, back to back. ---
        let total_ops = timeline.total_ops();
        let open_loop = timeline.phases.iter().any(|p| p.ops > 0 && p.arrival.is_open());
        let mut operations = Vec::with_capacity(total_ops);
        let mut arrivals: Vec<u64> = Vec::with_capacity(total_ops);
        let mut phases = Vec::with_capacity(timeline.phases.len());
        let seed_pool = cfg.query_seed_pool.max(1);
        let mut t = 0.0f64; // seconds since main-phase start, across phases
        for phase in &timeline.phases {
            phases.push((phase.name.clone(), phase.ops));
            if phase.ops == 0 {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(derived_seed(cfg.seed, "/phase/", &phase.name));
            let zipf = WeightedIndex::new(
                (0..cfg.graphs).map(|rank| 1.0 / ((rank + 1) as f64).powf(phase.zipf_exponent)),
            )
            .expect("zipf weights are positive");
            let actions =
                WeightedIndex::new(phase.mix.weights()).expect("action mix has a positive weight");
            let phase_start = t;
            let mut emitted = 0usize;
            while emitted < phase.ops {
                let rank = zipf.sample(&mut rng);
                let graph = phase.drift.graph_for(rank, emitted, cfg.graphs, &mut rng);
                let mirror = &mut mirrors[graph];
                let action = actions.sample(&mut rng);
                let n = mirror.n as u32;
                let request = match action {
                    // insert-edge
                    0 => {
                        let u = rng.gen_range(0..n);
                        let v = rng.gen_range(0..n - 1);
                        let v = if v >= u { v + 1 } else { v };
                        let w = rng.gen_range(1..=16u64);
                        mirror.insert_pair(u, v);
                        Request::Mutate {
                            name: mirror.name.clone(),
                            op: Mutation::InsertEdge { u, v, w },
                        }
                    }
                    // delete-edge: only while the graph stays usefully
                    // dense; otherwise resample another (graph, action).
                    1 if mirror.m > mirror.n => {
                        let i = rng.gen_range(0..mirror.pairs.len());
                        let (u, v) = mirror.delete_nth_pair(i);
                        Request::Mutate {
                            name: mirror.name.clone(),
                            op: Mutation::DeleteEdge { u, v },
                        }
                    }
                    1 => continue,
                    // contract: keep graphs from collapsing entirely.
                    2 if mirror.n > 12 => {
                        let u = rng.gen_range(0..n);
                        let v = rng.gen_range(0..n - 1);
                        let v = if v >= u { v + 1 } else { v };
                        mirror.relabel_after_contract(u.min(v), u.max(v));
                        Request::Mutate {
                            name: mirror.name.clone(),
                            op: Mutation::ContractVertices { u: u.min(v), v: u.max(v) },
                        }
                    }
                    2 => continue,
                    3 => Request::Query {
                        name: mirror.name.clone(),
                        query: Query::ApproxMinCut { seed: rng.gen_range(0..seed_pool) },
                    },
                    4 => Request::Query { name: mirror.name.clone(), query: Query::ExactMinCut },
                    5 => Request::Query {
                        name: mirror.name.clone(),
                        query: Query::SingletonCut { seed: rng.gen_range(0..seed_pool) },
                    },
                    6 => {
                        let k = rng.gen_range(2..=4usize.min(mirror.n));
                        Request::Query { name: mirror.name.clone(), query: Query::KCut { k } }
                    }
                    7 => Request::Query { name: mirror.name.clone(), query: Query::Connectivity },
                    _ => {
                        let s = rng.gen_range(0..n);
                        let t = rng.gen_range(0..n - 1);
                        let t = if t >= s { t + 1 } else { t };
                        Request::Query {
                            name: mirror.name.clone(),
                            query: Query::StCutWeight { s, t },
                        }
                    }
                };
                t += phase.arrival.gap_secs(&mut rng, t - phase_start);
                arrivals.push((t * 1e9).round() as u64);
                operations.push(request);
                emitted += 1;
            }
        }
        if !open_loop {
            // Fully closed-loop: the all-zero schedule carries no
            // information — drop it so replayers need no mode flag.
            arrivals.clear();
        }

        Workload { prologue, operations, arrivals, phases }
    }

    /// Prologue followed by the main phase, as one stream.
    pub fn all_requests(&self) -> impl Iterator<Item = &Request> {
        self.prologue.iter().chain(self.operations.iter())
    }

    /// Total number of requests (prologue + operations).
    pub fn len(&self) -> usize {
        self.prologue.len() + self.operations.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the workload carries an open-loop arrival schedule.
    pub fn is_open_loop(&self) -> bool {
        !self.arrivals.is_empty()
    }

    /// The phase index of operation `i` (an index into
    /// [`Workload::phases`]); `None` past the end of the stream.
    pub fn phase_of(&self, i: usize) -> Option<usize> {
        let mut before = 0usize;
        for (idx, (_, ops)) in self.phases.iter().enumerate() {
            before += ops;
            if i < before {
                return Some(idx);
            }
        }
        None
    }

    /// Serialize the whole workload — prologue, phase table, and
    /// timestamped operations — to the compact line-oriented trace format.
    /// [`Workload::from_trace`] inverts it exactly, so a saved run replays
    /// byte-identically (same requests, same schedule, same stress digest).
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_engine::{ArrivalProcess, Timeline, Workload, WorkloadConfig};
    ///
    /// let cfg = WorkloadConfig { graphs: 3, ..WorkloadConfig::default() };
    /// let timeline = Timeline::single("t", 40, ArrivalProcess::Poisson { rate: 10_000.0 });
    /// let wl = Workload::generate_timeline(&cfg, &timeline);
    ///
    /// let trace = wl.to_trace();
    /// assert!(trace.starts_with("cut-trace v1 "));
    /// let back = Workload::from_trace(&trace).unwrap();
    /// assert_eq!(back, wl, "a trace round-trip is lossless");
    /// ```
    pub fn to_trace(&self) -> String {
        let mut out = String::with_capacity(64 * (self.len() + self.phases.len() + 1));
        out.push_str(&format!(
            "cut-trace v1 prologue={} ops={} open={}\n",
            self.prologue.len(),
            self.operations.len(),
            u8::from(self.is_open_loop()),
        ));
        for (name, ops) in &self.phases {
            // Request-name escaping keeps arbitrary phase names safe in
            // the whitespace-delimited format.
            out.push_str(&format!("f {} {ops}\n", crate::request::encode_name(name)));
        }
        for req in &self.prologue {
            out.push_str(&format!("p {}\n", req.to_trace_line()));
        }
        for (i, req) in self.operations.iter().enumerate() {
            let at = self.arrivals.get(i).copied().unwrap_or(0);
            out.push_str(&format!("o {at} {}\n", req.to_trace_line()));
        }
        out
    }

    /// Parse a trace produced by [`Workload::to_trace`]. Strict: version,
    /// counts, and every line must check out, so a corrupted trace fails
    /// loudly instead of replaying a subtly different run.
    pub fn from_trace(trace: &str) -> Result<Workload, String> {
        let mut lines = trace.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace")?;
        let mut tokens = header.split_whitespace();
        if tokens.next() != Some("cut-trace") || tokens.next() != Some("v1") {
            return Err("not a cut-trace v1 file".into());
        }
        let mut prologue_n = None;
        let mut ops_n = None;
        let mut open = None;
        for tok in tokens {
            let (key, value) = tok.split_once('=').ok_or(format!("bad header field '{tok}'"))?;
            let parsed: u64 = value.parse().map_err(|_| format!("bad header value '{tok}'"))?;
            match key {
                "prologue" => prologue_n = Some(parsed as usize),
                "ops" => ops_n = Some(parsed as usize),
                "open" => open = Some(parsed != 0),
                other => return Err(format!("unknown header field '{other}'")),
            }
        }
        let prologue_n = prologue_n.ok_or("header missing prologue=")?;
        let ops_n = ops_n.ok_or("header missing ops=")?;
        let open = open.ok_or("header missing open=")?;

        let mut workload = Workload {
            prologue: Vec::with_capacity(prologue_n),
            operations: Vec::with_capacity(ops_n),
            arrivals: Vec::with_capacity(if open { ops_n } else { 0 }),
            phases: Vec::new(),
        };
        for (lineno, line) in lines {
            let context = |e: String| format!("trace line {}: {e}", lineno + 1);
            let (kind, rest) =
                line.split_once(' ').ok_or_else(|| context("missing payload".into()))?;
            match kind {
                "f" => {
                    let (name, ops) =
                        rest.split_once(' ').ok_or_else(|| context("bad phase line".into()))?;
                    let decoded = crate::request::decode_name(name).map_err(context)?;
                    let ops = ops.parse().map_err(|_| context(format!("bad phase ops '{ops}'")))?;
                    workload.phases.push((decoded, ops));
                }
                "p" => workload.prologue.push(Request::from_trace_line(rest).map_err(context)?),
                "o" => {
                    let (at, req) =
                        rest.split_once(' ').ok_or_else(|| context("missing op payload".into()))?;
                    let at: u64 =
                        at.parse().map_err(|_| context(format!("bad timestamp '{at}'")))?;
                    if open {
                        workload.arrivals.push(at);
                    } else if at != 0 {
                        return Err(context("closed-loop trace carries a timestamp".into()));
                    }
                    workload.operations.push(Request::from_trace_line(req).map_err(context)?);
                }
                other => return Err(context(format!("unknown line kind '{other}'"))),
            }
        }
        if workload.prologue.len() != prologue_n {
            return Err(format!(
                "trace header promises {prologue_n} prologue requests, found {}",
                workload.prologue.len()
            ));
        }
        if workload.operations.len() != ops_n {
            return Err(format!(
                "trace header promises {ops_n} operations, found {}",
                workload.operations.len()
            ));
        }
        if workload.phases.is_empty() {
            workload.phases.push(("trace".to_string(), ops_n));
        } else {
            let phase_ops: usize = workload.phases.iter().map(|(_, ops)| ops).sum();
            if phase_ops != ops_n {
                return Err(format!(
                    "trace phase table covers {phase_ops} operations, header promises {ops_n}"
                ));
            }
        }
        Ok(workload)
    }
}

/// Deterministic spec variety: cycle through four graph families.
fn spec_for(index: usize, initial_n: usize, seed: u64) -> GraphSpec {
    let n = initial_n;
    match index % 4 {
        0 => GraphSpec::ConnectedGnm { n, m: 3 * n, w_min: 1, w_max: 12, seed },
        1 => GraphSpec::PlantedCut { half: n / 2, internal_m: 2 * n, cross: 3, seed },
        2 => GraphSpec::Cycle { n },
        _ => GraphSpec::RandomTree { n, seed },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::request::Response;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let cfg = WorkloadConfig { ops: 400, seed: 99, ..WorkloadConfig::default() };
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(a.prologue, b.prologue);
        assert_eq!(a.operations, b.operations);
    }

    #[test]
    fn different_seeds_differ() {
        let base = WorkloadConfig { ops: 200, ..WorkloadConfig::default() };
        let a = Workload::generate(&WorkloadConfig { seed: 1, ..base.clone() });
        let b = Workload::generate(&WorkloadConfig { seed: 2, ..base });
        assert_ne!(a.operations, b.operations);
    }

    #[test]
    fn generated_mutations_never_fail() {
        let cfg = WorkloadConfig {
            ops: 600,
            seed: 7,
            graphs: 5,
            initial_n: 24,
            mix: ActionMix::write_heavy(),
            ..WorkloadConfig::default()
        };
        let wl = Workload::generate(&cfg);
        let mut engine = Engine::new();
        for req in wl.all_requests() {
            let resp = engine.execute(req.clone());
            assert!(
                !matches!(resp, Response::Error { .. }),
                "valid-by-construction workload hit: {req} -> {resp}"
            );
        }
    }

    #[test]
    fn zipf_skew_concentrates_traffic() {
        let cfg = WorkloadConfig {
            ops: 2_000,
            seed: 5,
            graphs: 10,
            zipf_exponent: 1.2,
            ..WorkloadConfig::default()
        };
        let wl = Workload::generate(&cfg);
        let hot = wl
            .operations
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Request::Mutate { name, .. } | Request::Query { name, .. }
                        if name == "g000"
                )
            })
            .count();
        // Rank-0 gets weight 1 of H(10, 1.2) ≈ 2.92 ⇒ ~34% of traffic.
        assert!(
            hot > wl.operations.len() / 5,
            "expected zipf hot spot, got {hot}/{}",
            wl.operations.len()
        );
    }

    #[test]
    fn read_only_mix_emits_no_mutations() {
        let cfg =
            WorkloadConfig { ops: 300, mix: ActionMix::read_only(), ..WorkloadConfig::default() };
        let wl = Workload::generate(&cfg);
        assert!(wl.operations.iter().all(|r| matches!(r, Request::Query { .. })));
    }

    #[test]
    fn closed_loop_generate_has_no_arrivals_and_one_phase() {
        let cfg = WorkloadConfig { ops: 100, ..WorkloadConfig::default() };
        let wl = Workload::generate(&cfg);
        assert!(!wl.is_open_loop());
        assert!(wl.arrivals.is_empty());
        assert_eq!(wl.phases, vec![("main".to_string(), 100)]);
        assert_eq!(wl.phase_of(0), Some(0));
        assert_eq!(wl.phase_of(99), Some(0));
        assert_eq!(wl.phase_of(100), None);
    }

    #[test]
    fn open_loop_arrivals_are_monotone_and_cover_every_op() {
        let cfg = WorkloadConfig { ops: 0, graphs: 4, seed: 21, ..WorkloadConfig::default() };
        for timeline in [
            Timeline::bursty(500, 100_000.0, ActionMix::default(), 1.1),
            Timeline::diurnal(500, 100_000.0, ActionMix::default(), 1.1),
            Timeline::flash(500, 100_000.0, ActionMix::default(), 1.1),
        ] {
            let wl = Workload::generate_timeline(&cfg, &timeline);
            assert_eq!(wl.operations.len(), 500);
            assert_eq!(wl.arrivals.len(), 500);
            assert!(wl.arrivals.windows(2).all(|w| w[0] <= w[1]), "arrivals must be monotone");
            assert!(*wl.arrivals.last().unwrap() > 0);
        }
    }

    #[test]
    fn phase_streams_are_independent_of_phase_insertion() {
        // The per-phase sub-seed refactor's contract: inserting a
        // query-only phase must not perturb any other phase's stream.
        let cfg = WorkloadConfig { ops: 0, graphs: 5, seed: 77, ..WorkloadConfig::default() };
        let tail = Phase { mix: ActionMix::read_only(), ..Phase::named("tail", 200) };
        let head = Phase { mix: ActionMix::read_only(), ..Phase::named("head", 150) };
        let inserted = Phase { mix: ActionMix::read_only(), ..Phase::named("inserted", 120) };

        let without = Workload::generate_timeline(
            &cfg,
            &Timeline { phases: vec![head.clone(), tail.clone()] },
        );
        let with =
            Workload::generate_timeline(&cfg, &Timeline { phases: vec![head, inserted, tail] });

        assert_eq!(without.prologue, with.prologue, "prologue has its own seed stream");
        // head is a shared prefix; tail is byte-identical after skipping
        // the inserted phase's operations.
        assert_eq!(without.operations[..150], with.operations[..150]);
        assert_eq!(without.operations[150..], with.operations[270..]);
    }

    #[test]
    fn empty_phases_are_invisible() {
        let cfg = WorkloadConfig { ops: 0, graphs: 4, seed: 5, ..WorkloadConfig::default() };
        let solid = Phase { ..Phase::named("solid", 300) };
        let a = Workload::generate_timeline(&cfg, &Timeline { phases: vec![solid.clone()] });
        let b = Workload::generate_timeline(
            &cfg,
            &Timeline {
                phases: vec![
                    Phase::named("empty-before", 0),
                    solid,
                    Phase {
                        arrival: ArrivalProcess::Poisson { rate: 1.0 },
                        ..Phase::named("empty-after", 0)
                    },
                ],
            },
        );
        assert_eq!(a.operations, b.operations);
        // An empty open-loop phase must not flip the workload open.
        assert!(!b.is_open_loop());
        assert_eq!(b.phases.len(), 3, "empty phases still appear in the phase table");
    }

    #[test]
    fn single_op_burst_phase_works() {
        let cfg = WorkloadConfig { ops: 0, graphs: 3, seed: 13, ..WorkloadConfig::default() };
        let timeline = Timeline {
            phases: vec![Phase {
                arrival: ArrivalProcess::Bursts { base: 10.0, peak: 1e6, period: 1.0, burst: 0.5 },
                drift: PopularityDrift::Rotate { every: 1 },
                ..Phase::named("blip", 1)
            }],
        };
        let wl = Workload::generate_timeline(&cfg, &timeline);
        assert_eq!(wl.operations.len(), 1);
        assert_eq!(wl.arrivals.len(), 1);
    }

    #[test]
    fn drift_targets_stay_in_range_on_tiny_registries() {
        // Rotation offsets and flash targets far beyond the graph count
        // must wrap, not panic or emit unknown names.
        let cfg = WorkloadConfig { ops: 0, graphs: 2, seed: 3, ..WorkloadConfig::default() };
        let timeline = Timeline {
            phases: vec![
                Phase {
                    drift: PopularityDrift::Rotate { every: 0 }, // 0 behaves as 1
                    ..Phase::named("spin", 100)
                },
                Phase {
                    drift: PopularityDrift::FlashCrowd { target: 999, share: 0.5 },
                    ..Phase::named("crowd", 100)
                },
            ],
        };
        let wl = Workload::generate_timeline(&cfg, &timeline);
        let mut engine = Engine::new();
        for req in wl.all_requests() {
            let resp = engine.execute(req.clone());
            assert!(!matches!(resp, Response::Error { .. }), "{req} -> {resp}");
        }
    }

    #[test]
    fn rotation_drift_moves_the_hot_set() {
        let cfg = WorkloadConfig { ops: 0, graphs: 8, seed: 11, ..WorkloadConfig::default() };
        let count_on = |wl: &Workload, range: std::ops::Range<usize>, g: &str| {
            wl.operations[range]
                .iter()
                .filter(|r| {
                    matches!(r, Request::Mutate { name, .. } | Request::Query { name, .. }
                        if name == g)
                })
                .count()
        };
        let timeline = Timeline {
            phases: vec![Phase {
                zipf_exponent: 1.4,
                drift: PopularityDrift::Rotate { every: 500 },
                ..Phase::named("drift", 2_000)
            }],
        };
        let wl = Workload::generate_timeline(&cfg, &timeline);
        // In the first rotation step g000 is the head; two steps later the
        // head has moved to g002 and g000 is a tail graph.
        assert!(count_on(&wl, 0..500, "g000") > count_on(&wl, 0..500, "g002"));
        assert!(count_on(&wl, 1000..1500, "g002") > count_on(&wl, 1000..1500, "g000"));
    }

    #[test]
    fn flash_crowd_correlates_surge_with_target_deterministically() {
        let cfg = WorkloadConfig { ops: 0, graphs: 8, seed: 21, ..WorkloadConfig::default() };
        // flash preset: cruise 1600 ops, crowd 1600 (4× rate, share 3/4,
        // target g005), recover 800.
        let timeline = Timeline::flash(4_000, 50_000.0, ActionMix::default(), 1.1);
        let wl = Workload::generate_timeline(&cfg, &timeline);

        // Determinism pin: the crowd-vs-organic coin rides the phase's
        // seeded stream, so regeneration is byte-identical.
        assert_eq!(wl, Workload::generate_timeline(&cfg, &timeline));

        let count_on = |range: std::ops::Range<usize>, g: &str| {
            wl.operations[range]
                .iter()
                .filter(|r| {
                    matches!(r, Request::Mutate { name, .. } | Request::Query { name, .. }
                        if name == g)
                })
                .count()
        };
        // Correlation: the surge share of the crowd phase lands on the
        // target — well over half of its traffic, not just a relabeled
        // Zipf head (which would cap out around the head's ~35% mass).
        let on_target = count_on(1600..3200, "g005");
        assert!(
            on_target * 10 > 1600 * 6,
            "crowd target drew {on_target}/1600 ops; surge share should dominate"
        );
        // Organic traffic keeps its own head during the crowd …
        assert!(count_on(1600..3200, "g000") > count_on(1600..3200, "g003"));
        // … and before the crowd the target is cold.
        assert!(count_on(0..1600, "g000") > count_on(0..1600, "g005"));
    }

    #[test]
    fn write_storm_preset_shape() {
        let timeline = Timeline::write_storm(10_000, 20_000.0, ActionMix::default(), 1.1);
        assert_eq!(timeline.total_ops(), 10_000);
        let names: Vec<&str> = timeline.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["soak", "storm", "audit"]);
        let storm = &timeline.phases[1];
        assert!(storm.ops >= timeline.total_ops() / 2, "the storm dominates the run");
        assert!(
            storm.mix.delete_edge > storm.mix.insert_edge,
            "the storm is delete-heavy regardless of the configured mix"
        );
        assert!(matches!(storm.arrival, ArrivalProcess::Bursts { .. }));
        assert!(matches!(storm.drift, PopularityDrift::Rotate { .. }));
        // Soak/audit keep the caller's mix.
        assert_eq!(timeline.phases[0].mix, ActionMix::default());
        assert_eq!(timeline.phases[2].mix, ActionMix::default());
        // Deterministic generation, like every preset.
        let cfg = WorkloadConfig { ops: 0, graphs: 6, seed: 11, ..WorkloadConfig::default() };
        let small = Timeline::write_storm(600, 20_000.0, ActionMix::default(), 1.1);
        let a = Workload::generate_timeline(&cfg, &small);
        let b = Workload::generate_timeline(&cfg, &small);
        assert_eq!(a, b);
        assert_eq!(a.operations.len(), 600);
    }

    #[test]
    fn whale_preset_shape_and_whale_graph() {
        let timeline = Timeline::whale(2_000, 20_000.0, ActionMix::default(), 1.1);
        assert_eq!(timeline.total_ops(), 2_000);
        let names: Vec<&str> = timeline.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["ramp", "hunt", "cool"]);
        let hunt = &timeline.phases[1];
        assert!(hunt.ops >= timeline.total_ops() / 2, "the hunt dominates the run");
        assert!(
            hunt.mix.st_cut > hunt.mix.connectivity,
            "the hunt is s-t-cut-heavy regardless of the configured mix"
        );
        assert_eq!(hunt.mix.contract, 0.0, "contracts would churn the kernel cache away");
        assert!(hunt.zipf_exponent > timeline.phases[0].zipf_exponent, "traffic pins the whale");
        // Ramp/cool keep the caller's mix.
        assert_eq!(timeline.phases[0].mix, ActionMix::default());
        assert_eq!(timeline.phases[2].mix, ActionMix::default());

        // whale_n swaps g000 for the huge sparse graph — and only g000:
        // the other specs (one seed draw each) are byte-identical.
        let cfg = WorkloadConfig { ops: 0, graphs: 4, seed: 11, ..WorkloadConfig::default() };
        let whale_cfg = WorkloadConfig { whale_n: 300, ..cfg.clone() };
        let small = Timeline::whale(400, 20_000.0, ActionMix::default(), 1.1);
        let plain = Workload::generate_timeline(&cfg, &small);
        let whaled = Workload::generate_timeline(&whale_cfg, &small);
        assert!(matches!(
            &whaled.prologue[0],
            Request::Create { spec: GraphSpec::ConnectedGnm { n: 300, m: 330, .. }, .. }
        ));
        assert_ne!(plain.prologue[0], whaled.prologue[0]);
        assert_eq!(plain.prologue[1..], whaled.prologue[1..]);
        // Deterministic generation, like every preset.
        let again = Workload::generate_timeline(&whale_cfg, &small);
        assert_eq!(whaled, again);
    }

    #[test]
    fn trace_round_trip_is_lossless_for_generated_workloads() {
        let cfg = WorkloadConfig { ops: 0, graphs: 5, seed: 9, ..WorkloadConfig::default() };
        let timeline = Timeline::bursty(400, 50_000.0, ActionMix::write_heavy(), 1.2);
        let wl = Workload::generate_timeline(&cfg, &timeline);
        let back = Workload::from_trace(&wl.to_trace()).expect("trace parses");
        assert_eq!(back, wl);

        // Closed-loop workloads round-trip too (no timestamps).
        let closed = Workload::generate(&WorkloadConfig { ops: 120, ..WorkloadConfig::default() });
        let back = Workload::from_trace(&closed.to_trace()).expect("trace parses");
        assert_eq!(back, closed);
    }

    #[test]
    fn trace_round_trips_drops_odd_names_and_manual_streams() {
        // Traces cover the full request surface — including drops and
        // names with spaces/percents — not just generator output, so a
        // drift landing on a graph the stream later drops replays
        // faithfully.
        let wl = Workload {
            prologue: vec![Request::Create {
                name: "odd name %20".into(),
                spec: GraphSpec::Edges { n: 3, edges: vec![(0, 1, 4), (1, 2, 7)] },
            }],
            operations: vec![
                Request::Query { name: "odd name %20".into(), query: Query::ExactMinCut },
                Request::Drop { name: "odd name %20".into() },
                Request::Query { name: "odd name %20".into(), query: Query::Connectivity },
                Request::ListGraphs,
                Request::Stats,
            ],
            arrivals: vec![10, 20, 30, 40, 50],
            phases: vec![("flash %".to_string(), 5)],
        };
        let back = Workload::from_trace(&wl.to_trace()).expect("trace parses");
        assert_eq!(back, wl);
    }

    #[test]
    fn from_trace_rejects_corruption() {
        let cfg = WorkloadConfig { ops: 30, ..WorkloadConfig::default() };
        let trace = Workload::generate(&cfg).to_trace();
        // Garbage header.
        assert!(Workload::from_trace("not-a-trace v9\n").is_err());
        // Truncation (count mismatch).
        let truncated: String =
            trace.lines().take(trace.lines().count() - 1).map(|l| format!("{l}\n")).collect();
        assert!(Workload::from_trace(&truncated).is_err());
        // A mangled op line.
        let mangled = trace.replace("o 0 ", "o zero ");
        assert!(Workload::from_trace(&mangled).is_err());
        // A phase table that doesn't cover the operations.
        let short_phase = trace.replace("f main 30", "f main 3");
        assert!(Workload::from_trace(&short_phase).is_err());
    }
}
