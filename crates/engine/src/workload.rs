//! Seeded workload generation: a deterministic stream of engine requests.
//!
//! The generator follows the algorithm-engineering playbook for cut
//! benchmarks: a weighted action mix (`WeightedIndex`) decides *what* each
//! operation does, and a Zipf-skewed popularity table decides *which* graph
//! it targets — a few hot graphs absorb most of the traffic (which is what
//! makes the engine's epoch cache earn its keep), while the long tail keeps
//! the registry honest.
//!
//! The generator mirrors engine state (per-graph vertex counts and the
//! multiset of present edges) so every emitted mutation is valid by
//! construction:
//! replaying a workload never produces `Response::Error`, and identical
//! seeds produce identical request streams.

use std::collections::BTreeMap;

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::request::{contract_relabel, GraphSpec, Mutation, Query, Request};

/// Relative weights of the operations in a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionMix {
    /// Insert a random weighted edge.
    pub insert_edge: f64,
    /// Delete a random present edge.
    pub delete_edge: f64,
    /// Contract a random vertex pair.
    pub contract: f64,
    /// `(2+ε)`-approximate min cut (seed drawn from a small pool, so
    /// repeats can hit the cache).
    pub approx_min_cut: f64,
    /// Exact min cut.
    pub exact_min_cut: f64,
    /// Smallest singleton cut.
    pub singleton_cut: f64,
    /// Approximate min k-cut.
    pub kcut: f64,
    /// Connected components.
    pub connectivity: f64,
    /// Exact s-t cut weight.
    pub st_cut: f64,
}

impl Default for ActionMix {
    /// A read-heavy mix: ~70% queries, ~30% mutations — the regime the
    /// epoch cache is designed for.
    fn default() -> Self {
        Self {
            insert_edge: 18.0,
            delete_edge: 8.0,
            contract: 2.0,
            approx_min_cut: 14.0,
            exact_min_cut: 8.0,
            singleton_cut: 10.0,
            kcut: 4.0,
            connectivity: 22.0,
            st_cut: 14.0,
        }
    }
}

impl ActionMix {
    /// A mutation-heavy mix (cache-hostile; useful for stressing rebuild
    /// and invalidation paths).
    pub fn write_heavy() -> Self {
        Self {
            insert_edge: 40.0,
            delete_edge: 25.0,
            contract: 5.0,
            approx_min_cut: 5.0,
            exact_min_cut: 5.0,
            singleton_cut: 5.0,
            kcut: 2.0,
            connectivity: 8.0,
            st_cut: 5.0,
        }
    }

    /// A query-only mix (every op after warm-up should be a cache hit).
    pub fn read_only() -> Self {
        Self {
            insert_edge: 0.0,
            delete_edge: 0.0,
            contract: 0.0,
            approx_min_cut: 20.0,
            exact_min_cut: 15.0,
            singleton_cut: 15.0,
            kcut: 5.0,
            connectivity: 25.0,
            st_cut: 20.0,
        }
    }

    fn weights(&self) -> [f64; 9] {
        [
            self.insert_edge,
            self.delete_edge,
            self.contract,
            self.approx_min_cut,
            self.exact_min_cut,
            self.singleton_cut,
            self.kcut,
            self.connectivity,
            self.st_cut,
        ]
    }
}

/// Parameters of a generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of operations after the create prologue.
    pub ops: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of registered graphs.
    pub graphs: usize,
    /// Vertices per graph at creation.
    pub initial_n: usize,
    /// Zipf exponent for graph popularity (0 = uniform; ~1 = classic skew).
    pub zipf_exponent: f64,
    /// Distinct query seeds per graph (smaller pool ⇒ more cache hits).
    pub query_seed_pool: u64,
    /// The action mix.
    pub mix: ActionMix,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            ops: 1_000,
            seed: 0xC07,
            graphs: 8,
            initial_n: 48,
            zipf_exponent: 1.1,
            query_seed_pool: 4,
            mix: ActionMix::default(),
        }
    }
}

/// Per-graph generator mirror: enough engine state to emit only valid
/// mutations. Edges are a **multiset** of normalized endpoint pairs
/// (parallel edges counted), matching the engine's edge-list semantics:
/// inserts increment, deletes decrement, and contraction collapses each
/// surviving pair to multiplicity 1 (the engine merges parallel edges).
struct GraphMirror {
    name: String,
    n: usize,
    /// Normalized `(min, max)` endpoint pair -> multiplicity.
    pairs: BTreeMap<(u32, u32), u32>,
    /// Total edge count (sum of multiplicities).
    m: usize,
}

impl GraphMirror {
    fn insert_pair(&mut self, u: u32, v: u32) {
        *self.pairs.entry((u.min(v), u.max(v))).or_insert(0) += 1;
        self.m += 1;
    }

    /// Remove one copy of the `i`-th distinct pair; returns its endpoints.
    fn delete_nth_pair(&mut self, i: usize) -> (u32, u32) {
        let &(u, v) = self.pairs.keys().nth(i).expect("index in range");
        let count = self.pairs.get_mut(&(u, v)).expect("pair present");
        *count -= 1;
        if *count == 0 {
            self.pairs.remove(&(u, v));
        }
        self.m -= 1;
        (u, v)
    }

    fn relabel_after_contract(&mut self, u: u32, v: u32) {
        let mut next = BTreeMap::new();
        for &(a, b) in self.pairs.keys() {
            let (mut a, mut b) = (contract_relabel(u, v, a), contract_relabel(u, v, b));
            if a == b {
                continue;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            // The engine merges parallel edges on contraction.
            next.insert((a, b), 1u32);
        }
        self.m = next.len();
        self.pairs = next;
        self.n -= 1;
    }
}

/// A fully materialized, replayable request stream.
///
/// # Examples
///
/// ```
/// use cut_engine::{Engine, Response, Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig { ops: 50, seed: 11, graphs: 3, ..WorkloadConfig::default() };
/// let workload = Workload::generate(&cfg);
/// assert_eq!(workload.len(), cfg.graphs + cfg.ops);
///
/// // Replaying never errors: every mutation is valid by construction …
/// let mut engine = Engine::new();
/// for request in workload.all_requests() {
///     assert!(!matches!(engine.execute(request.clone()), Response::Error { .. }));
/// }
///
/// // … and the stream is a pure function of the config.
/// let again = Workload::generate(&cfg);
/// assert_eq!(workload.operations, again.operations);
/// ```
pub struct Workload {
    /// Create requests for every graph (run these first).
    pub prologue: Vec<Request>,
    /// The `ops` main-phase requests.
    pub operations: Vec<Request>,
}

impl Workload {
    /// Generate the workload for `cfg`. Pure: equal configs yield equal
    /// request streams.
    pub fn generate(cfg: &WorkloadConfig) -> Workload {
        assert!(cfg.graphs > 0, "workload needs at least one graph");
        assert!(cfg.initial_n >= 8, "workload graphs need initial_n >= 8");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // --- Prologue: register the graph population. ---
        let mut mirrors: Vec<GraphMirror> = Vec::with_capacity(cfg.graphs);
        let mut prologue = Vec::with_capacity(cfg.graphs);
        for i in 0..cfg.graphs {
            let name = format!("g{i:03}");
            let spec = spec_for(i, cfg.initial_n, rng.gen());
            let (n, edges) = spec.materialize().expect("workload specs are valid by construction");
            let mut mirror = GraphMirror { name: name.clone(), n, pairs: BTreeMap::new(), m: 0 };
            for e in &edges {
                mirror.insert_pair(e.u, e.v);
            }
            mirrors.push(mirror);
            prologue.push(Request::Create { name, spec });
        }

        // --- Popularity: Zipf-skewed choice over graphs. ---
        let zipf = WeightedIndex::new(
            (0..cfg.graphs).map(|rank| 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent)),
        )
        .expect("zipf weights are positive");
        let actions =
            WeightedIndex::new(cfg.mix.weights()).expect("action mix has a positive weight");

        // --- Main phase. ---
        let mut operations = Vec::with_capacity(cfg.ops);
        let seed_pool = cfg.query_seed_pool.max(1);
        while operations.len() < cfg.ops {
            let mirror = &mut mirrors[zipf.sample(&mut rng)];
            let action = actions.sample(&mut rng);
            let n = mirror.n as u32;
            let request = match action {
                // insert-edge
                0 => {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n - 1);
                    let v = if v >= u { v + 1 } else { v };
                    let w = rng.gen_range(1..=16u64);
                    mirror.insert_pair(u, v);
                    Request::Mutate {
                        name: mirror.name.clone(),
                        op: Mutation::InsertEdge { u, v, w },
                    }
                }
                // delete-edge: only while the graph stays usefully dense;
                // otherwise resample another (graph, action) pair.
                1 if mirror.m > mirror.n => {
                    let i = rng.gen_range(0..mirror.pairs.len());
                    let (u, v) = mirror.delete_nth_pair(i);
                    Request::Mutate { name: mirror.name.clone(), op: Mutation::DeleteEdge { u, v } }
                }
                1 => continue,
                // contract: keep graphs from collapsing entirely.
                2 if mirror.n > 12 => {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n - 1);
                    let v = if v >= u { v + 1 } else { v };
                    mirror.relabel_after_contract(u.min(v), u.max(v));
                    Request::Mutate {
                        name: mirror.name.clone(),
                        op: Mutation::ContractVertices { u: u.min(v), v: u.max(v) },
                    }
                }
                2 => continue,
                3 => Request::Query {
                    name: mirror.name.clone(),
                    query: Query::ApproxMinCut { seed: rng.gen_range(0..seed_pool) },
                },
                4 => Request::Query { name: mirror.name.clone(), query: Query::ExactMinCut },
                5 => Request::Query {
                    name: mirror.name.clone(),
                    query: Query::SingletonCut { seed: rng.gen_range(0..seed_pool) },
                },
                6 => {
                    let k = rng.gen_range(2..=4usize.min(mirror.n));
                    Request::Query { name: mirror.name.clone(), query: Query::KCut { k } }
                }
                7 => Request::Query { name: mirror.name.clone(), query: Query::Connectivity },
                _ => {
                    let s = rng.gen_range(0..n);
                    let t = rng.gen_range(0..n - 1);
                    let t = if t >= s { t + 1 } else { t };
                    Request::Query { name: mirror.name.clone(), query: Query::StCutWeight { s, t } }
                }
            };
            operations.push(request);
        }

        Workload { prologue, operations }
    }

    /// Prologue followed by the main phase, as one stream.
    pub fn all_requests(&self) -> impl Iterator<Item = &Request> {
        self.prologue.iter().chain(self.operations.iter())
    }

    /// Total number of requests (prologue + operations).
    pub fn len(&self) -> usize {
        self.prologue.len() + self.operations.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministic spec variety: cycle through four graph families.
fn spec_for(index: usize, initial_n: usize, seed: u64) -> GraphSpec {
    let n = initial_n;
    match index % 4 {
        0 => GraphSpec::ConnectedGnm { n, m: 3 * n, w_min: 1, w_max: 12, seed },
        1 => GraphSpec::PlantedCut { half: n / 2, internal_m: 2 * n, cross: 3, seed },
        2 => GraphSpec::Cycle { n },
        _ => GraphSpec::RandomTree { n, seed },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::request::Response;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let cfg = WorkloadConfig { ops: 400, seed: 99, ..WorkloadConfig::default() };
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(a.prologue, b.prologue);
        assert_eq!(a.operations, b.operations);
    }

    #[test]
    fn different_seeds_differ() {
        let base = WorkloadConfig { ops: 200, ..WorkloadConfig::default() };
        let a = Workload::generate(&WorkloadConfig { seed: 1, ..base.clone() });
        let b = Workload::generate(&WorkloadConfig { seed: 2, ..base });
        assert_ne!(a.operations, b.operations);
    }

    #[test]
    fn generated_mutations_never_fail() {
        let cfg = WorkloadConfig {
            ops: 600,
            seed: 7,
            graphs: 5,
            initial_n: 24,
            mix: ActionMix::write_heavy(),
            ..WorkloadConfig::default()
        };
        let wl = Workload::generate(&cfg);
        let mut engine = Engine::new();
        for req in wl.all_requests() {
            let resp = engine.execute(req.clone());
            assert!(
                !matches!(resp, Response::Error { .. }),
                "valid-by-construction workload hit: {req} -> {resp}"
            );
        }
    }

    #[test]
    fn zipf_skew_concentrates_traffic() {
        let cfg = WorkloadConfig {
            ops: 2_000,
            seed: 5,
            graphs: 10,
            zipf_exponent: 1.2,
            ..WorkloadConfig::default()
        };
        let wl = Workload::generate(&cfg);
        let hot = wl
            .operations
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Request::Mutate { name, .. } | Request::Query { name, .. }
                        if name == "g000"
                )
            })
            .count();
        // Rank-0 gets weight 1 of H(10, 1.2) ≈ 2.92 ⇒ ~34% of traffic.
        assert!(
            hot > wl.operations.len() / 5,
            "expected zipf hot spot, got {hot}/{}",
            wl.operations.len()
        );
    }

    #[test]
    fn read_only_mix_emits_no_mutations() {
        let cfg =
            WorkloadConfig { ops: 300, mix: ActionMix::read_only(), ..WorkloadConfig::default() };
        let wl = Workload::generate(&cfg);
        assert!(wl.operations.iter().all(|r| matches!(r, Request::Query { .. })));
    }
}
