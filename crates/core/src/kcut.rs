//! Algorithm 4 — `APX-SPLIT` (Theorem 2): greedy `(4+ε)`-approximate
//! Min k-Cut.
//!
//! Repeatedly: compute a `(2+ε)`-approximate min cut in every current
//! connected component, remove the globally smallest one's edges, until at
//! least `k` components exist. The proof (§5) compares the chosen cuts to
//! the Gomory–Hu cut sequence of Saran–Vazirani: the output is within
//! `(2+ε)(2-2/k) < 4+ε` of the optimal k-cut.

use cut_graph::cut::kcut_weight;
use cut_graph::{stoer_wagner, Graph};

use crate::mincut::{approx_min_cut, MinCutOptions};

/// Options for [`apx_split`].
#[derive(Debug, Clone)]
pub struct KCutOptions {
    /// Number of parts `k ≥ 1`.
    pub k: usize,
    /// Options for the inner approximate min-cut calls.
    pub mincut: MinCutOptions,
    /// Components of at most this many vertices are cut exactly
    /// (Stoer–Wagner) instead of approximately.
    pub exact_below: usize,
}

impl KCutOptions {
    /// Defaults for a given `k`.
    pub fn new(k: usize) -> Self {
        Self { k, mincut: MinCutOptions::default(), exact_below: 48 }
    }
}

/// Result of [`apx_split`].
#[derive(Debug, Clone)]
pub struct KCutResult {
    /// Total weight of removed (crossing) edges.
    pub weight: u64,
    /// Partition labeling with exactly `k` parts (`0..k`).
    pub labels: Vec<u32>,
    /// Indices (into the input graph) of the removed edges.
    pub cut_edges: Vec<u32>,
    /// Number of greedy iterations executed.
    pub iterations: usize,
}

/// Greedy approximate Min k-Cut (Algorithm 4).
///
/// Panics unless `1 ≤ k ≤ n`.
pub fn apx_split(g: &Graph, opts: &KCutOptions) -> KCutResult {
    let n = g.n();
    let k = opts.k;
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");

    let mut removed = vec![false; g.m()];
    let mut iterations = 0;
    loop {
        let keep: Vec<u32> = (0..g.m() as u32).filter(|&i| removed[i as usize]).collect();
        let current = g.without_edges(&keep);
        let comp = current.components();
        let ncomp = comp.iter().copied().max().map(|c| c as usize + 1).unwrap_or(0);
        if ncomp >= k {
            // Merge surplus parts (a cut side may itself have been
            // disconnected, overshooting k) and finish.
            let labels = merge_to_k(g, &comp, ncomp, k);
            let weight = kcut_weight(g, &labels);
            let cut_edges: Vec<u32> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| labels[e.u as usize] != labels[e.v as usize])
                .map(|(i, _)| i as u32)
                .collect();
            return KCutResult { weight, labels, cut_edges, iterations };
        }
        iterations += 1;

        // Best approximate cut over all components with ≥ 2 vertices.
        let mut best: Option<(u64, Vec<u32>)> = None; // (weight, side in g ids)
        for c in 0..ncomp as u32 {
            let members: Vec<u32> = (0..n as u32).filter(|&v| comp[v as usize] == c).collect();
            if members.len() < 2 {
                continue;
            }
            let (sub, back) = current.induced(&members);
            let cut = if sub.n() <= opts.exact_below {
                stoer_wagner(&sub)
            } else {
                approx_min_cut(&sub, &opts.mincut)
            };
            let side: Vec<u32> = cut.side.iter().map(|&v| back[v as usize]).collect();
            if best.as_ref().is_none_or(|(w, _)| cut.weight < *w) {
                best = Some((cut.weight, side));
            }
        }
        let (_, side) = best.expect("fewer than k components but none splittable");
        let mut in_side = vec![false; n];
        for &v in &side {
            in_side[v as usize] = true;
        }
        // Remove the crossing edges of the chosen cut (within its component,
        // which is automatic: other components see no crossing edges).
        for (i, e) in g.edges().iter().enumerate() {
            if !removed[i] && in_side[e.u as usize] != in_side[e.v as usize] {
                removed[i] = true;
            }
        }
    }
}

/// Merge a `c ≥ k`-part labeling down to exactly `k` parts, greedily
/// re-joining the pair of parts with the largest crossing weight (each
/// merge can only reduce the k-cut weight).
fn merge_to_k(g: &Graph, comp: &[u32], c: usize, k: usize) -> Vec<u32> {
    let mut label: Vec<u32> = comp.to_vec();
    let mut parts = c;
    while parts > k {
        // Crossing weight per label pair.
        let mut cross: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::new();
        for e in g.edges() {
            let (a, b) = (label[e.u as usize], label[e.v as usize]);
            if a != b {
                let key = (a.min(b), a.max(b));
                *cross.entry(key).or_insert(0) += e.w;
            }
        }
        let (&(a, b), _) = cross
            .iter()
            .max_by_key(|(&(a, b), &w)| (w, std::cmp::Reverse((a, b))))
            // No crossing edges at all: merge the two highest labels.
            .unwrap_or((&(parts as u32 - 2, parts as u32 - 1), &0));
        for l in label.iter_mut() {
            if *l == b {
                *l = a;
            }
        }
        // Relabel to keep the range contiguous.
        let mut seen = std::collections::HashMap::new();
        let mut next = 0u32;
        for l in label.iter_mut() {
            let e = seen.entry(*l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            });
            *l = *e;
        }
        parts -= 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use cut_graph::{brute, gen};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn opts(k: usize) -> KCutOptions {
        let mut o = KCutOptions::new(k);
        o.mincut.repetitions = 3;
        o
    }

    fn check_result(g: &Graph, k: usize, r: &KCutResult) {
        assert_eq!(r.labels.len(), g.n());
        let parts: std::collections::HashSet<u32> = r.labels.iter().copied().collect();
        assert_eq!(parts.len(), k, "expected exactly k parts");
        assert_eq!(kcut_weight(g, &r.labels), r.weight);
        let edge_sum: u64 = r.cut_edges.iter().map(|&i| g.edge(i as usize).w).sum();
        assert_eq!(edge_sum, r.weight);
    }

    #[test]
    fn k1_is_trivial() {
        let g = gen::cycle(6);
        let r = apx_split(&g, &opts(1));
        assert_eq!(r.weight, 0);
        check_result(&g, 1, &r);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn k2_matches_min_cut_on_small_graphs() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let n = rng.gen_range(4..12);
            let g = gen::connected_gnm(n, 2 * n, 1..=7, &mut rng);
            let r = apx_split(&g, &opts(2));
            check_result(&g, 2, &r);
            // Components are cut exactly below `exact_below`, so k=2 greedy
            // equals the exact min cut here.
            assert_eq!(r.weight, cut_graph::stoer_wagner(&g).weight);
        }
    }

    #[test]
    fn within_4eps_of_bruteforce_optimum() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..8 {
            let n = rng.gen_range(6..11);
            let g = gen::connected_gnm(n, n + rng.gen_range(2..n), 1..=6, &mut rng);
            for k in 2..=4usize.min(n - 1) {
                let (optw, _) = brute::min_kcut(&g, k);
                let r = apx_split(&g, &opts(k));
                check_result(&g, k, &r);
                assert!(r.weight >= optw);
                assert!(
                    (r.weight as f64) <= 4.5 * optw as f64 + 1e-9,
                    "k={k}: {} vs opt {optw}",
                    r.weight
                );
            }
        }
    }

    #[test]
    fn cuts_planted_clusters() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Three dense clusters joined by single bridges.
        let a = gen::complete(5);
        let mut edges: Vec<cut_graph::Edge> = a.edges().to_vec();
        for off in [5u32, 10] {
            edges.extend(a.edges().iter().map(|e| cut_graph::Edge::new(e.u + off, e.v + off, e.w)));
        }
        edges.push(cut_graph::Edge::new(0, 5, 1));
        edges.push(cut_graph::Edge::new(5, 10, 1));
        let g = Graph::new(15, edges);
        let _ = &mut rng;
        let r = apx_split(&g, &opts(3));
        check_result(&g, 3, &r);
        assert_eq!(r.weight, 2, "should cut exactly the two bridges");
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn kn_cuts_all_edges() {
        let g = gen::cycle(5);
        let r = apx_split(&g, &opts(5));
        check_result(&g, 5, &r);
        assert_eq!(r.weight, g.total_weight());
    }

    #[test]
    fn disconnected_input_counts_existing_components() {
        let g = Graph::unit(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        // Already 2 components: k=2 requires no cutting.
        let r = apx_split(&g, &opts(2));
        assert_eq!(r.weight, 0);
        assert_eq!(r.iterations, 0);
        check_result(&g, 2, &r);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn rejects_k_beyond_n() {
        let g = gen::cycle(4);
        let _ = apx_split(&g, &opts(5));
    }
}
