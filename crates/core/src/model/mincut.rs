//! Algorithm 1 in-model: `AMPC-MinCut` with per-level parallel round
//! accounting (Theorem 1 / Corollary 1 baseline).
//!
//! The recursion is materialized level by level. All instances of a level
//! (and all branch copies) run *in parallel* in the model, so the level's
//! round cost is the **maximum** over its instances, and the algorithm's
//! round count is the sum of level maxima — `O(log log n)` levels of
//! `O(1)` rounds each in AMPC mode. Running the identical code in MPC
//! mode swaps every primitive for its pointer-doubling variant, which is
//! the Ghaffari–Nowicki-shaped `O(log n)`-rounds-per-level baseline
//! (Corollary 1).

use ampc_model::{AmpcConfig, Executor};
use ampc_primitives::connectivity;
use cut_graph::{CutResult, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::contraction::bag_of;
use crate::mincut::MinCutOptions;
use crate::model::singleton::ampc_smallest_singleton_cut;
use crate::priorities::exponential_priorities;

/// Round accounting for one in-model `AMPC-MinCut` run.
#[derive(Debug, Clone)]
pub struct AmpcMinCutReport {
    /// Best cut found (value + realizing side in original vertex ids).
    pub cut: CutResult,
    /// Recursion levels executed (the `O(log log n)` quantity).
    pub levels: usize,
    /// Σ over levels of the max instance rounds — the model's round cost.
    pub rounds_total: usize,
    /// Same, excluding the MSF substrate rounds (see DESIGN.md: the paper
    /// cites an `O(1/ε)`-round AMPC MSF; ours is Borůvka-shaped).
    pub rounds_excl_mst: usize,
    /// Per-level round maxima.
    pub rounds_by_level: Vec<usize>,
    /// Instances solved exactly at the base-case size.
    pub base_instances: usize,
}

/// Run `AMPC-MinCut` in-model. `model_cfg.mode` selects AMPC or the
/// MPC-shaped baseline; `opts` fixes the approximation schedule.
pub fn ampc_min_cut(g: &Graph, opts: &MinCutOptions, model_cfg: &AmpcConfig) -> AmpcMinCutReport {
    let n0 = g.n();
    assert!(n0 >= 2);
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let reps = opts.repetitions.max(1);

    // (instance graph, projection original-vertex -> instance-vertex).
    let identity: Vec<u32> = (0..n0 as u32).collect();
    let mut active: Vec<(Graph, Vec<u32>)> =
        (0..reps).map(|_| (g.clone(), identity.clone())).collect();

    let mut best: Option<CutResult> = None;
    let consider = |c: CutResult, best: &mut Option<CutResult>| {
        if best.as_ref().is_none_or(|b| c.weight < b.weight) {
            *best = Some(c);
        }
    };
    let mut rounds_by_level = Vec::new();
    let mut mst_by_level = Vec::new();
    let mut base_instances = 0usize;
    let base = opts.base_size.max(2);

    while !active.is_empty() {
        assert!(rounds_by_level.len() < 64, "schedule not shrinking");
        let mut next_active = Vec::new();
        let mut level_rounds = 0usize;
        let mut level_mst = 0usize;
        for (h, proj) in active.drain(..) {
            let n = h.n();
            if n <= base {
                // Base case: one machine solves the instance exactly.
                base_instances += 1;
                let mut exec = Executor::new(model_cfg.clone());
                let cut = exec
                    .round("mincut/base", 1, |ctx, _| {
                        ctx.charge_local((h.n() + h.m()) as u64);
                        cut_graph::stoer_wagner(&h)
                    })
                    .pop()
                    .unwrap();
                level_rounds = level_rounds.max(exec.rounds());
                consider(lift(&cut, &proj, n0), &mut best);
                continue;
            }
            let t = (n0 as f64 / n as f64).max(1.0);
            let (branch, x) = opts.schedule(t);
            let target = ((n as f64 / x).ceil() as usize).clamp(2, n - 1);
            for _ in 0..branch {
                let mut exec = Executor::new(model_cfg.clone());
                let prio = exponential_priorities(&h, &mut rng);
                let rep = ampc_smallest_singleton_cut(&mut exec, &h, &prio);
                // Candidate: the copy's best singleton cut.
                let side = bag_of(&h, &prio, rep.cut.leader, rep.cut.time);
                consider(lift(&CutResult { weight: rep.cut.weight, side }, &proj, n0), &mut best);
                // Contract the copy by the schedule's factor: components
                // of the cheapest (n - target) forest edges, resolved
                // in-model.
                let take = n - target;
                let prefix: Vec<(u32, u32)> = rep
                    .forest_edges
                    .iter()
                    .take(take)
                    .map(|&ei| {
                        let e = h.edge(ei as usize);
                        (e.u, e.v)
                    })
                    .collect();
                let comp = connectivity(&mut exec, n, &prefix);
                // Contiguous relabeling (shuffle).
                let mut remap = std::collections::HashMap::new();
                let mut labels = vec![0u32; n];
                for v in 0..n {
                    let next_id = remap.len() as u32;
                    labels[v] = *remap.entry(comp[v]).or_insert(next_id);
                }
                let contracted = h.contract(&labels);
                let proj2: Vec<u32> = proj.iter().map(|&p| labels[p as usize]).collect();
                level_rounds = level_rounds.max(exec.rounds());
                level_mst = level_mst.max(rep.mst_rounds);
                if contracted.n() >= 2 {
                    next_active.push((contracted, proj2));
                }
            }
        }
        rounds_by_level.push(level_rounds);
        mst_by_level.push(level_mst);
        active = next_active;
    }

    let rounds_total: usize = rounds_by_level.iter().sum();
    let rounds_excl_mst = rounds_total - mst_by_level.iter().sum::<usize>();
    AmpcMinCutReport {
        cut: best.expect("at least the base case"),
        levels: rounds_by_level.len(),
        rounds_total,
        rounds_excl_mst,
        rounds_by_level,
        base_instances,
    }
}

/// Map a cut side from instance ids back to original vertex ids.
fn lift(cut: &CutResult, proj: &[u32], n0: usize) -> CutResult {
    let inst_n = cut
        .side
        .iter()
        .copied()
        .max()
        .map(|v| v as usize + 1)
        .unwrap_or(0)
        .max(proj.iter().copied().max().map(|v| v as usize + 1).unwrap_or(1));
    let mask = {
        let mut m = vec![false; inst_n];
        for &v in &cut.side {
            m[v as usize] = true;
        }
        m
    };
    let side: Vec<u32> = (0..n0 as u32).filter(|&v| mask[proj[v as usize] as usize]).collect();
    CutResult { weight: cut.weight, side }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_model::ExecMode;
    use cut_graph::{cut_weight, gen, stoer_wagner};
    use rand::Rng;

    fn cfg(n: usize, mode: ExecMode) -> AmpcConfig {
        let mut c = AmpcConfig::new(n, 0.5).with_threads(2);
        c.mode = mode;
        c
    }

    fn opts(seed: u64) -> MinCutOptions {
        MinCutOptions { epsilon: 0.5, base_size: 16, repetitions: 2, seed }
    }

    #[test]
    fn produces_valid_cuts_within_bound() {
        let mut rng = SmallRng::seed_from_u64(61);
        for _ in 0..4 {
            let n = rng.gen_range(24..64);
            let g = gen::connected_gnm(n, 3 * n, 1..=8, &mut rng);
            let exact = stoer_wagner(&g).weight;
            let rep = ampc_min_cut(&g, &opts(rng.gen()), &cfg(n, ExecMode::Ampc));
            assert!(rep.cut.is_proper(n));
            assert_eq!(cut_weight(&g, &rep.cut.mask(n)), rep.cut.weight);
            assert!(rep.cut.weight >= exact);
            assert!((rep.cut.weight as f64) <= 2.5 * exact as f64, "{} vs {exact}", rep.cut.weight);
        }
    }

    #[test]
    fn level_count_is_loglog_like() {
        let mut rng = SmallRng::seed_from_u64(62);
        let g1 = gen::connected_gnm(64, 192, 1..=4, &mut rng);
        let g2 = gen::connected_gnm(1024, 3072, 1..=4, &mut rng);
        let o = MinCutOptions { epsilon: 0.5, base_size: 16, repetitions: 1, seed: 3 };
        let r1 = ampc_min_cut(&g1, &o, &cfg(64, ExecMode::Ampc));
        let r2 = ampc_min_cut(&g2, &o, &cfg(1024, ExecMode::Ampc));
        assert!(r1.levels >= 1);
        // 16x the vertices adds at most a few levels.
        assert!(r2.levels <= r1.levels + 5, "{} -> {}", r1.levels, r2.levels);
    }

    #[test]
    fn mpc_mode_needs_more_rounds() {
        let mut rng = SmallRng::seed_from_u64(63);
        let g = gen::connected_gnm(512, 1536, 1..=4, &mut rng);
        let o = MinCutOptions { epsilon: 0.5, base_size: 16, repetitions: 1, seed: 5 };
        let ra = ampc_min_cut(&g, &o, &cfg(512, ExecMode::Ampc));
        let rm = ampc_min_cut(&g, &o, &cfg(512, ExecMode::Mpc));
        assert_eq!(ra.cut.weight, rm.cut.weight, "same seeds, same cuts");
        assert!(
            ra.rounds_total < rm.rounds_total,
            "ampc={} mpc={}",
            ra.rounds_total,
            rm.rounds_total
        );
    }

    #[test]
    fn base_case_only_for_small_graphs() {
        let mut rng = SmallRng::seed_from_u64(64);
        let g = gen::connected_gnm(12, 30, 1..=5, &mut rng);
        let o = MinCutOptions { epsilon: 0.5, base_size: 16, repetitions: 1, seed: 1 };
        let rep = ampc_min_cut(&g, &o, &cfg(12, ExecMode::Ampc));
        assert_eq!(rep.levels, 1);
        assert_eq!(rep.base_instances, 1);
        assert_eq!(rep.cut.weight, stoer_wagner(&g).weight);
    }
}
