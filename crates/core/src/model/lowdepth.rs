//! Algorithm 2 in-model: the generalized low-depth tree decomposition on
//! the AMPC executor.
//!
//! Round structure (each step `O(1/ε)` AMPC rounds / `O(log n)` MPC):
//!
//! 1. root + orient the forest, subtree sizes (Euler tour, Lemma 4);
//! 2. heavy children = per-vertex argmax over children subtree sizes
//!    (chunked `N^ε`-ary aggregation);
//! 3. heavy-path membership: `hp_next[v]` points to the parent iff `v` is
//!    its heavy child; one chain compression gives every vertex its path
//!    top and its position (= depth difference);
//! 4. binarized-path depth offsets `d0` accumulate along the meta-parent
//!    chain (a second chain compression over paths — the sum telescopes);
//! 5. labels by pure arithmetic: `ℓ(v) = d0 + label_in_path(pos, len) - 1`
//!    (Lemma 7's one-round step).

use ampc_model::{pack2, Dht, Executor};
use ampc_primitives::euler::{root_forest, InModelForest};
use ampc_primitives::jump::chain_aggregate;
use cut_tree::binpath;

/// In-model decomposition output.
#[derive(Debug, Clone)]
pub struct InModelDecomposition {
    /// The rooted forest (step 1).
    pub forest: InModelForest,
    /// Per-vertex heavy-path top vertex.
    pub path_top: Vec<u32>,
    /// Per-vertex position within its heavy path (0 = top).
    pub pos_in_path: Vec<u32>,
    /// Per-vertex length of its heavy path.
    pub path_len: Vec<u32>,
    /// Per-vertex expanded-meta-tree depth of the path's binarized root.
    pub d0: Vec<u32>,
    /// Definition-1 labels.
    pub label: Vec<u32>,
    /// Decomposition height.
    pub height: u32,
}

/// Compute the generalized low-depth decomposition of a forest in-model.
pub fn ampc_low_depth_decomposition(
    exec: &mut Executor,
    n: usize,
    edges: &[(u32, u32)],
) -> InModelDecomposition {
    // Step 1: rooting (Lemma 4 functionality).
    let forest = root_forest(exec, n, edges);
    if n == 0 {
        return InModelDecomposition {
            forest,
            path_top: vec![],
            pos_in_path: vec![],
            path_len: vec![],
            d0: vec![],
            label: vec![],
            height: 0,
        };
    }

    // Step 2: heavy children. Children lists in a DHT (the end-of-round
    // shuffle groups children under parents); chunked max per parent.
    let child_dht: Dht<u32> = Dht::new();
    let cdeg_dht: Dht<u32> = Dht::new();
    {
        let mut kids: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n as u32 {
            let p = forest.parent[v as usize];
            if p != v {
                kids[p as usize].push(v);
            }
        }
        for (p, list) in kids.iter().enumerate() {
            cdeg_dht.bulk_load([(p as u64, list.len() as u32)]);
            child_dht
                .bulk_load(list.iter().enumerate().map(|(i, &c)| (pack2(p as u32, i as u32), c)));
        }
    }
    let size_dht: Dht<u32> = Dht::new();
    size_dht.bulk_load((0..n).map(|v| (v as u64, forest.subtree[v])));
    let cap = exec.cfg().local_capacity();
    // Work units: (parent, chunk); fold (size, child) maxima, ties to the
    // smaller child id — matching the reference Hld.
    let mut units: Vec<(u32, u32)> = Vec::new();
    let mut deg_of = vec![0u32; n];
    for v in 0..n as u32 {
        let p = forest.parent[v as usize];
        if p != v {
            deg_of[p as usize] += 1;
        }
    }
    for (v, &d) in deg_of.iter().enumerate() {
        for c in 0..(d as usize).div_ceil(cap) {
            units.push((v as u32, c as u32));
        }
    }
    let partials = exec.round("decomp/heavy", units.len().max(1), |ctx, mi| {
        if units.is_empty() {
            return (0u32, None);
        }
        let (p, c) = units[mi];
        let deg = cdeg_dht.expect(ctx, p as u64) as usize;
        let lo = c as usize * cap;
        let hi = ((c as usize + 1) * cap).min(deg);
        let mut best: Option<(u32, std::cmp::Reverse<u32>)> = None; // (size, Reverse(child))
        for i in lo..hi {
            let child = child_dht.expect(ctx, pack2(p, i as u32));
            let s = size_dht.expect(ctx, child as u64);
            let cand = (s, std::cmp::Reverse(child));
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
            }
        }
        (p, best)
    });
    let mut heavy_child = vec![u32::MAX; n];
    {
        let mut best: Vec<Option<(u32, std::cmp::Reverse<u32>)>> = vec![None; n];
        for (p, b) in partials {
            if let Some(cand) = b {
                if best[p as usize].is_none_or(|x| cand > x) {
                    best[p as usize] = Some(cand);
                }
            }
        }
        for v in 0..n {
            if let Some((_, std::cmp::Reverse(c))) = best[v] {
                heavy_child[v] = c;
            }
        }
    }

    // Step 3: heavy-path tops and positions via one chain compression.
    let hp_next: Vec<u32> = (0..n as u32)
        .map(|v| {
            let p = forest.parent[v as usize];
            if p != v && heavy_child[p as usize] == v {
                p
            } else {
                v
            }
        })
        .collect();
    let hp = chain_aggregate(exec, &hp_next, &vec![1u64; n], "decomp/heavy-paths");
    let path_top: Vec<u32> = hp.root.clone();
    let pos_in_path: Vec<u32> = hp.acc.iter().map(|&d| d as u32).collect();
    // Path lengths: max position + 1, grouped per top (shuffle).
    let mut path_len_of_top = vec![0u32; n];
    for v in 0..n {
        let t = path_top[v] as usize;
        path_len_of_top[t] = path_len_of_top[t].max(pos_in_path[v] + 1);
    }
    let path_len: Vec<u32> = (0..n).map(|v| path_len_of_top[path_top[v] as usize]).collect();

    // Step 4: d0 along the meta chain. For a path with top vertex `t`
    // (non-root), its parent path is `path_top[parent(t)]`, and the
    // telescoping increment is the binarized depth of the connecting leaf.
    let mut meta_next: Vec<u32> = (0..n as u32).collect();
    let mut meta_val = vec![0u64; n];
    for t in 0..n as u32 {
        if path_top[t as usize] != t {
            continue; // only path tops participate
        }
        let p = forest.parent[t as usize];
        if p == t {
            continue; // root path: terminal
        }
        let q_top = path_top[p as usize];
        meta_next[t as usize] = q_top;
        let q_len = path_len[p as usize] as u64;
        let q_pos = pos_in_path[p as usize] as u64;
        meta_val[t as usize] = binpath::depth_of(binpath::leaf_at(q_pos, q_len)) as u64;
    }
    let meta = chain_aggregate(exec, &meta_next, &meta_val, "decomp/meta-depth");
    let d0: Vec<u32> = (0..n).map(|v| (meta.acc[path_top[v] as usize] + 1) as u32).collect();

    // Step 5: labels by local arithmetic (one round over vertices).
    let labels = exec.round_over("decomp/label", n, |ctx, range| {
        ctx.charge_local(range.len() as u64);
        range
            .map(|v| {
                let len = path_len[v] as u64;
                let pos = pos_in_path[v] as u64;
                d0[v] + binpath::label_in_path(pos, len) - 1
            })
            .collect::<Vec<u32>>()
    });
    let label: Vec<u32> = labels.into_iter().flatten().collect();
    let height = label.iter().copied().max().unwrap_or(0);

    InModelDecomposition { forest, path_top, pos_in_path, path_len, d0, label, height }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_model::{AmpcConfig, ExecMode};
    use cut_graph::gen;
    use cut_tree::lowdepth::low_depth_decomposition;
    use cut_tree::{Hld, RootedForest};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn compare_with_reference(n: usize, edges: &[(u32, u32)], mode: ExecMode) -> usize {
        let mut cfg = AmpcConfig::new(n.max(4), 0.5).with_threads(2);
        cfg.mode = mode;
        let mut exec = Executor::new(cfg);
        let got = ampc_low_depth_decomposition(&mut exec, n, edges);

        let f = RootedForest::from_edges(n, edges);
        let hld = Hld::new(&f);
        let expect = low_depth_decomposition(&f, &hld);
        assert_eq!(got.label, expect.label, "labels differ (n={n})");
        assert_eq!(got.height, expect.height);
        // Positions/lengths must agree with the reference HLD as well.
        for v in 0..n as u32 {
            assert_eq!(got.pos_in_path[v as usize], hld.pos_in_path[v as usize], "pos v={v}");
            assert_eq!(got.path_len[v as usize] as usize, hld.path_of(v).len(), "len v={v}");
            assert_eq!(got.path_top[v as usize], hld.head(v), "top v={v}");
        }
        exec.rounds()
    }

    #[test]
    fn matches_reference_on_fixed_trees() {
        compare_with_reference(
            10,
            &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6), (4, 7), (5, 8), (8, 9)],
            ExecMode::Ampc,
        );
        let path: Vec<(u32, u32)> = (1..64u32).map(|i| (i - 1, i)).collect();
        compare_with_reference(64, &path, ExecMode::Ampc);
        let star: Vec<(u32, u32)> = (1..50u32).map(|i| (0, i)).collect();
        compare_with_reference(50, &star, ExecMode::Ampc);
    }

    #[test]
    fn matches_reference_on_random_trees_both_modes() {
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [2usize, 7, 33, 150, 700] {
            let g = gen::random_tree(n, &mut rng);
            let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
            compare_with_reference(n, &edges, ExecMode::Ampc);
            compare_with_reference(n, &edges, ExecMode::Mpc);
        }
    }

    #[test]
    fn matches_reference_on_forests() {
        compare_with_reference(9, &[(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)], ExecMode::Ampc);
        compare_with_reference(4, &[], ExecMode::Ampc);
    }

    #[test]
    fn produces_valid_decompositions_on_big_trees() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = gen::random_tree(3000, &mut rng);
        let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let mut exec = Executor::new(AmpcConfig::new(3000, 0.5).with_threads(2));
        let got = ampc_low_depth_decomposition(&mut exec, 3000, &edges);
        let f = RootedForest::from_edges(3000, &edges);
        assert!(cut_tree::validate_decomposition(&f, &got.label).is_ok());
        let lg = 3000f64.log2() + 1.0;
        assert!((got.height as f64) <= 1.5 * lg * lg);
    }

    #[test]
    fn ampc_rounds_beat_mpc_on_paths() {
        let path: Vec<(u32, u32)> = (1..4096u32).map(|i| (i - 1, i)).collect();
        let ra = compare_with_reference(4096, &path, ExecMode::Ampc);
        let rm = compare_with_reference(4096, &path, ExecMode::Mpc);
        assert!(ra * 2 < rm, "ampc={ra} mpc={rm}");
    }
}
