//! In-model tree path-maximum queries: K-ary ancestor-jump tables with
//! max aggregation.
//!
//! The paper queries path minima/maxima through the precomputed
//! heavy-light + RMQ structure of Theorem 4 (`O(1/ε)` build rounds,
//! `O(log n)` DHT queries per path query). This module provides the same
//! contract with a jump-table layout that is natural for a DHT: row `r`
//! stores, per vertex, its ancestor `fanin^r` levels up and the maximum
//! edge priority on the way. Row `r+1` is built from row `r` by an
//! *adaptive* `fanin`-hop walk (one round per row ⇒ `O(log_fanin depth)`
//! build rounds); in MPC mode the walk degenerates to doubling
//! (`fanin = 2` via a single non-adaptive read).
//!
//! Queries (`join_time`, i.e. pathmax through the LCA) are adaptive read
//! chains of `O(fanin · log_fanin n)` DHT lookups — the Theorem 4 query
//! budget up to constants.

use ampc_model::{pack2, Dht, ExecMode, Executor, MachineCtx};

/// The DHT-resident jump structure.
pub struct PathMax {
    rows: usize,
    fanin: usize,
    /// pack2(row, v) -> (ancestor, max prio along the jump).
    table: Dht<(u32, u64)>,
    /// v -> depth.
    depth: Dht<u32>,
}

impl PathMax {
    /// Build for a rooted forest: `parent[v]` (roots self-looped),
    /// `edge_prio[v]` = priority of the edge to the parent, `depth[v]`.
    pub fn build(exec: &mut Executor, parent: &[u32], edge_prio: &[u64], depth: &[u32]) -> PathMax {
        let n = parent.len();
        let fanin = match exec.cfg().mode {
            ExecMode::Ampc => 4usize,
            ExecMode::Mpc => 2,
        };
        let max_depth = depth.iter().copied().max().unwrap_or(0).max(1) as usize;
        let mut rows = 1;
        let mut span = 1usize;
        while span < max_depth {
            span = span.saturating_mul(fanin);
            rows += 1;
        }

        let table: Dht<(u32, u64)> = Dht::new();
        table.bulk_load((0..n).map(|v| {
            let p = parent[v];
            let prio = if p as usize == v { 0 } else { edge_prio[v] };
            (pack2(0, v as u32), (p, prio))
        }));
        let depth_dht: Dht<u32> = Dht::new();
        depth_dht.bulk_load((0..n).map(|v| (v as u64, depth[v])));

        let cap = exec.cfg().local_capacity();
        // Each node costs up to fanin+1 reads per row round.
        let per_machine = (cap / (fanin + 1)).max(1);
        let machines = n.div_ceil(per_machine).max(1);
        for r in 1..rows {
            let batches = exec.round(&format!("pathmax/row{r}"), machines, |ctx, mi| {
                let lo = mi * per_machine;
                let hi = ((mi + 1) * per_machine).min(n);
                let mut writes = Vec::new();
                for v in lo..hi {
                    let (mut anc, mut mx) = table.expect(ctx, pack2(r as u32 - 1, v as u32));
                    // Adaptive walk: compose fanin-1 more row-(r-1) jumps.
                    for _ in 1..fanin {
                        let (a2, m2) = table.expect(ctx, pack2(r as u32 - 1, anc));
                        if a2 == anc {
                            break;
                        }
                        mx = mx.max(m2);
                        anc = a2;
                    }
                    ctx.stage(&mut writes, pack2(r as u32, v as u32), (anc, mx));
                }
                writes
            });
            table.commit(batches);
        }
        PathMax { rows, fanin, table, depth: depth_dht }
    }

    /// Depth lookup (one DHT read).
    pub fn depth_of(&self, ctx: &MachineCtx, v: u32) -> u32 {
        self.depth.expect(ctx, v as u64)
    }

    /// Upper-bound estimate of DHT reads per [`PathMax::join_time`] query,
    /// used by callers to size per-machine work against the `N^ε` budget.
    pub fn query_cost(&self) -> usize {
        2 * (self.fanin + 1) * self.rows + 6
    }

    /// Ancestor of `v` exactly `d` levels up, with the path maximum.
    fn lift(&self, ctx: &MachineCtx, mut v: u32, mut d: u64) -> (u32, u64) {
        let mut mx = 0u64;
        let mut r = self.rows;
        while d > 0 {
            r = r.saturating_sub(1);
            let span = (self.fanin as u64).pow(r as u32);
            while d >= span {
                let (a, m) = self.table.expect(ctx, pack2(r as u32, v));
                mx = mx.max(m);
                v = a;
                d -= span;
            }
            if r == 0 {
                break;
            }
        }
        debug_assert_eq!(d, 0);
        (v, mx)
    }

    /// Maximum edge priority on the tree path `x … y` — the first
    /// contraction time at which `x` and `y` share a bag. 0 if `x == y`.
    ///
    /// Panics (missing-record) if `x` and `y` are in different trees.
    pub fn join_time(&self, ctx: &MachineCtx, x: u32, y: u32) -> u64 {
        if x == y {
            return 0;
        }
        let dx = self.depth_of(ctx, x) as u64;
        let dy = self.depth_of(ctx, y) as u64;
        let (mut a, mut b) = (x, y);
        let mut mx = 0u64;
        if dx > dy {
            let (a2, m) = self.lift(ctx, a, dx - dy);
            a = a2;
            mx = mx.max(m);
        } else if dy > dx {
            let (b2, m) = self.lift(ctx, b, dy - dx);
            b = b2;
            mx = mx.max(m);
        }
        if a == b {
            return mx;
        }
        // Descend rows keeping a != b strictly below the LCA.
        for r in (0..self.rows).rev() {
            loop {
                let (na, ma) = self.table.expect(ctx, pack2(r as u32, a));
                let (nb, mb) = self.table.expect(ctx, pack2(r as u32, b));
                if na == nb {
                    break; // would jump to/above the LCA
                }
                mx = mx.max(ma).max(mb);
                a = na;
                b = nb;
            }
        }
        // a and b are now children of the LCA: take the last two edges.
        let (pa, ma) = self.table.expect(ctx, pack2(0, a));
        let (pb, mb) = self.table.expect(ctx, pack2(0, b));
        debug_assert_eq!(pa, pb, "different components");
        mx.max(ma).max(mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_model::AmpcConfig;
    use cut_graph::gen;
    use cut_tree::rmq::{HldPathQuery, RmqOp};
    use cut_tree::{Hld, RootedForest};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn check_tree(n: usize, seed: u64, mode: ExecMode) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::random_tree(n, &mut rng);
        let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let f = RootedForest::from_edges(n, &edges);
        let mut prio = vec![0u64; n];
        #[allow(clippy::needless_range_loop)] // v is a vertex id
        for v in 0..n {
            if !f.is_root(v as u32) {
                prio[v] = rng.gen_range(1..1_000_000);
            }
        }
        let mut cfg = AmpcConfig::new(n.max(4), 0.5).with_threads(2);
        cfg.mode = mode;
        let mut exec = Executor::new(cfg);
        let pm = PathMax::build(&mut exec, &f.parent, &prio, &f.depth);

        let hld = Hld::new(&f);
        let reference = HldPathQuery::new(&f, &hld, &prio, RmqOp::Max);
        let queries = exec.round("query", 1, |ctx, _| {
            // Deterministic pseudo-random query pairs (LCG).
            let mut res = Vec::new();
            let mut state = 0x12345678u64;
            for _ in 0..300 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let x = (state >> 33) as u32 % n as u32;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let y = (state >> 33) as u32 % n as u32;
                res.push((x, y, pm.join_time(ctx, x, y)));
            }
            res
        });
        for (x, y, got) in &queries[0] {
            assert_eq!(*got, reference.join_time(*x, *y), "x={x} y={y} n={n}");
        }
    }

    #[test]
    fn matches_hld_reference_on_random_trees() {
        for (n, seed) in [(2usize, 1u64), (5, 2), (40, 3), (300, 4), (1500, 5)] {
            check_tree(n, seed, ExecMode::Ampc);
        }
        check_tree(200, 6, ExecMode::Mpc);
    }

    #[test]
    fn deep_path_tree() {
        // A path: depths up to n-1 exercise multi-row lifts.
        let n = 500;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
        let f = RootedForest::from_edges(n, &edges);
        let prio: Vec<u64> = (0..n as u64).map(|v| v * 7 % 1000 + 1).collect();
        let mut exec = Executor::new(AmpcConfig::new(n, 0.5).with_threads(2));
        let pm = PathMax::build(&mut exec, &f.parent, &prio, &f.depth);
        let hld = Hld::new(&f);
        let reference = HldPathQuery::new(&f, &hld, &prio, RmqOp::Max);
        let res = exec.round("query", 1, |ctx, _| {
            vec![
                pm.join_time(ctx, 0, 499),
                pm.join_time(ctx, 10, 11),
                pm.join_time(ctx, 250, 250),
                pm.join_time(ctx, 499, 0),
            ]
        });
        assert_eq!(res[0][0], reference.join_time(0, 499));
        assert_eq!(res[0][1], reference.join_time(10, 11));
        assert_eq!(res[0][2], 0);
        assert_eq!(res[0][3], res[0][0]);
    }

    #[test]
    fn build_rounds_scale_with_mode() {
        let n = 2048;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
        let f = RootedForest::from_edges(n, &edges);
        let prio = vec![1u64; n];
        let rounds_of = |mode: ExecMode| {
            let mut cfg = AmpcConfig::new(n, 0.5).with_threads(2);
            cfg.mode = mode;
            let mut exec = Executor::new(cfg);
            let _ = PathMax::build(&mut exec, &f.parent, &prio, &f.depth);
            exec.rounds()
        };
        let ra = rounds_of(ExecMode::Ampc);
        let rm = rounds_of(ExecMode::Mpc);
        assert!(ra < rm, "ampc={ra} mpc={rm}");
    }
}
