//! Algorithm 3 in-model: `SmallestSingletonCut` on the AMPC executor
//! (Theorem 3).
//!
//! Round groups (labels in parentheses match `RunStats::rounds_labeled`):
//!
//! * `mst/…` — minimum spanning forest of the contraction priorities;
//! * `euler/…`, `decomp/…` — rooting + generalized low-depth
//!   decomposition (Algorithm 2);
//! * `pathmax/…` — the Theorem-4-style path-maximum structure;
//! * `singleton/sep` — separator parents from the ≤ 2 boundary edges of
//!   each leader's component, located by pure binarized-path arithmetic
//!   (Lemma 10) plus `O(1)` DHT reads per vertex;
//! * `singleton/ldr` — `ldr_time` (Lemma 11) via boundary-edge path-max
//!   queries;
//! * `singleton/intervals` — per-edge leader-chain walks emitting the
//!   Lemma 13 time intervals (adaptive chains of DHT reads);
//! * `singleton/sweep` — per-leader weighted stabbing minima (Lemma 14);
//!   leaders whose interval lists exceed local memory fall back to the
//!   distributed sort + minimum-prefix-sum primitives (Theorem 5);
//! * `singleton/reduce` — the final minimum (Observation 7).

use ampc_model::{pack2, Dht, Executor};
use ampc_primitives::jump::chain_aggregate;
use ampc_primitives::mst::{minimum_spanning_forest, PrioEdge};
use ampc_primitives::sample_sort;
use cut_graph::Graph;
use cut_tree::binpath;

use crate::intervals::min_stabbing_weight;
use crate::model::lowdepth::ampc_low_depth_decomposition;
use crate::model::pathmax::PathMax;
use crate::singleton::SingletonCut;

const NONE: u32 = u32::MAX;

/// Output of the in-model engine plus round accounting.
#[derive(Debug, Clone)]
pub struct SingletonReport {
    /// The smallest singleton cut (identical to the reference engine's).
    pub cut: SingletonCut,
    /// Rounds spent in the MSF substrate.
    pub mst_rounds: usize,
    /// Rounds spent after the MSF (decomposition + tracking).
    pub tracking_rounds: usize,
    /// The spanning-forest edge indices (by increasing priority) — the
    /// contraction-relevant edges, reused by `AMPC-MinCut` for prefix
    /// contraction.
    pub forest_edges: Vec<u32>,
}

/// Run Algorithm 3 in-model on `(g, prio)` using `exec` for rounds.
pub fn ampc_smallest_singleton_cut(
    exec: &mut Executor,
    g: &Graph,
    prio: &[u64],
) -> SingletonReport {
    let n = g.n();
    assert!(n >= 2, "need at least 2 vertices");
    assert_eq!(prio.len(), g.m());

    // ---- MSF of the contraction priorities ----
    let rounds_before_mst = exec.rounds();
    let pedges: Vec<PrioEdge> =
        g.edges().iter().zip(prio).map(|(e, &p)| PrioEdge { u: e.u, v: e.v, prio: p }).collect();
    let forest_edges = minimum_spanning_forest(exec, n, &pedges);
    let mst_rounds = exec.rounds() - rounds_before_mst;
    let tracking_start = exec.rounds();

    // ---- Algorithm 2: decomposition ----
    let tree_pairs: Vec<(u32, u32)> = forest_edges
        .iter()
        .map(|&ei| {
            let e = g.edge(ei as usize);
            (e.u, e.v)
        })
        .collect();
    let de = ampc_low_depth_decomposition(exec, n, &tree_pairs);
    let parent = &de.forest.parent;
    // Parent-edge priorities.
    let mut edge_prio = vec![0u64; n];
    {
        let mut prio_of_pair: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::new();
        for &ei in &forest_edges {
            let e = g.edge(ei as usize);
            prio_of_pair.insert((e.u.min(e.v), e.u.max(e.v)), prio[ei as usize]);
        }
        for v in 0..n as u32 {
            let p = parent[v as usize];
            if p != v {
                edge_prio[v as usize] = prio_of_pair[&(v.min(p), v.max(p))];
            }
        }
    }

    // ---- path-max structure (Theorem 4 stand-in) ----
    let pm = PathMax::build(exec, parent, &edge_prio, &de.forest.depth);

    // DHT mirrors of the decomposition state used by adaptive queries.
    let label_dht: Dht<u32> = Dht::new();
    label_dht.bulk_load((0..n).map(|v| (v as u64, de.label[v])));
    // (path top, pos) -> vertex.
    let at_pos: Dht<u32> = Dht::new();
    at_pos.bulk_load((0..n).map(|v| (pack2(de.path_top[v], de.pos_in_path[v]), v as u32)));

    let cap = exec.cfg().local_capacity();
    // Each vertex costs ≤ ~5 DHT reads in the separator round.
    let sep_per_machine = (cap / 6).max(1);
    let sep_machines = n.div_ceil(sep_per_machine);

    // ---- separator parents (Lemma 10 arithmetic) ----
    let sep_parent_vecs = exec.round("singleton/sep", sep_machines, |ctx, mi| {
        let lo = mi * sep_per_machine;
        let hi = ((mi + 1) * sep_per_machine).min(n);
        let mut out = Vec::with_capacity(hi - lo);
        #[allow(clippy::needless_range_loop)] // v is a vertex id indexing boundary
        for v in lo..hi {
            ctx.charge_local(1);
            let top = de.path_top[v];
            let len = de.path_len[v] as u64;
            let pos = de.pos_in_path[v] as u64;
            let x = de.label[v] + 1 - de.d0[v]; // in-path threshold ≥ 1
            let (rlo, rhi) = binpath::run_bounds(pos, len, x);
            // Boundary neighbor above the run.
            let b_top = if rlo > 0 {
                Some(at_pos.expect(ctx, pack2(top, rlo as u32 - 1)))
            } else {
                let p = parent[top as usize];
                if p == top {
                    None
                } else {
                    Some(p)
                }
            };
            // Boundary neighbor below the run (heavy successor).
            let b_bot = if rhi + 1 < len {
                Some(at_pos.expect(ctx, pack2(top, rhi as u32 + 1)))
            } else {
                None
            };
            let sep = match (b_top, b_bot) {
                (None, None) => NONE,
                (Some(b), None) | (None, Some(b)) => b,
                (Some(b1), Some(b2)) => {
                    let l1 = label_dht.expect(ctx, b1 as u64);
                    let l2 = label_dht.expect(ctx, b2 as u64);
                    debug_assert_ne!(l1, l2, "boundary labels must differ");
                    if l1 > l2 {
                        b1
                    } else {
                        b2
                    }
                }
            };
            out.push((sep, b_top, b_bot));
        }
        out
    });
    let mut sep_parent = vec![NONE; n];
    let mut boundary: Vec<(Option<u32>, Option<u32>)> = vec![(None, None); n];
    for (mi, part) in sep_parent_vecs.into_iter().enumerate() {
        for (j, (sep, bt, bb)) in part.into_iter().enumerate() {
            sep_parent[mi * sep_per_machine + j] = sep;
            boundary[mi * sep_per_machine + j] = (bt, bb);
        }
    }

    // Separator depths (for meet detection): one chain compression.
    let sep_next: Vec<u32> =
        (0..n).map(|v| if sep_parent[v] == NONE { v as u32 } else { sep_parent[v] }).collect();
    let sep_rank = chain_aggregate(exec, &sep_next, &vec![1u64; n], "singleton/sepdepth");
    let sep_dht: Dht<(u32, u32)> = Dht::new(); // v -> (sep_parent, sep_depth)
    sep_dht.bulk_load((0..n).map(|v| (v as u64, (sep_parent[v], sep_rank.acc[v] as u32))));

    // ---- ldr_time (Lemma 11) ----
    // Per-component max priority (for global leaders).
    let mut comp_max = std::collections::HashMap::<u32, u64>::new();
    let mut comp_size = std::collections::HashMap::<u32, u32>::new();
    for v in 0..n {
        let r = de.forest.comp_root[v];
        *comp_size.entry(r).or_insert(0) += 1;
        let e = comp_max.entry(r).or_insert(0);
        if parent[v] != v as u32 {
            *e = (*e).max(edge_prio[v]);
        }
    }
    // ldr costs ≤ 2 path-max queries + O(1) reads per vertex.
    let ldr_per_machine = (cap / (2 * pm.query_cost() + 2)).max(1);
    let ldr_machines = n.div_ceil(ldr_per_machine);
    let ldr_vecs = exec.round("singleton/ldr", ldr_machines, |ctx, mi| {
        let lo = mi * ldr_per_machine;
        let hi = ((mi + 1) * ldr_per_machine).min(n);
        let mut out = Vec::with_capacity(hi - lo);
        #[allow(clippy::needless_range_loop)] // v is a vertex id indexing boundary
        for v in lo..hi {
            ctx.charge_local(1);
            let (bt, bb) = boundary[v];
            if bt.is_none() && bb.is_none() {
                // Global leader: the bag may grow to the whole component.
                let r = de.forest.comp_root[v];
                let full_proper = (comp_size[&r] as usize) < n;
                let mx = comp_max[&r];
                out.push(if full_proper { mx } else { mx.saturating_sub(1) });
                continue;
            }
            let mut best = u64::MAX;
            for b in [bt, bb].into_iter().flatten() {
                let jt = pm.join_time(ctx, v as u32, b);
                debug_assert!(jt >= 1);
                best = best.min(jt - 1);
            }
            out.push(best);
        }
        out
    });
    let ldr: Vec<u64> = ldr_vecs.into_iter().flatten().collect();
    let ldr_dht: Dht<u64> = Dht::new();
    ldr_dht.bulk_load((0..n).map(|v| (v as u64, ldr[v])));

    // ---- intervals (Lemmas 12–13): one machine per edge ----
    // An edge's chain walk costs O(chain · query_cost) reads — a polylog
    // per edge, so one edge per machine keeps I/O within polylog · N^ε
    // (the paper's Lemma 13 budget).
    let m = g.m();
    let interval_parts = exec.round("singleton/intervals", m.max(1), |ctx, mi| {
        let lo = mi.min(m);
        let hi = (mi + 1).min(m);
        let mut out: Vec<(u32, (u64, u64, u64))> = Vec::new();
        for ei in lo..hi {
            let e = g.edge(ei);
            let (x, y, w) = (e.u, e.v, e.w);
            // Cross interval: the other endpoint stays outside `u`'s bag
            // for u's whole leadership (Cases 2 / 3a).
            let emit_cross = |ctx: &ampc_model::MachineCtx,
                              out: &mut Vec<(u32, (u64, u64, u64))>,
                              endpoint: u32,
                              u: u32| {
                let l = ldr_dht.expect(ctx, u as u64);
                let t = pm.join_time(ctx, endpoint, u);
                if t <= l {
                    out.push((u, (t, l, w)));
                }
            };
            // Walk both leader chains toward the meet; every element left
            // behind gets a cross interval. On a tie both cursors advance
            // (the deeper-or-equal side rule), and exhausted chains are
            // detected before the equality test so two roots of different
            // components are never mistaken for a meet.
            let (mut ca, mut cb) = (x, y);
            let (mut da, mut db) =
                (sep_dht.expect(ctx, x as u64).1, sep_dht.expect(ctx, y as u64).1);
            let mut meet = NONE;
            loop {
                if ca == cb {
                    meet = ca;
                    break;
                }
                let adv_a = da >= db;
                let adv_b = db >= da;
                if adv_a {
                    emit_cross(ctx, &mut out, x, ca);
                    ca = sep_dht.expect(ctx, ca as u64).0;
                    da = da.saturating_sub(1);
                }
                if adv_b {
                    emit_cross(ctx, &mut out, y, cb);
                    cb = sep_dht.expect(ctx, cb as u64).0;
                    db = db.saturating_sub(1);
                }
                if ca == NONE || cb == NONE {
                    break; // different components
                }
            }
            if meet != NONE {
                // Common suffix: both endpoints inside (Case 3b).
                let mut u = meet;
                loop {
                    let l = ldr_dht.expect(ctx, u as u64);
                    let tx = pm.join_time(ctx, x, u);
                    let ty = pm.join_time(ctx, y, u);
                    let s = tx.min(ty);
                    let e_clip = tx.max(ty).saturating_sub(1).min(l);
                    if s <= e_clip && s <= l {
                        out.push((u, (s, e_clip, w)));
                    }
                    let p = sep_dht.expect(ctx, u as u64).0;
                    if p == NONE {
                        break;
                    }
                    u = p;
                }
            } else {
                // Different components: drain the unexhausted chains.
                while ca != NONE {
                    emit_cross(ctx, &mut out, x, ca);
                    ca = sep_dht.expect(ctx, ca as u64).0;
                }
                while cb != NONE {
                    emit_cross(ctx, &mut out, y, cb);
                    cb = sep_dht.expect(ctx, cb as u64).0;
                }
            }
        }
        out
    });
    // Shuffle: group intervals by leader.
    let mut per_leader: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); n];
    for part in interval_parts {
        for (u, iv) in part {
            per_leader[u as usize].push(iv);
        }
    }

    if std::env::var("MINCUT_DEBUG").is_ok() {
        eprintln!("model labels: {:?}", de.label);
        eprintln!("model sep:    {:?}", sep_parent);
        eprintln!("model ldr:    {:?}", ldr);
        eprintln!(
            "model per-leader interval counts: {:?}",
            per_leader.iter().map(|v| v.len()).collect::<Vec<_>>()
        );
    }

    // ---- per-leader sweeps (Lemma 14) ----
    let small: Vec<u32> = (0..n as u32).filter(|&v| per_leader[v as usize].len() <= cap).collect();
    let mut best = SingletonCut { weight: u64::MAX, leader: 0, time: 0 };
    if !small.is_empty() {
        let sweeps = exec.round("singleton/sweep", small.len(), |ctx, mi| {
            let v = small[mi];
            let ivs = &per_leader[v as usize];
            ctx.charge_local(ivs.len() as u64 + 1);
            let horizon = ldr_dht.expect(ctx, v as u64);
            min_stabbing_weight(ivs, horizon)
        });
        for (i, (w, t)) in sweeps.into_iter().enumerate() {
            if w < best.weight {
                best = SingletonCut { weight: w, leader: small[i], time: t };
            }
        }
    }
    // Oversized leaders: ONE distributed event sort over all of them
    // (leader id in the key's high bits groups segments), Lemma 14's
    // same-time compression in the shuffle, then one scan round with a
    // machine per leader segment — the Theorem 5 pipeline with all
    // leaders processed in parallel, as the paper's level-parallel
    // accounting requires.
    let oversized: Vec<u32> =
        (0..n as u32).filter(|&v| per_leader[v as usize].len() > cap).collect();
    if !oversized.is_empty() {
        // Key layout: leader(20) | time(22) | kind(1) | weight(21).
        const WBITS: u32 = 21;
        const TSHIFT: u32 = WBITS + 1;
        const LSHIFT: u32 = TSHIFT + 22;
        assert!(n < (1 << 20) && g.m() < (1 << 22), "instance too large for key packing");
        let mut keys = Vec::new();
        for &v in &oversized {
            let horizon = ldr[v as usize];
            let lv = (v as u64) << LSHIFT;
            for &(s, e, w) in &per_leader[v as usize] {
                assert!(w < (1 << WBITS), "edge weight too large for key packing");
                keys.push(lv | (s << TSHIFT) | w);
                if e < horizon {
                    keys.push(lv | ((e + 1) << TSHIFT) | (1 << WBITS) | w);
                }
            }
        }
        let sorted = sample_sort(exec, &keys);
        // Shuffle: compress per (leader, time) and split into segments.
        struct Seg {
            leader: u32,
            times: Vec<u64>,
            deltas: Vec<i64>,
        }
        let mut segs: Vec<Seg> = Vec::new();
        for &k in &sorted {
            let v = (k >> LSHIFT) as u32;
            let t = (k >> TSHIFT) & ((1 << 22) - 1);
            let w = (k & ((1 << WBITS) - 1)) as i64;
            let d = if (k >> WBITS) & 1 == 1 { -w } else { w };
            if segs.last().is_none_or(|s| s.leader != v) {
                // Coverage before a leader's first event is zero.
                let mut s = Seg { leader: v, times: vec![], deltas: vec![] };
                if t > 0 {
                    s.times.push(0);
                    s.deltas.push(0);
                }
                segs.push(s);
            }
            let s = segs.last_mut().unwrap();
            if s.times.last() == Some(&t) {
                *s.deltas.last_mut().unwrap() += d;
            } else {
                s.times.push(t);
                s.deltas.push(d);
            }
        }
        // Segmented parallel scan: one round over cap-sized chunks of the
        // concatenated compressed events; each chunk reports (sum, min
        // prefix, argmin) per segment-run it touches, combined per segment
        // in the shuffle with the prefix-sum monoid. Events were already
        // clipped to each leader's horizon at generation, so no filtering
        // is needed here.
        let flat: Vec<(u32, u64, i64)> = segs
            .iter()
            .flat_map(|s| s.times.iter().zip(&s.deltas).map(move |(&t, &d)| (s.leader, t, d)))
            .collect();
        let chunks = flat.len().div_ceil(cap).max(1);
        let partials = exec.round("singleton/scan", chunks, |ctx, mi| {
            let lo = mi * cap;
            let hi = ((mi + 1) * cap).min(flat.len());
            ctx.charge_local((hi - lo) as u64);
            // Per segment-run in this chunk: (leader, sum, minp, arg_time).
            let mut out: Vec<(u32, i64, i64, u64)> = Vec::new();
            for &(leader, t, d) in &flat[lo..hi] {
                match out.last_mut() {
                    Some((l, sum, minp, arg)) if *l == leader => {
                        *sum += d;
                        if *sum < *minp {
                            *minp = *sum;
                            *arg = t;
                        }
                    }
                    _ => out.push((leader, d, d, t)),
                }
            }
            out
        });
        // Shuffle-combine per leader (chunks arrive in order).
        let mut agg: std::collections::HashMap<u32, (i64, i64, u64)> =
            std::collections::HashMap::new();
        for part in partials {
            for (leader, sum, minp, arg) in part {
                match agg.get_mut(&leader) {
                    None => {
                        agg.insert(leader, (sum, minp, arg));
                    }
                    Some((s0, m0, a0)) => {
                        let shifted = *s0 + minp;
                        if shifted < *m0 {
                            *m0 = shifted;
                            *a0 = arg;
                        }
                        *s0 += sum;
                    }
                }
            }
        }
        for s in &segs {
            let (total, mut mn, mut tt) = agg[&s.leader];
            let horizon = ldr[s.leader as usize];
            if *s.times.last().unwrap() < horizon && total < mn {
                mn = total;
                tt = s.times.last().unwrap() + 1;
            }
            debug_assert!(mn >= 0, "negative coverage: leader {}", s.leader);
            let w = mn.max(0) as u64;
            if w < best.weight {
                best = SingletonCut { weight: w, leader: s.leader, time: tt };
            }
        }
    }

    let tracking_rounds = exec.rounds() - tracking_start;
    SingletonReport { cut: best, mst_rounds, tracking_rounds, forest_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priorities::exponential_priorities;
    use crate::singleton::smallest_singleton_cut;
    use ampc_model::{AmpcConfig, ExecMode};
    use cut_graph::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn run(g: &Graph, prio: &[u64], mode: ExecMode) -> (SingletonReport, usize) {
        let mut cfg = AmpcConfig::new(g.n().max(4), 0.5).with_threads(2);
        cfg.mode = mode;
        let mut exec = Executor::new(cfg);
        let rep = ampc_smallest_singleton_cut(&mut exec, g, prio);
        let rounds = exec.rounds();
        (rep, rounds)
    }

    #[test]
    fn matches_reference_engine_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(51);
        for trial in 0..25 {
            let n = rng.gen_range(2..30);
            let max_m = n * (n - 1) / 2;
            let m = rng.gen_range(1..=max_m);
            let g = gen::gnm(n, m, 1..=9, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            let expect = smallest_singleton_cut(&g, &prio);
            let (got, _) = run(&g, &prio, ExecMode::Ampc);
            assert_eq!(got.cut.weight, expect.weight, "trial={trial} n={n} m={m}");
        }
    }

    #[test]
    fn matches_reference_in_mpc_mode() {
        let mut rng = SmallRng::seed_from_u64(52);
        for _ in 0..6 {
            let n = rng.gen_range(3..25);
            let g = gen::connected_gnm(n, 2 * n, 1..=10, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            let expect = smallest_singleton_cut(&g, &prio);
            let (got, _) = run(&g, &prio, ExecMode::Mpc);
            assert_eq!(got.cut.weight, expect.weight);
        }
    }

    #[test]
    fn matches_on_structured_graphs() {
        let mut rng = SmallRng::seed_from_u64(53);
        for g in [gen::cycle(24), gen::barbell(8), gen::wheel(16), gen::grid(5, 6)] {
            let prio = exponential_priorities(&g, &mut rng);
            let expect = smallest_singleton_cut(&g, &prio);
            let (got, _) = run(&g, &prio, ExecMode::Ampc);
            assert_eq!(got.cut.weight, expect.weight);
        }
    }

    #[test]
    fn weighted_graphs_match() {
        let mut rng = SmallRng::seed_from_u64(54);
        for _ in 0..10 {
            let n = rng.gen_range(4..40);
            let g = gen::connected_gnm(n, 3 * n, 1..=100, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            let expect = smallest_singleton_cut(&g, &prio);
            let (got, _) = run(&g, &prio, ExecMode::Ampc);
            assert_eq!(got.cut.weight, expect.weight);
        }
    }

    #[test]
    fn tracking_rounds_grow_slowly() {
        // Theorem 3: tracking is O(1/ε) rounds — in particular the round
        // count must grow (at most) logarithmically-slowly with n, while
        // MPC-mode rounds grow like log n.
        let mut rng = SmallRng::seed_from_u64(55);
        let small = gen::connected_gnm(64, 192, 1..=5, &mut rng);
        let big = gen::connected_gnm(2048, 6144, 1..=5, &mut rng);
        let ps = exponential_priorities(&small, &mut rng);
        let pb = exponential_priorities(&big, &mut rng);
        let (rs, _) = run(&small, &ps, ExecMode::Ampc);
        let (rb, _) = run(&big, &pb, ExecMode::Ampc);
        // 32x the vertices: allow at most +8 tracking rounds.
        assert!(
            rb.tracking_rounds <= rs.tracking_rounds + 8,
            "small={} big={}",
            rs.tracking_rounds,
            rb.tracking_rounds
        );
    }

    #[test]
    fn disconnected_graph_zero() {
        let g = Graph::unit(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let prio = vec![1, 2, 3, 4];
        let (got, _) = run(&g, &prio, ExecMode::Ampc);
        assert_eq!(got.cut.weight, 0);
    }
}
