//! In-model engines: the paper's algorithms executed on the `ampc-model`
//! executor with measured rounds.
//!
//! The reference engines in the crate root compute the same outputs
//! sequentially; these run the round-structured versions — AMPC mode uses
//! adaptive multi-hop DHT walks (`O(1/ε)`-round primitives), MPC mode uses
//! pointer doubling (`O(log n)`-round primitives) and serves as the
//! Ghaffari–Nowicki-shaped baseline of Corollary 1.

pub mod lowdepth;
pub mod mincut;
pub mod pathmax;
pub mod singleton;

pub use lowdepth::{ampc_low_depth_decomposition, InModelDecomposition};
pub use mincut::{ampc_min_cut, AmpcMinCutReport};
pub use pathmax::PathMax;
pub use singleton::{ampc_smallest_singleton_cut, SingletonReport};
