//! Contraction baselines from §2: Karger's algorithm and Karger–Stein.
//!
//! These are the comparison points for E9: the same contraction substrate
//! as `AMPC-MinCut` but without singleton tracking or boosting, so their
//! success probabilities follow Lemma 1 (`Ω(1/t²)` preservation, hence
//! `Ω(1/log n)` per Karger–Stein run).

use cut_graph::{stoer_wagner, CutResult, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::contraction::contract_prefix;
use crate::priorities::exponential_priorities;

/// One run of Karger's contraction: contract uniformly (weight-biased)
/// until two super-vertices remain; the crossing weight is the cut.
pub fn karger_once(g: &Graph, rng: &mut impl Rng) -> CutResult {
    assert!(g.n() >= 2);
    let prio = exponential_priorities(g, rng);
    let (h, labels) = contract_prefix(g, &prio, 2);
    debug_assert!(h.n() == 2 || !g.is_connected());
    let weight = h.total_weight();
    let side: Vec<u32> = (0..g.n() as u32).filter(|&v| labels[v as usize] == 0).collect();
    CutResult { weight, side }
}

/// Repeat [`karger_once`] `runs` times and keep the best cut.
pub fn karger(g: &Graph, runs: usize, seed: u64) -> CutResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<CutResult> = None;
    for _ in 0..runs.max(1) {
        let c = karger_once(g, &mut rng);
        if best.as_ref().is_none_or(|b| c.weight < b.weight) {
            best = Some(c);
        }
    }
    best.unwrap()
}

/// Karger–Stein recursive contraction (§2): two independent copies, each
/// contracted by `1/√2`, recursing until the base size.
pub fn karger_stein(g: &Graph, seed: u64) -> CutResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    ks_rec(g, &mut rng)
}

fn ks_rec(g: &Graph, rng: &mut SmallRng) -> CutResult {
    let n = g.n();
    if n <= 6 {
        return stoer_wagner(g);
    }
    let target = ((n as f64) / std::f64::consts::SQRT_2).ceil() as usize;
    let target = target.clamp(2, n - 1);
    let mut best: Option<CutResult> = None;
    for _ in 0..2 {
        let prio = exponential_priorities(g, rng);
        let (h, labels) = contract_prefix(g, &prio, target);
        let sub = if h.n() >= 2 { ks_rec(&h, rng) } else { stoer_wagner(g) };
        let in_side = sub.mask(h.n().max(1));
        let side: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                let l = labels[v as usize] as usize;
                l < in_side.len() && in_side[l]
            })
            .collect();
        let c = CutResult { weight: sub.weight, side };
        if best.as_ref().is_none_or(|b| c.weight < b.weight) {
            best = Some(c);
        }
    }
    best.unwrap()
}

/// Repeated Karger–Stein (the paper boosts with `O(log² n)` runs for high
/// probability).
pub fn karger_stein_boosted(g: &Graph, runs: usize, seed: u64) -> CutResult {
    let mut best: Option<CutResult> = None;
    for r in 0..runs.max(1) {
        let c = karger_stein(g, seed.wrapping_add(r as u64));
        if best.as_ref().is_none_or(|b| c.weight < b.weight) {
            best = Some(c);
        }
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cut_graph::{cut_weight, gen};

    fn assert_valid(g: &Graph, c: &CutResult) {
        assert!(c.is_proper(g.n()));
        assert_eq!(cut_weight(g, &c.mask(g.n())), c.weight);
    }

    #[test]
    fn karger_returns_valid_cuts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::connected_gnm(30, 80, 1..=10, &mut rng);
        let c = karger(&g, 20, 11);
        assert_valid(&g, &c);
        assert!(c.weight >= cut_graph::stoer_wagner(&g).weight);
    }

    #[test]
    fn karger_finds_bridge_with_enough_runs() {
        let g = gen::barbell(6);
        // Min cut 1; with O(n² log n)-ish runs Karger should find it.
        let c = karger(&g, 300, 5);
        assert_eq!(c.weight, 1);
    }

    #[test]
    fn karger_stein_matches_exact_on_moderate_graphs() {
        let mut rng = SmallRng::seed_from_u64(2);
        for seed in 0..5u64 {
            let g = gen::connected_gnm(40, 120, 1..=8, &mut rng);
            let exact = cut_graph::stoer_wagner(&g).weight;
            let c = karger_stein_boosted(&g, 8, seed);
            assert_valid(&g, &c);
            assert!(c.weight >= exact);
            // Boosted KS finds the exact cut with overwhelming probability
            // at this size; allow one weight unit of slack for seed luck.
            assert!(c.weight <= exact + 1, "{} vs {exact}", c.weight);
        }
    }

    #[test]
    fn karger_stein_base_case_is_exact() {
        let g = gen::cycle(5);
        let c = karger_stein(&g, 3);
        assert_eq!(c.weight, 2);
        assert_valid(&g, &c);
    }

    #[test]
    fn boosting_never_hurts() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::connected_gnm(30, 60, 1..=5, &mut rng);
        let one = karger_stein(&g, 42);
        let many = karger_stein_boosted(&g, 6, 42);
        assert!(many.weight <= one.weight);
    }
}
