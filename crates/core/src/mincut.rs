//! Algorithm 1 — `AMPC-MinCut` (Theorem 1): boosted recursive contraction.
//!
//! The recursion follows the Ghaffari–Nowicki boosting schedule described
//! in §2: an instance at "contraction depth" `t = n₀ / n` spawns
//! `⌈x^(1-ε/3)⌉` independent copies, each contracted by a factor
//! `x = max(2, t^((ε/3)/(1-ε/3)))`, so `t` grows doubly exponentially and
//! the recursion has `O(log log n)` levels. On every copy the smallest
//! singleton cut over the whole contraction (Algorithm 3) is recorded; by
//! Lemma 2 each level either exhibits a `(2+ε)`-approximate singleton cut
//! or preserves a fixed minimum cut with probability `≥ 1/x^(1-ε/3)`,
//! which the branching factor boosts to a constant per level.
//!
//! Every candidate this algorithm returns is a *real* cut with its side,
//! so the output is always ≥ OPT; the `(2+ε)` upper bound holds with high
//! probability over the seeds (amplified by `repetitions`).

use cut_graph::{stoer_wagner, CutResult, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::contraction::contract_prefix;
use crate::priorities::exponential_priorities;
use crate::singleton::{singleton_cut_side, smallest_singleton_cut};

/// Options for [`approx_min_cut`].
#[derive(Debug, Clone)]
pub struct MinCutOptions {
    /// Approximation slack `ε ∈ (0, 1)`: target factor `2 + ε`.
    pub epsilon: f64,
    /// Solve instances of at most this many vertices exactly on "one
    /// machine" (the paper's `|G| ≤ n^ε` base case).
    pub base_size: usize,
    /// Independent top-level repetitions (0 ⇒ `⌈log₂ n⌉`).
    pub repetitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MinCutOptions {
    fn default() -> Self {
        Self { epsilon: 0.5, base_size: 32, repetitions: 0, seed: 0xA3C1 }
    }
}

impl MinCutOptions {
    /// Branching factor and shrink factor at contraction depth `t ≥ 1`.
    pub fn schedule(&self, t: f64) -> (usize, f64) {
        let e3 = self.epsilon / 3.0;
        let x = t.powf(e3 / (1.0 - e3)).max(2.0);
        let branch = x.powf(1.0 - e3).ceil() as usize;
        (branch.max(2), x)
    }
}

/// Number of recursion levels the schedule produces from `n` down to
/// `base` — the paper's `O(log log n)` quantity, exposed for E1.
pub fn schedule_levels(n: usize, opts: &MinCutOptions) -> usize {
    let mut size = n as f64;
    let base = opts.base_size.max(2) as f64;
    let mut levels = 0;
    while size > base {
        let t = n as f64 / size;
        let (_, x) = opts.schedule(t);
        size = (size / x).max(1.0);
        levels += 1;
    }
    levels
}

/// `(2+ε)`-approximate weighted global min cut (Theorem 1, reference
/// engine).
///
/// Returns the best cut (value and one realizing side) over all singleton
/// cuts observed during the recursive contraction plus the exactly-solved
/// base instances, across `repetitions` independent runs.
pub fn approx_min_cut(g: &Graph, opts: &MinCutOptions) -> CutResult {
    assert!(g.n() >= 2, "a cut needs at least two vertices");
    let mut best: Option<CutResult> = None;
    for r in 0..repetition_count(g.n(), opts) {
        let cut = approx_min_cut_repetition(g, opts, r as u64);
        if best.as_ref().is_none_or(|b| cut.weight < b.weight) {
            best = Some(cut);
        }
    }
    best.expect("at least one repetition")
}

/// The resolved repetition count `approx_min_cut` runs for a graph of
/// `n` vertices (the `0 ⇒ ⌈log₂ n⌉` default made explicit), always at
/// least 1.
pub fn repetition_count(n: usize, opts: &MinCutOptions) -> usize {
    let reps =
        if opts.repetitions == 0 { (n as f64).log2().ceil() as usize } else { opts.repetitions };
    reps.max(1)
}

/// One independent repetition of the boosted recursion. Each repetition
/// seeds its own RNG from `opts.seed + rep`, so repetitions share no
/// random state — the property the borrowed-worker parallel kernel
/// ([`crate::parallel`]) relies on to fan repetitions out across threads
/// and still merge to the byte-identical sequential answer.
pub fn approx_min_cut_repetition(g: &Graph, opts: &MinCutOptions, rep: u64) -> CutResult {
    assert!(g.n() >= 2, "a cut needs at least two vertices");
    let mut rng = SmallRng::seed_from_u64(opts.seed.wrapping_add(rep));
    solve(g, g.n(), opts, &mut rng, 0)
}

fn solve(
    g: &Graph,
    n0: usize,
    opts: &MinCutOptions,
    rng: &mut SmallRng,
    depth: usize,
) -> CutResult {
    let n = g.n();
    debug_assert!(n >= 2);
    if n <= opts.base_size.max(2) {
        return stoer_wagner(g);
    }
    // Runaway guard: the schedule terminates in O(log log n) levels; a bug
    // in the shrink factor would otherwise loop forever.
    assert!(depth < 64, "recursion too deep: schedule not shrinking");

    let t = (n0 as f64 / n as f64).max(1.0);
    let (branch, x) = opts.schedule(t);
    let target = ((n as f64 / x).ceil() as usize).clamp(2, n - 1);

    let mut best: Option<CutResult> = None;
    let consider = |c: CutResult, best: &mut Option<CutResult>| {
        if best.as_ref().is_none_or(|b| c.weight < b.weight) {
            *best = Some(c);
        }
    };
    for _ in 0..branch {
        let prio = exponential_priorities(g, rng);
        // Track singleton cuts over this copy's whole contraction.
        let sc = smallest_singleton_cut(g, &prio);
        let side = singleton_cut_side(g, &prio, sc);
        consider(CutResult { weight: sc.weight, side }, &mut best);
        // Contract the copy by the schedule's factor and recurse.
        let (h, labels) = contract_prefix(g, &prio, target);
        if h.n() >= 2 {
            let sub = solve(&h, n0, opts, rng, depth + 1);
            let in_side = sub.mask(h.n());
            let side: Vec<u32> =
                (0..n as u32).filter(|&v| in_side[labels[v as usize] as usize]).collect();
            consider(CutResult { weight: sub.weight, side }, &mut best);
        }
    }
    best.expect("branch >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cut_graph::{cut_weight, gen};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_valid_cut(g: &Graph, c: &CutResult) {
        assert!(c.is_proper(g.n()), "side must be proper");
        assert_eq!(cut_weight(g, &c.mask(g.n())), c.weight, "side must realize weight");
    }

    #[test]
    fn schedule_shrinks_doubly_exponentially() {
        let opts = MinCutOptions::default();
        // Level counts are concave in log n: squaring n repeatedly adds
        // fewer and fewer levels (the log log signature; a log n-level
        // schedule would add the same number each time).
        let l10 = schedule_levels(1 << 10, &opts);
        let l20 = schedule_levels(1 << 20, &opts);
        let l40 = schedule_levels(1u64.checked_shl(40).unwrap() as usize, &opts);
        assert!(l10 >= 1);
        assert!(l20 >= l10 && l40 >= l20);
        assert!(l40 - l20 < l20 - l10, "levels {l10} -> {l20} -> {l40} grow linearly in log n");
    }

    #[test]
    fn exact_on_base_case_sizes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::connected_gnm(20, 50, 1..=10, &mut rng);
        let opts = MinCutOptions { base_size: 32, ..Default::default() };
        let cut = approx_min_cut(&g, &opts);
        assert_eq!(cut.weight, cut_graph::stoer_wagner(&g).weight);
        assert_valid_cut(&g, &cut);
    }

    #[test]
    fn never_below_optimum_and_within_factor_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(2);
        let opts = MinCutOptions { base_size: 8, epsilon: 0.5, repetitions: 4, seed: 7 };
        for _ in 0..8 {
            let n = rng.gen_range(20..60);
            let m = 3 * n;
            let g = gen::connected_gnm(n, m, 1..=10, &mut rng);
            let exact = cut_graph::stoer_wagner(&g).weight;
            let cut = approx_min_cut(&g, &opts);
            assert_valid_cut(&g, &cut);
            assert!(cut.weight >= exact);
            assert!(
                (cut.weight as f64) <= 2.5 * exact as f64 + 1e-9,
                "weight {} vs exact {exact}",
                cut.weight
            );
        }
    }

    #[test]
    fn finds_planted_cut() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::planted_cut(40, 120, 2, &mut rng);
        let opts = MinCutOptions { base_size: 8, repetitions: 6, ..Default::default() };
        let cut = approx_min_cut(&g, &opts);
        assert_valid_cut(&g, &cut);
        // Planted crossing weight is 2; a (2+ε)-approx must be ≤ 5.
        assert!(cut.weight <= 5, "weight={}", cut.weight);
    }

    #[test]
    fn disconnected_graph_yields_zero() {
        let g = cut_graph::Graph::unit(
            50,
            &(1..25u32)
                .map(|i| (i - 1, i))
                .chain((26..50u32).map(|i| (i - 1, i)))
                .collect::<Vec<_>>(),
        );
        let opts = MinCutOptions { base_size: 8, repetitions: 1, ..Default::default() };
        let cut = approx_min_cut(&g, &opts);
        assert_eq!(cut.weight, 0);
        assert_valid_cut(&g, &cut);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = gen::connected_gnm(40, 100, 1..=5, &mut rng);
        let opts = MinCutOptions { base_size: 8, repetitions: 2, seed: 99, ..Default::default() };
        let a = approx_min_cut(&g, &opts);
        let b = approx_min_cut(&g, &opts);
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.side, b.side);
    }

    #[test]
    fn branch_factor_is_at_least_two() {
        let opts = MinCutOptions::default();
        for t in [1.0, 2.0, 10.0, 1e6] {
            let (b, x) = opts.schedule(t);
            assert!(b >= 2, "t={t}");
            assert!(x >= 2.0, "t={t}");
        }
    }
}
