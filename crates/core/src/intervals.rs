//! Time intervals and weighted stabbing minima (Lemmas 12–14,
//! Observation 9).
//!
//! For a fixed leader `v`, each graph edge is on `v`'s bag boundary during
//! one consecutive time interval (Lemma 12). The smallest `Δbag(v, t)` for
//! `t ∈ [0, ldr_time(v)]` is then the minimum, over `t`, of the total
//! *weight* of intervals covering `t` — a sweep over sorted endpoints plus
//! a running (min-prefix) sum, exactly the reduction of Lemma 14 to the
//! minimum-prefix-sum primitive (Theorem 5).

/// A weighted inclusive time interval `[start, end]` with `weight > 0`.
pub type WInterval = (u64, u64, u64);

/// Minimum total weight of intervals covering any `t ∈ [0, horizon]`,
/// together with the smallest `t` attaining it.
///
/// Interval ends are treated as clipped to `horizon` by the caller;
/// intervals starting after `horizon` must not be passed.
pub fn min_stabbing_weight(intervals: &[WInterval], horizon: u64) -> (u64, u64) {
    // Events: +w at start, -w at end+1; a sentinel at t=0 makes the
    // pre-first-event plateau (weight 0) a candidate, which is correct:
    // with no interval covering t=0 the bag has no boundary at time 0.
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(2 * intervals.len() + 1);
    events.push((0, 0));
    for &(s, e, w) in intervals {
        debug_assert!(s <= e, "empty interval");
        debug_assert!(s <= horizon, "interval starts past horizon");
        debug_assert!(e <= horizon, "interval not clipped to horizon");
        events.push((s, w as i64));
        if e < horizon {
            events.push((e + 1, -(w as i64)));
        }
    }
    events.sort_unstable();
    let mut cur: i64 = 0;
    let mut best = (u64::MAX, 0u64);
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            cur += events[i].1;
            i += 1;
        }
        debug_assert!(cur >= 0, "negative coverage");
        if t <= horizon && (cur as u64) < best.0 {
            best = (cur as u64, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute(intervals: &[WInterval], horizon: u64) -> (u64, u64) {
        let mut best = (u64::MAX, 0);
        for t in 0..=horizon {
            let w: u64 =
                intervals.iter().filter(|&&(s, e, _)| s <= t && t <= e).map(|&(_, _, w)| w).sum();
            if w < best.0 {
                best = (w, t);
            }
        }
        best
    }

    #[test]
    fn matches_bruteforce_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let horizon = rng.gen_range(0..40u64);
            let k = rng.gen_range(0..12);
            let intervals: Vec<WInterval> = (0..k)
                .map(|_| {
                    let s = rng.gen_range(0..=horizon);
                    let e = rng.gen_range(s..=horizon);
                    (s, e, rng.gen_range(1..10u64))
                })
                .collect();
            assert_eq!(
                min_stabbing_weight(&intervals, horizon),
                brute(&intervals, horizon),
                "intervals={intervals:?} horizon={horizon}"
            );
        }
    }

    #[test]
    fn empty_input_means_zero_coverage() {
        assert_eq!(min_stabbing_weight(&[], 10), (0, 0));
        assert_eq!(min_stabbing_weight(&[], 0), (0, 0));
    }

    #[test]
    fn full_coverage_returns_lightest_plateau() {
        // [0,4]w3 and [2,4]w5: t in 0..=1 has weight 3.
        assert_eq!(min_stabbing_weight(&[(0, 4, 3), (2, 4, 5)], 4), (3, 0));
    }

    #[test]
    fn gap_after_last_interval_is_zero() {
        assert_eq!(min_stabbing_weight(&[(0, 2, 7)], 5), (0, 3));
    }

    #[test]
    fn gap_before_first_interval_is_zero() {
        assert_eq!(min_stabbing_weight(&[(3, 5, 7)], 5), (0, 0));
    }

    #[test]
    fn overlapping_weights_add() {
        let iv = [(0, 10, 1), (0, 10, 2), (5, 10, 4)];
        assert_eq!(min_stabbing_weight(&iv, 10), (3, 0));
    }

    #[test]
    fn earliest_argmin_is_reported() {
        let iv = [(0, 1, 5), (4, 5, 5)];
        // Weight 0 at t=2 and t=3; earliest is 2.
        assert_eq!(min_stabbing_weight(&iv, 5), (0, 2));
    }
}
