//! # `mincut-core` — the paper's algorithms
//!
//! Implementation of *Adaptive Massively Parallel Algorithms for Cut
//! Problems* (Hajiaghayi, Knittel, Olkowski, Saleh — SPAA 2022):
//!
//! * [`priorities`]: exponential-clock contraction priorities — the unique
//!   random edge weights of §4.1, correct for *weighted* Karger
//!   contraction;
//! * [`contraction`]: the contraction-process semantics (`bag`, `Δbag`,
//!   Observation 7) plus a sequential **oracle** that tracks every
//!   super-vertex degree over the whole process — the ground truth every
//!   other engine is tested against;
//! * [`intervals`]: Lemma 12–14 — per-(edge, leader) time intervals and
//!   the weighted minimum-stabbing sweep;
//! * [`singleton`]: Algorithm 3 — `SmallestSingletonCut` via the low-depth
//!   decomposition, leader chains and interval sweeps (Theorem 3);
//! * [`mincut`]: Algorithm 1 — the boosted recursive contraction
//!   `AMPC-MinCut` computing a `(2+ε)`-approximate weighted min cut
//!   (Theorem 1);
//! * [`kcut`]: Algorithm 4 — `APX-SPLIT`, the `(4+ε)`-approximate Min
//!   k-Cut (Theorem 2);
//! * [`baselines`]: Karger contraction and Karger–Stein recursion (§2);
//! * [`model`]: the same algorithms executed **in-model** on the
//!   `ampc-model` executor with measured rounds, in AMPC mode (adaptive
//!   multi-hop) or MPC mode (pointer doubling — the Ghaffari–Nowicki-shaped
//!   baseline of Corollary 1).

pub mod baselines;
pub mod contraction;
pub mod intervals;
pub mod kcut;
pub mod mincut;
pub mod model;
pub mod parallel;
pub mod priorities;
pub mod singleton;

pub use contraction::{contract_prefix, contraction_oracle};
pub use kcut::{apx_split, KCutOptions, KCutResult};
pub use mincut::{approx_min_cut, MinCutOptions};
pub use parallel::par_approx_min_cut;
pub use priorities::exponential_priorities;
pub use singleton::{smallest_singleton_cut, SingletonCut, SingletonEngine};
