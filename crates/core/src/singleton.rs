//! Algorithm 3 — `SmallestSingletonCut` (Theorem 3), reference engine.
//!
//! Pipeline (§4.2–4.4):
//!
//! 1. minimum spanning forest under the contraction priorities (the only
//!    edges that change the contraction topology, §4.1);
//! 2. generalized low-depth decomposition of the forest (Algorithm 2);
//! 3. leaders (Definition 7): with a valid decomposition every vertex is
//!    the unique minimum-label vertex of its component in `T_{ℓ(v)}`;
//!    `ldr_time` comes from the ≤ 2 boundary edges of that component
//!    (Lemmas 10–11);
//! 4. per-(edge, leader) time intervals (Lemmas 12–13), resolved through
//!    leader chains in the separator tree instead of per-level re-rooting
//!    (equivalence property-tested in `cut-tree::septree`);
//! 5. per-leader weighted stabbing minimum (Lemma 14) and a global min
//!    (Observation 7, restricted to proper bags).
//!
//! This engine is exact: its output equals the contraction oracle's on
//! every input (tested exhaustively and property-based).

use cut_graph::{kruskal, Graph};
use cut_tree::lowdepth::low_depth_decomposition;
use cut_tree::rmq::{HldPathQuery, RmqOp};
use cut_tree::rooted::NONE;
use cut_tree::{Hld, RootedForest, SepTree};

use crate::contraction::bag_of;
use crate::intervals::{min_stabbing_weight, WInterval};

/// The smallest singleton cut found during a contraction process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingletonCut {
    /// Weight of the cut (`Δbag(leader, time)`).
    pub weight: u64,
    /// Leader of the realizing bag.
    pub leader: u32,
    /// Time at which the bag realizes the weight.
    pub time: u64,
}

/// Precomputed decomposition state for one `(graph, priorities)` pair.
///
/// Exposes the intermediate quantities (labels, leader chains, `ldr_time`)
/// so tests and the in-model engine can probe each lemma separately.
pub struct SingletonEngine {
    /// Rooted spanning forest of the contraction-relevant edges.
    pub forest: RootedForest,
    /// Heavy-light decomposition of the forest.
    pub hld: Hld,
    /// Low-depth decomposition labels (Definition 1).
    pub label: Vec<u32>,
    /// Decomposition height.
    pub height: u32,
    /// Separator tree / leader chains.
    pub sep: SepTree,
    /// Path-maximum query structure over tree-edge priorities (Theorem 4).
    pub pathq: HldPathQuery,
    /// `ldr_time(v)` for every vertex (Definition 7, Lemma 11).
    pub ldr: Vec<u64>,
}

impl SingletonEngine {
    /// Build the full decomposition state for `g` under `prio`.
    pub fn new(g: &Graph, prio: &[u64]) -> Self {
        let n = g.n();
        assert!(n >= 2, "need at least 2 vertices");
        assert_eq!(prio.len(), g.m());

        let forest = kruskal(g, prio);
        let pairs: Vec<(u32, u32)> = forest
            .edges
            .iter()
            .map(|&ei| {
                let e = g.edge(ei as usize);
                (e.u, e.v)
            })
            .collect();
        let rooted = RootedForest::from_edges(n, &pairs);
        // Priority of each vertex's parent edge (forest.parent_edge indexes
        // into `pairs`, which parallels `forest.edges`).
        let mut edge_prio = vec![0u64; n];
        #[allow(clippy::needless_range_loop)] // v is a vertex id indexing parallel arrays
        for v in 0..n {
            let pe = rooted.parent_edge[v];
            if pe != NONE {
                edge_prio[v] = prio[forest.edges[pe as usize] as usize];
            }
        }

        let hld = Hld::new(&rooted);
        let labels = low_depth_decomposition(&rooted, &hld);
        debug_assert!(
            cut_tree::validate_decomposition(&rooted, &labels.label).is_ok(),
            "invalid low-depth decomposition"
        );
        let sep = SepTree::new(&rooted, &labels.label);
        let pathq = HldPathQuery::new(&rooted, &hld, &edge_prio, RmqOp::Max);

        // ldr_time (Lemma 11): boundary tree edges via leader chains.
        // A tree edge (c, p) with differing labels is a boundary edge of
        // every chain component of its higher-label endpoint whose level
        // exceeds the lower label.
        let mut ldr = vec![u64::MAX; n];
        for v in 0..n as u32 {
            let p = rooted.parent[v as usize];
            if p == v {
                continue;
            }
            let (hi, lo) =
                if labels.label[v as usize] > labels.label[p as usize] { (v, p) } else { (p, v) };
            let lo_label = labels.label[lo as usize];
            let mut u = hi;
            loop {
                if labels.label[u as usize] <= lo_label {
                    break;
                }
                let join = pathq.join_time(u, lo);
                debug_assert!(join >= 1);
                ldr[u as usize] = ldr[u as usize].min(join - 1);
                match sep.parent[u as usize] {
                    q if q == NONE => break,
                    q => u = q,
                }
            }
        }
        // Global (separator-root) leaders: the bag may grow to the entire
        // tree component. A full component is a proper cut iff the graph
        // has other vertices.
        let comp_max = component_max_prio(&rooted, &edge_prio);
        let mut comp_size = vec![0u32; n];
        for v in 0..n as u32 {
            let r = root_of(&rooted, v);
            comp_size[r as usize] += 1;
        }
        for v in 0..n as u32 {
            if sep.parent[v as usize] == NONE {
                let r = root_of(&rooted, v);
                let full_is_proper = (comp_size[r as usize] as usize) < n;
                ldr[v as usize] = if full_is_proper {
                    comp_max[r as usize]
                } else {
                    comp_max[r as usize].saturating_sub(1)
                };
            } else {
                debug_assert_ne!(ldr[v as usize], u64::MAX, "non-root leader without boundary");
            }
        }

        Self { forest: rooted, hld, label: labels.label, height: labels.height, sep, pathq, ldr }
    }

    /// All per-leader interval lists for the edges of `g` (Lemma 13).
    ///
    /// `out[v]` holds the weighted boundary intervals of leader `v`,
    /// already clipped to `[0, ldr_time(v)]`.
    pub fn leader_intervals(&self, g: &Graph) -> Vec<Vec<WInterval>> {
        let n = g.n();
        let mut out: Vec<Vec<WInterval>> = vec![Vec::new(); n];
        for e in g.edges() {
            let (x, y, w) = (e.u, e.v, e.w);
            match self.sep.meet(x, y) {
                Some(meet) => {
                    // Chain segments below the meet: the other endpoint is
                    // outside the leader's component (Case 3a / Case 2).
                    self.cross_intervals(x, meet, w, &mut out);
                    self.cross_intervals(y, meet, w, &mut out);
                    // Common suffix from the meet to the root: both
                    // endpoints inside (Case 3b).
                    let mut u = meet;
                    loop {
                        let ldr = self.ldr[u as usize];
                        let tx = self.pathq.join_time(x, u);
                        let ty = self.pathq.join_time(y, u);
                        let s = tx.min(ty);
                        let e_raw = tx.max(ty).saturating_sub(1);
                        let e_clip = e_raw.min(ldr);
                        if s <= e_clip {
                            out[u as usize].push((s, e_clip, w));
                        }
                        match self.sep.parent[u as usize] {
                            q if q == NONE => break,
                            q => u = q,
                        }
                    }
                }
                None => {
                    // Different tree components: the other endpoint never
                    // joins any of these leaders' bags.
                    self.cross_intervals_full(x, w, &mut out);
                    self.cross_intervals_full(y, w, &mut out);
                }
            }
        }
        out
    }

    fn cross_intervals(&self, x: u32, stop_exclusive: u32, w: u64, out: &mut [Vec<WInterval>]) {
        let mut u = x;
        while u != stop_exclusive {
            self.push_cross(x, u, w, out);
            match self.sep.parent[u as usize] {
                q if q == NONE => break,
                q => u = q,
            }
        }
    }

    fn cross_intervals_full(&self, x: u32, w: u64, out: &mut [Vec<WInterval>]) {
        let mut u = x;
        loop {
            self.push_cross(x, u, w, out);
            match self.sep.parent[u as usize] {
                q if q == NONE => break,
                q => u = q,
            }
        }
    }

    fn push_cross(&self, x: u32, u: u32, w: u64, out: &mut [Vec<WInterval>]) {
        let ldr = self.ldr[u as usize];
        let tx = self.pathq.join_time(x, u);
        if tx <= ldr {
            out[u as usize].push((tx, ldr, w));
        }
    }

    /// The smallest singleton cut (Theorem 3's output).
    pub fn smallest(&self, g: &Graph) -> SingletonCut {
        let per_leader = self.leader_intervals(g);
        let mut best = SingletonCut { weight: u64::MAX, leader: 0, time: 0 };
        for v in 0..g.n() as u32 {
            let (w, t) = min_stabbing_weight(&per_leader[v as usize], self.ldr[v as usize]);
            if w < best.weight {
                best = SingletonCut { weight: w, leader: v, time: t };
            }
        }
        best
    }
}

fn root_of(forest: &RootedForest, mut v: u32) -> u32 {
    while !forest.is_root(v) {
        v = forest.parent[v as usize];
    }
    v
}

fn component_max_prio(forest: &RootedForest, edge_prio: &[u64]) -> Vec<u64> {
    let n = forest.n();
    let mut comp_max = vec![0u64; n];
    for v in 0..n as u32 {
        if !forest.is_root(v) {
            let r = root_of(forest, v);
            comp_max[r as usize] = comp_max[r as usize].max(edge_prio[v as usize]);
        }
    }
    comp_max
}

/// Convenience wrapper: build the engine and return the smallest singleton
/// cut for `(g, prio)`.
pub fn smallest_singleton_cut(g: &Graph, prio: &[u64]) -> SingletonCut {
    SingletonEngine::new(g, prio).smallest(g)
}

/// Recover the vertex side realizing a [`SingletonCut`].
pub fn singleton_cut_side(g: &Graph, prio: &[u64], cut: SingletonCut) -> Vec<u32> {
    bag_of(g, prio, cut.leader, cut.time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contraction::contraction_oracle;
    use crate::priorities::exponential_priorities;
    use cut_graph::{cut_weight, gen, Edge};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn check_matches_oracle(g: &Graph, prio: &[u64]) {
        let cut = smallest_singleton_cut(g, prio);
        let oracle = contraction_oracle(g, prio);
        assert_eq!(
            cut.weight,
            oracle.min_singleton,
            "engine={cut:?} oracle={oracle:?} edges={:?} prio={prio:?}",
            g.edges()
        );
        // The reported (leader, time) realizes the weight.
        let side = singleton_cut_side(g, prio, cut);
        assert!(!side.is_empty() && side.len() < g.n(), "side must be proper");
        let mut mask = vec![false; g.n()];
        for &v in &side {
            mask[v as usize] = true;
        }
        assert_eq!(cut_weight(g, &mask), cut.weight, "side does not realize weight");
    }

    #[test]
    fn matches_oracle_on_fixed_small_graphs() {
        // Path with specific priorities.
        let g = Graph::new(4, vec![Edge::new(0, 1, 3), Edge::new(1, 2, 1), Edge::new(2, 3, 5)]);
        check_matches_oracle(&g, &[2, 1, 3]);
        check_matches_oracle(&g, &[3, 2, 1]);
        check_matches_oracle(&g, &[1, 2, 3]);
    }

    #[test]
    fn matches_oracle_on_cycles_and_cliques() {
        let mut rng = SmallRng::seed_from_u64(21);
        for g in [gen::cycle(7), gen::complete(6), gen::wheel(8), gen::barbell(4)] {
            for _ in 0..5 {
                let prio = exponential_priorities(&g, &mut rng);
                check_matches_oracle(&g, &prio);
            }
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(22);
        for trial in 0..60 {
            let n = rng.gen_range(2..20);
            let max_m = n * (n - 1) / 2;
            let m = rng.gen_range(1..=max_m);
            let g = gen::gnm(n, m, 1..=9, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            let _ = trial;
            check_matches_oracle(&g, &prio);
        }
    }

    #[test]
    fn matches_oracle_on_weighted_connected_graphs() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..30 {
            let n = rng.gen_range(3..40);
            let m = (n - 1) + rng.gen_range(0..2 * n);
            let g = gen::connected_gnm(n, m.min(n * (n - 1) / 2), 1..=50, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            check_matches_oracle(&g, &prio);
        }
    }

    #[test]
    fn matches_oracle_on_trees() {
        // On a tree every contraction bag is a cut of weight = boundary
        // edges; singleton tracking must find the min-weight edge cut.
        let mut rng = SmallRng::seed_from_u64(24);
        for n in [2usize, 3, 8, 30, 100] {
            let g = gen::random_tree(n, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            check_matches_oracle(&g, &prio);
        }
    }

    #[test]
    fn disconnected_graph_reports_zero() {
        let g = Graph::unit(5, &[(0, 1), (1, 2), (3, 4)]);
        let prio = vec![1, 2, 3];
        let cut = smallest_singleton_cut(&g, &prio);
        assert_eq!(cut.weight, 0);
    }

    #[test]
    fn ldr_time_is_finite_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(25);
        let g = gen::connected_gnm(30, 60, 1..=10, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        let engine = SingletonEngine::new(&g, &prio);
        let maxp = *prio.iter().max().unwrap();
        for v in 0..30u32 {
            assert!(engine.ldr[v as usize] < maxp, "v={v}");
        }
    }

    #[test]
    fn leaders_are_unique_minimum_of_their_bag() {
        // Lemma 8: for any v and t <= ldr_time(v), v has the smallest label
        // in bag(v, t).
        let mut rng = SmallRng::seed_from_u64(26);
        let g = gen::connected_gnm(15, 30, 1..=5, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        let engine = SingletonEngine::new(&g, &prio);
        for v in 0..15u32 {
            for t in [0, engine.ldr[v as usize] / 2, engine.ldr[v as usize]] {
                let bag = bag_of(&g, &prio, v, t);
                let min_label = bag.iter().map(|&u| engine.label[u as usize]).min().unwrap();
                assert_eq!(min_label, engine.label[v as usize], "v={v} t={t}");
                let count = bag.iter().filter(|&&u| engine.label[u as usize] == min_label).count();
                assert_eq!(count, 1, "leader not unique in bag");
            }
        }
    }

    #[test]
    fn ldr_time_is_tight() {
        // At ldr_time(v)+1 the bag contains a smaller-labeled vertex
        // (or the bag is the whole component).
        let mut rng = SmallRng::seed_from_u64(27);
        let g = gen::connected_gnm(20, 40, 1..=8, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        let engine = SingletonEngine::new(&g, &prio);
        for v in 0..20u32 {
            let t = engine.ldr[v as usize];
            let bag_next = bag_of(&g, &prio, v, t + 1);
            let lv = engine.label[v as usize];
            let has_smaller = bag_next.iter().any(|&u| engine.label[u as usize] < lv);
            assert!(has_smaller || bag_next.len() == 20, "v={v}: ldr_time not tight");
        }
    }
}
