//! Borrowed-worker parallel cut kernel: fan the independent repetitions
//! of [`approx_min_cut`](crate::approx_min_cut) out across a small
//! thread pool, merging to the **byte-identical** sequential answer.
//!
//! Why this is the right axis of parallelism: Stoer–Wagner's minimum-cut
//! phases pick one most-tightly-connected vertex at a time, so a
//! per-phase parallelization needs a synchronization barrier per
//! selection step — Θ(n²) barriers for the whole run, which on a
//! handful of borrowed shard workers costs more than it saves. The
//! boosted recursion's top-level repetitions, by contrast, share no
//! state at all: each seeds its own RNG from `seed + rep`
//! ([`approx_min_cut_repetition`]),
//! and Stoer–Wagner runs *inside* each repetition's base cases. So
//! repetitions are the unit of work: embarrassingly parallel, and the
//! merge (strictly-better-wins, scanned in repetition order) is exactly
//! the sequential fold — any worker count, including zero, produces the
//! same bytes.
//!
//! The engine passes `helpers` from the shard pool's loan
//! (`cut_engine`'s `CutPool`): idle shard workers lend capacity, the
//! caller's own thread always works too, and a loan of 0 degrades to
//! the plain sequential call.

use crate::mincut::{approx_min_cut_repetition, repetition_count, MinCutOptions};
use cut_graph::{cut::CutResult, Graph};

/// [`approx_min_cut`](crate::approx_min_cut) with its repetitions
/// distributed over `1 + helpers` threads (the caller's thread plus
/// `helpers` borrowed workers). The result — weight *and* side — is
/// byte-identical to the sequential call for every `helpers` value.
pub fn par_approx_min_cut(g: &Graph, opts: &MinCutOptions, helpers: usize) -> CutResult {
    assert!(g.n() >= 2, "a cut needs at least two vertices");
    let reps = repetition_count(g.n(), opts);
    let workers = (helpers + 1).min(reps);
    if workers <= 1 {
        return crate::approx_min_cut(g, opts);
    }
    // Stripe repetitions over workers; indices ride along so the merge
    // can replay the exact sequential repetition order.
    let mut results: Vec<(usize, CutResult)> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                s.spawn(move || -> Vec<(usize, CutResult)> {
                    (w..reps)
                        .step_by(workers)
                        .map(|r| (r, approx_min_cut_repetition(g, opts, r as u64)))
                        .collect()
                })
            })
            .collect();
        let mut all: Vec<(usize, CutResult)> = (0..reps)
            .step_by(workers)
            .map(|r| (r, approx_min_cut_repetition(g, opts, r as u64)))
            .collect();
        for h in handles {
            all.extend(h.join().expect("repetition worker panicked"));
        }
        all
    });
    results.sort_by_key(|&(r, _)| r);
    // The sequential fold: strictly-better-wins in repetition order, so
    // ties keep the earliest repetition's side.
    let mut best: Option<CutResult> = None;
    for (_, cut) in results {
        if best.as_ref().is_none_or(|b| cut.weight < b.weight) {
            best = Some(cut);
        }
    }
    best.expect("at least one repetition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cut_graph::gen;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn any_helper_count_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        let g = gen::connected_gnm(48, 120, 1..=9, &mut rng);
        let opts = MinCutOptions { repetitions: 7, base_size: 8, ..Default::default() };
        let seq = crate::approx_min_cut(&g, &opts);
        for helpers in 0..5 {
            let par = par_approx_min_cut(&g, &opts, helpers);
            assert_eq!(par.weight, seq.weight, "helpers = {helpers}");
            assert_eq!(par.side, seq.side, "helpers = {helpers}");
        }
    }

    #[test]
    fn more_helpers_than_repetitions_is_fine() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = gen::connected_gnm(16, 40, 1..=5, &mut rng);
        let opts = MinCutOptions { repetitions: 2, base_size: 4, ..Default::default() };
        let seq = crate::approx_min_cut(&g, &opts);
        let par = par_approx_min_cut(&g, &opts, 16);
        assert_eq!((par.weight, par.side), (seq.weight, seq.side));
    }

    #[test]
    fn default_repetition_schedule_matches_too() {
        // repetitions: 0 resolves to ⌈log₂ n⌉ on both paths.
        let mut rng = SmallRng::seed_from_u64(99);
        let g = gen::connected_gnm(40, 100, 1..=12, &mut rng);
        let opts = MinCutOptions { base_size: 8, ..Default::default() };
        let seq = crate::approx_min_cut(&g, &opts);
        let par = par_approx_min_cut(&g, &opts, 3);
        assert_eq!((par.weight, par.side), (seq.weight, seq.side));
    }
}
