//! Contraction priorities: unique random edge ranks.
//!
//! §4.1 assumes "unique weights on edges" from `[n³]` and contracts the
//! edge with weight `t` at time `t`. Only the *relative order* of these
//! weights is ever used (Kruskal, bags, intervals), so we draw exponential
//! clocks `T_e ~ Exp(w_e)` and replace them by their ranks `1..=m`.
//!
//! Exponential clocks make the induced contraction order correct for
//! *weighted* Karger contraction: the first edge to be contracted is `e`
//! with probability `w_e / Σw` (min of independent exponentials), and the
//! property holds recursively after every contraction — the standard
//! reduction from weighted to unweighted contraction that Ghaffari–Nowicki
//! also use. With unit weights this is a uniformly random permutation.

use cut_graph::Graph;
use rand::Rng;

/// Draw contraction priorities for every edge of `g`: unique ranks
/// `1..=m`, ordered by exponential clocks with rate = edge weight.
pub fn exponential_priorities(g: &Graph, rng: &mut impl Rng) -> Vec<u64> {
    let m = g.m();
    let mut clock: Vec<(f64, u32)> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            // Inverse-CDF sampling; guard the log away from 0.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            (-u.ln() / e.w as f64, i as u32)
        })
        .collect();
    clock.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut prio = vec![0u64; m];
    for (rank, &(_, e)) in clock.iter().enumerate() {
        prio[e as usize] = rank as u64 + 1;
    }
    prio
}

#[cfg(test)]
mod tests {
    use super::*;
    use cut_graph::{gen, Edge, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn priorities_are_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::connected_gnm(30, 80, 1..=10, &mut rng);
        let p = exponential_priorities(&g, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=80u64).collect::<Vec<_>>());
    }

    #[test]
    fn heavier_edges_contract_earlier_on_average() {
        // Edge 0 has weight 50, edge 1 weight 1: edge 0 should get the
        // smaller rank (earlier contraction) about 50/51 of the time.
        let g = Graph::new(3, vec![Edge::new(0, 1, 50), Edge::new(1, 2, 1)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut wins = 0;
        let trials = 2000;
        for _ in 0..trials {
            let p = exponential_priorities(&g, &mut rng);
            if p[0] < p[1] {
                wins += 1;
            }
        }
        let rate = wins as f64 / trials as f64;
        assert!((rate - 50.0 / 51.0).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn unit_weights_are_uniform_permutations() {
        // First-ranked edge should be ~uniform over 4 edges.
        let g = gen::cycle(4);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        let trials = 4000;
        for _ in 0..trials {
            let p = exponential_priorities(&g, &mut rng);
            let first = p.iter().position(|&x| x == 1).unwrap();
            counts[first] += 1;
        }
        for &c in &counts {
            let f = c as f64 / trials as f64;
            assert!((f - 0.25).abs() < 0.04, "counts={counts:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::cycle(10);
        let a = exponential_priorities(&g, &mut SmallRng::seed_from_u64(9));
        let b = exponential_priorities(&g, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_gives_empty_priorities() {
        let g = Graph::new(3, vec![]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(exponential_priorities(&g, &mut rng).is_empty());
    }
}
