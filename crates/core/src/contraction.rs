//! The contraction process (§4.1): semantics, a sequential oracle, and
//! prefix contraction.
//!
//! Under priorities `prio`, the process contracts the edge with priority
//! `t` at time `t`. Only minimum-spanning-forest edges change the
//! topology (the Kruskal observation of §4.1), `bag(v, t)` is the set of
//! vertices reachable from `v` via tree edges of priority `≤ t`, and
//! `Δbag(v, t)` is the total weight of graph edges leaving the bag.
//!
//! [`contraction_oracle`] replays the process exactly, maintaining every
//! super-vertex's weighted degree with small-to-large neighbor-map
//! merging — `O(m log² m)` total. It is the ground truth for Theorem 3:
//! the minimum over all *proper* bags (Observation 7, restricted to bags
//! that are genuine cuts, i.e. not the whole vertex set).

use cut_graph::{kruskal, Dsu, Graph};

/// Outcome of the oracle replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Smallest weighted degree of any proper bag during the process.
    pub min_singleton: u64,
    /// A time at which it was attained (0 = before any contraction).
    pub at_time: u64,
}

/// Replay the full contraction process and report the smallest singleton
/// cut over all proper bags.
///
/// Panics when `g` has fewer than 2 vertices (no proper bag exists).
pub fn contraction_oracle(g: &Graph, prio: &[u64]) -> OracleOutcome {
    let n = g.n();
    assert!(n >= 2, "need at least 2 vertices");
    assert_eq!(prio.len(), g.m());

    // Initial singleton bags.
    let mut best = OracleOutcome { min_singleton: u64::MAX, at_time: 0 };
    for v in 0..n as u32 {
        let d = g.weighted_degree(v);
        if d < best.min_singleton {
            best = OracleOutcome { min_singleton: d, at_time: 0 };
        }
    }

    // Neighbor maps per DSU root: other-root -> crossing weight.
    let mut nbr: Vec<std::collections::HashMap<u32, u64>> =
        (0..n).map(|_| std::collections::HashMap::new()).collect();
    let mut deg = vec![0u64; n];
    let mut size = vec![1u32; n];
    for e in g.edges() {
        *nbr[e.u as usize].entry(e.v).or_insert(0) += e.w;
        *nbr[e.v as usize].entry(e.u).or_insert(0) += e.w;
        deg[e.u as usize] += e.w;
        deg[e.v as usize] += e.w;
    }

    let forest = kruskal(g, prio);
    let mut dsu = Dsu::new(n);
    for &ei in &forest.edges {
        let e = g.edge(ei as usize);
        let t = prio[ei as usize];
        let (mut a, mut b) = (dsu.find(e.u), dsu.find(e.v));
        debug_assert_ne!(a, b);
        // Merge the smaller map (b) into the larger (a).
        if nbr[a as usize].len() < nbr[b as usize].len() {
            std::mem::swap(&mut a, &mut b);
        }
        let bmap = std::mem::take(&mut nbr[b as usize]);
        // Crossing weight a↔b, computed BEFORE the union so that b's stale
        // self-entries (keys whose set already merged into b) resolve to b,
        // not to the merged root, and are excluded.
        let mut cross = 0u64;
        for (&to, &w) in &bmap {
            if dsu.find(to) == a {
                cross += w;
            }
        }
        dsu.union(a, b);
        let root = dsu.find(a);
        for (to, w) in bmap {
            let tr = dsu.find(to);
            if tr != root {
                *nbr[a as usize].entry(tr).or_insert(0) += w;
            }
        }
        let new_deg = deg[a as usize] + deg[b as usize] - 2 * cross;
        let new_size = size[a as usize] + size[b as usize];
        // Re-root bookkeeping onto the DSU root.
        if root != a {
            nbr[root as usize] = std::mem::take(&mut nbr[a as usize]);
        }
        deg[root as usize] = new_deg;
        size[root as usize] = new_size;
        if (new_size as usize) < n && new_deg < best.min_singleton {
            best = OracleOutcome { min_singleton: new_deg, at_time: t };
        }
    }
    best
}

/// Contract the cheapest-priority edges of `g` until at most `target`
/// super-vertices remain (or the forest is exhausted).
///
/// Returns the contracted graph and the vertex relabeling used.
pub fn contract_prefix(g: &Graph, prio: &[u64], target: usize) -> (Graph, Vec<u32>) {
    assert!(target >= 1);
    let forest = kruskal(g, prio);
    let mut dsu = Dsu::new(g.n());
    for &ei in &forest.edges {
        if dsu.set_count() <= target {
            break;
        }
        let e = g.edge(ei as usize);
        dsu.union(e.u, e.v);
    }
    let labels = dsu.labels();
    (g.contract(&labels), labels)
}

/// The bag of `leader` at `time`: all vertices reachable from `leader`
/// using spanning-forest edges with priority `≤ time`.
pub fn bag_of(g: &Graph, prio: &[u64], leader: u32, time: u64) -> Vec<u32> {
    let forest = kruskal(g, prio);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); g.n()];
    for &ei in &forest.edges {
        if prio[ei as usize] <= time {
            let e = g.edge(ei as usize);
            adj[e.u as usize].push(e.v);
            adj[e.v as usize].push(e.u);
        }
    }
    let mut seen = vec![false; g.n()];
    let mut out = vec![leader];
    seen[leader as usize] = true;
    let mut head = 0;
    while head < out.len() {
        let v = out[head];
        head += 1;
        for &to in &adj[v as usize] {
            if !seen[to as usize] {
                seen[to as usize] = true;
                out.push(to);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priorities::exponential_priorities;
    use cut_graph::{cut_weight, gen, Edge};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Quadratic re-implementation of the oracle: recompute every bag's
    /// degree from scratch at every time step.
    fn oracle_brute(g: &Graph, prio: &[u64]) -> u64 {
        let n = g.n();
        let mut best = u64::MAX;
        let maxt = *prio.iter().max().unwrap_or(&0);
        for t in 0..=maxt {
            // Components under tree edges of priority <= t: use all edges
            // with priority <= t (non-tree edges don't change components).
            let mut dsu = Dsu::new(n);
            for (i, e) in g.edges().iter().enumerate() {
                if prio[i] <= t {
                    dsu.union(e.u, e.v);
                }
            }
            let labels = dsu.labels();
            let k = *labels.iter().max().unwrap() as usize + 1;
            let mut deg = vec![0u64; k];
            let mut size = vec![0u32; k];
            for v in 0..n {
                size[labels[v] as usize] += 1;
            }
            for e in g.edges() {
                let (a, b) = (labels[e.u as usize], labels[e.v as usize]);
                if a != b {
                    deg[a as usize] += e.w;
                    deg[b as usize] += e.w;
                }
            }
            for c in 0..k {
                if (size[c] as usize) < n {
                    best = best.min(deg[c]);
                }
            }
        }
        best
    }

    #[test]
    fn oracle_matches_bruteforce_replay() {
        let mut rng = SmallRng::seed_from_u64(100);
        for trial in 0..30 {
            let n = rng.gen_range(2..14);
            let max_m = n * (n - 1) / 2;
            let m = rng.gen_range(1..=max_m);
            let g = gen::gnm(n, m, 1..=9, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            let fast = contraction_oracle(&g, &prio);
            let slow = oracle_brute(&g, &prio);
            assert_eq!(fast.min_singleton, slow, "trial={trial} n={n} m={m}");
        }
    }

    #[test]
    fn oracle_on_disconnected_graph_is_zero() {
        let g = Graph::unit(4, &[(0, 1), (2, 3)]);
        let prio = vec![1, 2];
        assert_eq!(contraction_oracle(&g, &prio).min_singleton, 0);
    }

    #[test]
    fn oracle_is_at_most_min_degree() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::connected_gnm(40, 100, 1..=10, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        let min_deg = (0..40u32).map(|v| g.weighted_degree(v)).min().unwrap();
        assert!(contraction_oracle(&g, &prio).min_singleton <= min_deg);
    }

    #[test]
    fn oracle_never_beats_min_cut() {
        // Every bag is a real cut, so the oracle is lower-bounded by the
        // exact min cut.
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..10 {
            let n = rng.gen_range(4..12);
            let g = gen::connected_gnm(n, 2 * n, 1..=5, &mut rng);
            let prio = exponential_priorities(&g, &mut rng);
            let exact = cut_graph::stoer_wagner(&g).weight;
            assert!(contraction_oracle(&g, &prio).min_singleton >= exact);
        }
    }

    #[test]
    fn contract_prefix_reaches_target() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = gen::connected_gnm(50, 120, 1..=10, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        for target in [1usize, 2, 10, 25, 50] {
            let (c, labels) = contract_prefix(&g, &prio, target);
            assert_eq!(c.n(), target.max(1));
            assert_eq!(labels.len(), 50);
            // Contraction preserves total weight minus self-loops.
            assert!(c.total_weight() <= g.total_weight());
        }
    }

    #[test]
    fn contract_prefix_beyond_components_stops() {
        let g = Graph::unit(4, &[(0, 1), (2, 3)]);
        let (c, _) = contract_prefix(&g, &[1, 2], 1);
        assert_eq!(c.n(), 2); // two components can't merge
        assert_eq!(c.m(), 0);
    }

    #[test]
    fn bag_grows_monotonically() {
        let g = Graph::new(4, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(2, 3, 1)]);
        let prio = vec![2, 1, 3];
        assert_eq!(bag_of(&g, &prio, 1, 0), vec![1]);
        assert_eq!(bag_of(&g, &prio, 1, 1), vec![1, 2]);
        assert_eq!(bag_of(&g, &prio, 1, 2), vec![0, 1, 2]);
        assert_eq!(bag_of(&g, &prio, 1, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bag_degree_matches_cut_weight() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = gen::connected_gnm(20, 60, 1..=10, &mut rng);
        let prio = exponential_priorities(&g, &mut rng);
        for t in [0u64, 5, 20, 40] {
            let bag = bag_of(&g, &prio, 3, t);
            let mut mask = vec![false; 20];
            for &v in &bag {
                mask[v as usize] = true;
            }
            // Sanity: cut weight of the bag is a real cut value.
            let w = cut_weight(&g, &mask);
            if bag.len() < 20 {
                assert!(w >= cut_graph::stoer_wagner(&g).weight);
            } else {
                assert_eq!(w, 0);
            }
        }
    }
}
