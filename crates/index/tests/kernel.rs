//! Differential battery for the Padberg–Rinaldi kernel: over every
//! generator family and arbitrary insert/delete interleavings, the
//! kernelized answers must match from-scratch oracles — Stoer–Wagner on
//! the full graph for the global value (`λ(G) = min(resolved,
//! λ(stage-2 kernel))`, the invariant `Kernel::contracted_kernel` pins)
//! and Dinic max-flow for every s-t answer the stage-1 kernel serves.
//! The per-rule counterexample tests (min-vs-sum series smoothing,
//! strictness at the heavy bound, chain resolution) live next to the
//! implementation in `src/kernel.rs`; this suite is the randomized
//! complement.
//!
//! Op streams are decoded from a seeded RNG, so a failure's
//! `(seed, family, …)` tuple replays the exact sequence. Families cover
//! the shapes each rule eats: chains (deg-1 cascades), stars (one hub,
//! all pendants), bridged cliques (heavy contraction plus a light
//! bridge), multigraphs with parallel edges (weight coalescing), skewed
//! weights (heavy-edge bounds), and sparse trees with a few extra edges
//! (the whale preset's regime).

use cut_graph::{maxflow, stoer_wagner, Dsu, Edge, Graph};
use cut_index::{GraphIndex, Kernel, KernelRead};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The value invariant under test: disconnected graphs cut at zero, and
/// otherwise the kernel preserves the global min-cut value as the min of
/// the cheapest elimination-witnessed cut and the contracted kernel's
/// exact cut.
fn kernel_min_cut(kernel: &Kernel) -> u64 {
    if kernel.components() > 1 {
        return 0;
    }
    let mut best = kernel.resolved().unwrap_or(u64::MAX);
    let contracted = kernel.contracted_kernel();
    if contracted.n() >= 2 {
        best = best.min(stoer_wagner(&contracted).weight);
    }
    best
}

/// From-scratch oracle: zero when disconnected, else Stoer–Wagner.
fn oracle_min_cut(n: usize, edges: &[Edge]) -> u64 {
    let mut dsu = Dsu::new(n);
    for e in edges {
        dsu.union(e.u, e.v);
    }
    if dsu.set_count() > 1 {
        return 0;
    }
    stoer_wagner(&Graph::new_unchecked(n, edges.to_vec())).weight
}

/// Min weighted degree of the full graph — the index-summary seed the
/// engine hands `Kernel::build` for the heavy-contraction bound.
fn min_wdeg(n: usize, edges: &[Edge]) -> u64 {
    let mut deg = vec![0u64; n];
    for e in edges {
        if e.u != e.v {
            deg[e.u as usize] += e.w;
            deg[e.v as usize] += e.w;
        }
    }
    deg.into_iter().min().unwrap_or(u64::MAX)
}

/// Check every kernel-served s-t answer against Dinic on the full graph
/// for `samples` random pairs (plus, when `exhaustive`, all pairs).
fn assert_st_matches(
    kernel: &Kernel,
    n: usize,
    edges: &[Edge],
    rng: &mut SmallRng,
    samples: usize,
    ctx: &str,
) {
    let full = Graph::new_unchecked(n, edges.to_vec());
    for _ in 0..samples {
        let s = rng.gen_range(0..n as u32);
        let t = rng.gen_range(0..n as u32);
        if s == t {
            continue;
        }
        if let Some(w) = kernel.st_cut_weight(s, t) {
            let want = maxflow::min_st_cut(&full, s, t);
            assert_eq!(w, want, "st({s}, {t}) {ctx}");
        }
    }
}

/// One generator family's initial edge list.
fn family_edges(family: usize, n: usize, rng: &mut SmallRng) -> Vec<Edge> {
    let nu = n as u32;
    let w = |rng: &mut SmallRng| rng.gen_range(1..=12u64);
    match family {
        // Chain: every interior vertex is deg-2, the ends deg-1.
        0 => (1..nu).map(|i| Edge::new(i - 1, i, w(rng))).collect(),
        // Star: all pendants on one hub.
        1 => (1..nu).map(|i| Edge::new(0, i, w(rng))).collect(),
        // Two cliques joined by one light bridge: the heavy rule's shape.
        2 => {
            let half = (nu / 2).max(2);
            let mut edges = Vec::new();
            for a in 0..half {
                for b in (a + 1)..half {
                    edges.push(Edge::new(a, b, rng.gen_range(4..=9)));
                    if b + half < nu {
                        edges.push(Edge::new(a + half, b + half, rng.gen_range(4..=9)));
                    }
                }
            }
            edges.push(Edge::new(0, half, w(rng)));
            edges
        }
        // Multigraph: parallel edges must coalesce by summed weight.
        3 => (0..2 * n)
            .filter_map(|_| {
                let u = rng.gen_range(0..nu);
                let v = rng.gen_range(0..nu);
                (u != v).then(|| Edge::new(u, v, w(rng)))
            })
            .collect(),
        // Zipf-skewed weights: a few heavy edges over a light sea.
        4 => (0..2 * n)
            .filter_map(|_| {
                let u = rng.gen_range(0..nu);
                let v = rng.gen_range(0..nu);
                let heavy = [1u64, 1, 1, 2, 2, 3, 8, 20][rng.gen_range(0..8usize)];
                (u != v).then(|| Edge::new(u, v, heavy))
            })
            .collect(),
        // Random tree plus a few extra edges: sparse, mostly reducible —
        // the whale preset's regime.
        _ => {
            let mut edges: Vec<Edge> =
                (1..nu).map(|i| Edge::new(rng.gen_range(0..i), i, w(rng))).collect();
            for _ in 0..n / 4 {
                let u = rng.gen_range(0..nu);
                let v = rng.gen_range(0..nu);
                if u != v {
                    edges.push(Edge::new(u, v, w(rng)));
                }
            }
            edges
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fresh builds across every family: global value and sampled s-t
    /// answers match the oracles, and the reported vertex delta is
    /// consistent with the kernel's own counts.
    #[test]
    fn fresh_kernels_match_oracles(seed in any::<u64>(), family in 0usize..6, n in 4usize..24) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let edges = family_edges(family, n, &mut rng);
        let (kernel, delta) = Kernel::build(n, &edges, min_wdeg(n, &edges));
        prop_assert_eq!(delta.in_vertices, n as u64);
        prop_assert_eq!(delta.out_vertices, kernel.n_out() as u64);
        prop_assert!(kernel.n_out() <= n);
        let got = kernel_min_cut(&kernel);
        let want = oracle_min_cut(n, &edges);
        prop_assert!(got == want, "family {} n {}: {} vs {}", family, n, got, want);
        assert_st_matches(&kernel, n, &edges, &mut rng, 8, &format!("family {family}"));
    }

    /// The cached-kernel lifecycle under random mutation interleavings,
    /// driven through `GraphIndex` exactly as the engine drives it:
    /// after *every* op the kernelized global and s-t answers match the
    /// from-scratch oracles, reuse only happens on clean generations,
    /// and a patched kernel answers identically to a freshly built one.
    #[test]
    fn kernelized_answers_survive_mutation_interleavings(
        seed in any::<u64>(), family in 0usize..6, n in 4usize..18, steps in 1usize..40,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = family_edges(family, n, &mut rng);
        let mut idx = GraphIndex::new(n, &edges);
        for step in 0..steps {
            let ctx = format!("family {family} step {step}");
            let kind: u32 = rng.gen_range(0..100);
            if kind < 60 || edges.is_empty() {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                if u == v {
                    v = (v + 1) % n as u32;
                }
                let w = rng.gen_range(1..=12u64);
                edges.push(Edge::new(u, v, w));
                idx.note_insert(u, v, w);
            } else {
                let i = rng.gen_range(0..edges.len());
                let e = edges.swap_remove(i);
                idx.note_delete(e.u, e.v, e.w);
            }
            let (read, value, st_probe) = {
                let (kernel, read) = idx.kernel(n, &edges);
                let s = rng.gen_range(0..n as u32);
                let t = rng.gen_range(0..n as u32);
                let st = (s != t).then(|| (s, t, kernel.st_cut_weight(s, t)));
                (read, kernel_min_cut(kernel), st)
            };
            prop_assert!(
                !matches!(read, KernelRead::Reused),
                "a mutated generation must not serve a stale kernel ({})", &ctx
            );
            let want = oracle_min_cut(n, &edges);
            prop_assert!(value == want, "global value {} vs {}, {}", value, want, &ctx);
            if let Some((s, t, Some(w))) = st_probe {
                let full = Graph::new_unchecked(n, edges.clone());
                let want = maxflow::min_st_cut(&full, s, t);
                prop_assert!(w == want, "st({}, {}) {} vs {}, {}", s, t, w, want, &ctx);
            }
            // The clean-generation re-read reuses, answering identically.
            let (kernel, read) = idx.kernel(n, &edges);
            prop_assert!(matches!(read, KernelRead::Reused), "clean re-read must reuse, {}", &ctx);
            prop_assert_eq!(kernel_min_cut(kernel), oracle_min_cut(n, &edges));
        }
    }

    /// A patched kernel is answer-equivalent to a from-scratch build on
    /// the same edge multiset: same global value, same s-t answers on
    /// every pair the patched kernel serves. (The patched kernel may be
    /// *less* reduced — patching never re-runs stage 1 — so it may serve
    /// a superset of pairs; every served answer must still be exact.)
    #[test]
    fn patched_kernels_answer_like_fresh_builds(
        seed in any::<u64>(), family in 0usize..6, n in 4usize..16, inserts in 1usize..8,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = family_edges(family, n, &mut rng);
        let (mut kernel, _) = Kernel::build(n, &edges, min_wdeg(n, &edges));
        let mut batch = Vec::new();
        for _ in 0..inserts {
            let u = rng.gen_range(0..n as u32);
            let mut v = rng.gen_range(0..n as u32);
            if u == v {
                v = (v + 1) % n as u32;
            }
            batch.push((u, v, rng.gen_range(1..=12u64)));
        }
        let mut post = edges.clone();
        post.extend(batch.iter().map(|&(u, v, w)| Edge::new(u, v, w)));
        let Some(_) = kernel.patch(&batch, min_wdeg(n, &post)) else {
            // An insert touched an eliminated vertex: the index would
            // rebuild; nothing to compare here.
            return Ok(());
        };
        edges = post;
        let (fresh, _) = Kernel::build(n, &edges, min_wdeg(n, &edges));
        prop_assert_eq!(kernel_min_cut(&kernel), kernel_min_cut(&fresh));
        prop_assert_eq!(kernel_min_cut(&kernel), oracle_min_cut(n, &edges));
        let full = Graph::new_unchecked(n, edges.clone());
        for s in 0..n as u32 {
            for t in (s + 1)..n as u32 {
                let want = maxflow::min_st_cut(&full, s, t);
                if let Some(w) = kernel.st_cut_weight(s, t) {
                    prop_assert!(w == want, "patched st({}, {}): {} vs {}", s, t, w, want);
                }
                if let Some(w) = fresh.st_cut_weight(s, t) {
                    prop_assert!(w == want, "fresh st({}, {}): {} vs {}", s, t, w, want);
                }
            }
        }
    }

    /// Exhaustive s-t sweep on fresh kernels: every pair the stage-1
    /// kernel answers agrees with Dinic, across all families.
    #[test]
    fn every_served_st_pair_matches_dinic(seed in any::<u64>(), family in 0usize..6, n in 4usize..14) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let edges = family_edges(family, n, &mut rng);
        let (kernel, _) = Kernel::build(n, &edges, min_wdeg(n, &edges));
        let full = Graph::new_unchecked(n, edges.clone());
        let mut served = 0u32;
        for s in 0..n as u32 {
            for t in (s + 1)..n as u32 {
                if let Some(w) = kernel.st_cut_weight(s, t) {
                    served += 1;
                    let want = maxflow::min_st_cut(&full, s, t);
                    prop_assert!(w == want, "st({}, {}): {} vs {}", s, t, w, want);
                }
            }
        }
        // Chains and stars resolve entirely through pendant logic; at
        // least the families with live cores must serve *something*.
        if matches!(family, 1 | 2) {
            prop_assert!(served > 0, "family {} served no pairs", family);
        }
    }
}
