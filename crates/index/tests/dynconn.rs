//! Differential suite for the dynamic-connectivity level structure:
//! [`DynConn`] (and the [`GraphIndex`] live read path layered on it) must
//! agree with a from-scratch union-find/BFS oracle over arbitrary
//! insert/delete/contract interleavings.
//!
//! Op streams are decoded from small integers drawn off a seeded RNG, so
//! a failure report's `(case, seed)` pair replays the exact sequence —
//! the shrink-friendly stand-in for structural shrinking: tightening the
//! `n`/`steps` ranges by hand narrows a repro monotonically. Targeted
//! generators cover the adversarial shapes the replacement search is
//! easiest to get wrong on: long chains (deep levels), bridges (forced
//! splits), stars (high-degree promotion sweeps), and repeated
//! delete/re-insert of one edge (multiplicity bookkeeping).

use cut_graph::{Dsu, Edge};
use cut_index::{DynConn, GraphIndex};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// From-scratch oracle over the current edge multiset.
fn oracle(n: usize, edges: &[(u32, u32)]) -> Dsu {
    let mut dsu = Dsu::new(n);
    for &(u, v) in edges {
        dsu.union(u, v);
    }
    dsu
}

/// Drive `dc` and the oracle mirror through one decoded op; returns the
/// op applied (for failure messages).
fn apply_random_op(
    dc: &mut DynConn,
    edges: &mut Vec<(u32, u32)>,
    n: usize,
    rng: &mut SmallRng,
) -> String {
    let kind: u32 = rng.gen_range(0..100);
    // Deletes only make sense with edges present; bias toward inserts
    // early so streams reach interesting densities.
    if kind < 55 || edges.is_empty() {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        dc.insert(u, v);
        if u != v {
            edges.push((u, v));
        }
        format!("insert({u}, {v})")
    } else {
        let i = rng.gen_range(0..edges.len());
        let (u, v) = edges.swap_remove(i);
        assert!(dc.delete(u, v), "tracked edge ({u}, {v}) must delete");
        format!("delete({u}, {v})")
    }
}

/// Full cross-check of `dc` against the oracle: component count and every
/// vertex pair.
fn assert_matches_oracle(dc: &DynConn, n: usize, edges: &[(u32, u32)], ctx: &str) {
    let mut dsu = oracle(n, edges);
    assert_eq!(dc.component_count(), dsu.set_count(), "component count, {ctx}");
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            assert_eq!(dc.connected(u, v), dsu.same(u, v), "connected({u}, {v}), {ctx}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random insert/delete interleavings: the forest equals the oracle
    /// after every single op, and the internal level invariants hold at
    /// checkpoints.
    #[test]
    fn random_interleavings_match_oracle(seed in any::<u64>(), n in 2usize..28, steps in 1usize..120) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut dc = DynConn::new(n, &[]);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for step in 0..steps {
            let op = apply_random_op(&mut dc, &mut edges, n, &mut rng);
            assert_matches_oracle(&dc, n, &edges, &format!("step {step}: {op}"));
            if step % 16 == 15 {
                dc.assert_consistent();
            }
        }
        dc.assert_consistent();
    }

    /// The GraphIndex live path (which owns a DynConn and also mirrors
    /// weights/summaries) equals the oracle through insert/delete/contract
    /// interleavings — contractions exercise the wholesale `rebuild_for`
    /// reset the engine uses.
    #[test]
    fn graph_index_live_path_matches_oracle(seed in any::<u64>(), start_n in 4usize..24, steps in 1usize..90) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut n = start_n;
        let mut edges: Vec<Edge> = Vec::new();
        let mut idx = GraphIndex::new(n, &edges);
        for step in 0..steps {
            let kind: u32 = rng.gen_range(0..100);
            if kind >= 95 && n > 3 {
                // Contract the highest vertex into a random survivor:
                // relabel, drop self-loops — the owner then issues a
                // wholesale rebuild, exactly like the engine's contract.
                let into = rng.gen_range(0..(n as u32 - 1));
                let merged = n as u32 - 1;
                n -= 1;
                edges = edges
                    .iter()
                    .filter_map(|e| {
                        let map = |x: u32| if x == merged { into } else { x };
                        let (u, v) = (map(e.u), map(e.v));
                        (u != v).then(|| Edge::new(u, v, e.w))
                    })
                    .collect();
                idx.rebuild_for(n, &edges);
            } else if kind < 55 || edges.is_empty() {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                if u == v {
                    v = (v + 1) % n as u32;
                }
                let w = rng.gen_range(1..16u64);
                edges.push(Edge::new(u, v, w));
                idx.note_insert(u, v, w);
            } else {
                let i = rng.gen_range(0..edges.len());
                let e = edges.swap_remove(i);
                idx.note_delete(e.u, e.v, e.w);
            }
            let pairs: Vec<(u32, u32)> = edges.iter().map(|e| (e.u, e.v)).collect();
            let mut dsu = oracle(n, &pairs);
            let live = idx.components_live(n, &edges);
            prop_assert!(live == dsu.set_count(), "component count at step {step}: {live} vs {}", dsu.set_count());
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            let same = idx.same_component_live(n, &edges, u, v);
            prop_assert!(same == dsu.same(u, v), "connected({u}, {v}) at step {step}");
            // The legacy read must converge to the same count.
            prop_assert_eq!(idx.components(n, &edges).0, dsu.set_count());
        }
    }

    /// Long chains force replacement searches through the deepest level
    /// trees: cut every chain edge in a random order, checking the split
    /// count after each cut.
    #[test]
    fn long_chain_random_cut_order(seed in any::<u64>(), len in 2usize..64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = len + 1;
        let mut dc = DynConn::new(n, &[]);
        for i in 0..len as u32 {
            dc.insert(i, i + 1);
        }
        let mut order: Vec<u32> = (0..len as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut edges: Vec<(u32, u32)> = (0..len as u32).map(|i| (i, i + 1)).collect();
        for (cuts, &i) in order.iter().enumerate() {
            assert!(dc.delete(i, i + 1));
            edges.retain(|&(u, _)| u != i);
            // Every chain cut splits exactly one component.
            prop_assert_eq!(dc.component_count(), cuts + 2);
        }
        assert_matches_oracle(&dc, n, &edges, "chain fully cut");
        dc.assert_consistent();
    }

    /// Bridges between dense sides: deleting the bridge must split even
    /// though both sides are rich in non-tree edges (the replacement scan
    /// runs dry across all levels), and re-inserting heals it.
    #[test]
    fn bridge_between_cliques_flaps(seed in any::<u64>(), side in 2usize..8, flaps in 1usize..12) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 2 * side;
        let mut dc = DynConn::new(n, &[]);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for a in 0..side as u32 {
            for b in (a + 1)..side as u32 {
                dc.insert(a, b);
                dc.insert(a + side as u32, b + side as u32);
                edges.push((a, b));
                edges.push((a + side as u32, b + side as u32));
            }
        }
        let (bu, bv) = (rng.gen_range(0..side as u32), side as u32 + rng.gen_range(0..side as u32));
        for _ in 0..flaps {
            dc.insert(bu, bv);
            prop_assert_eq!(dc.component_count(), 1);
            prop_assert!(dc.connected(0, n as u32 - 1));
            assert!(dc.delete(bu, bv));
            prop_assert_eq!(dc.component_count(), 2);
            prop_assert!(!dc.connected(0, n as u32 - 1));
        }
        assert_matches_oracle(&dc, n, &edges, "bridge down");
        dc.assert_consistent();
    }

    /// Stars: the center's tree edges all live at one vertex, so spoke
    /// churn stresses promotion sweeps over high-degree adjacency.
    #[test]
    fn star_spoke_churn(seed in any::<u64>(), spokes in 2usize..32, churn in 1usize..60) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = spokes + 1;
        let mut dc = DynConn::new(n, &[]);
        let mut up = vec![false; n]; // spoke attached?
        for s in 1..n as u32 {
            dc.insert(0, s);
            up[s as usize] = true;
        }
        for _ in 0..churn {
            let s = rng.gen_range(1..n as u32);
            if up[s as usize] {
                assert!(dc.delete(0, s));
            } else {
                dc.insert(0, s);
            }
            up[s as usize] = !up[s as usize];
            let expect = 1 + up[1..].iter().filter(|&&a| !a).count();
            prop_assert_eq!(dc.component_count(), expect);
        }
        dc.assert_consistent();
    }

    /// Repeated delete/re-insert of one edge, including parallel copies:
    /// multiplicity bookkeeping must keep the structural edge alive until
    /// the last copy goes.
    #[test]
    fn same_edge_delete_reinsert(seed in any::<u64>(), copies in 1usize..5, rounds in 1usize..20) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut dc = DynConn::new(4, &[]);
        dc.insert(0, 1);
        dc.insert(2, 3);
        for _ in 0..rounds {
            for _ in 0..copies {
                dc.insert(1, 2);
            }
            prop_assert!(dc.connected(0, 3));
            for left in (0..copies).rev() {
                // Delete through either orientation.
                let (u, v) = if rng.gen_range(0..2u32) == 0 { (1, 2) } else { (2, 1) };
                assert!(dc.delete(u, v));
                prop_assert!(dc.connected(0, 3) == (left > 0), "{left} copies left");
            }
        }
        dc.assert_consistent();
    }
}
