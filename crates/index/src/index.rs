//! The per-graph incremental index: generation-stamped CSR snapshots,
//! fully dynamic connectivity (with the incremental DSU as legacy path
//! and shadow oracle), and running degree/weight summaries.

use crate::dynconn::DynConn;
use crate::kernel::{Kernel, KernelRead, MAX_PENDING_PATCH};
use cut_graph::{Dsu, Edge, Graph};

/// Counters for how much work the index layer absorbed. Owned by whoever
/// drives the index (one aggregate per engine, so counters survive graph
/// drops); [`GraphIndex`] methods report what happened per call and the
/// driver folds it in here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// CSR snapshots built from the edge list.
    pub csr_builds: u64,
    /// Snapshot requests served by an already-stamped build (builds avoided).
    pub csr_reuses: u64,
    /// Connectivity reads answered without any rebuild: the dynamic-forest
    /// labels or the live DSU (no rebuild, no BFS either way).
    pub dsu_fast_hits: u64,
    /// Connectivity reads that had to rebuild the DSU (after a delete or
    /// contraction invalidated it). Legacy-path only — the dynamic forest
    /// never rebuilds on read.
    pub dsu_rebuilds: u64,
    /// Connectivity reads that rebuilt only because the DSU was sized for
    /// a different vertex count (clean resize, e.g. after vertex growth) —
    /// *not* because a mutation dirtied it. Attributed separately so
    /// `dsu_rebuilds` measures exactly the invalidation cost.
    pub dsu_resizes: u64,
    /// Entries evicted from LRU query caches.
    pub lru_evictions: u64,
    /// Kernels built from scratch (two-stage reduction over the full
    /// edge list).
    pub kernel_builds: u64,
    /// Kernel reads served by an already-stamped kernel untouched.
    pub kernel_reuses: u64,
    /// Kernel reads served by folding pending live-endpoint inserts into
    /// the cached kernel instead of rebuilding.
    pub kernel_patches: u64,
    /// Degree-one eliminations applied (both stages, builds + patches).
    pub kernel_rules_deg1: u64,
    /// Degree-two smoothings applied (both stages, builds + patches).
    pub kernel_rules_deg2: u64,
    /// Heavy-edge contractions applied.
    pub kernel_rules_heavy: u64,
    /// Vertices fed into kernel builds (patches excluded: the ratio
    /// measures at-build shrink).
    pub kernel_in_vertices: u64,
    /// Live stage-2 vertices surviving kernel builds.
    pub kernel_out_vertices: u64,
}

impl IndexStats {
    /// Fold another set of counters into this one. Exhaustive
    /// destructuring: adding a field is a compile error until it merges.
    pub fn merge(&mut self, other: &IndexStats) {
        let IndexStats {
            csr_builds,
            csr_reuses,
            dsu_fast_hits,
            dsu_rebuilds,
            dsu_resizes,
            lru_evictions,
            kernel_builds,
            kernel_reuses,
            kernel_patches,
            kernel_rules_deg1,
            kernel_rules_deg2,
            kernel_rules_heavy,
            kernel_in_vertices,
            kernel_out_vertices,
        } = *other;
        self.csr_builds += csr_builds;
        self.csr_reuses += csr_reuses;
        self.dsu_fast_hits += dsu_fast_hits;
        self.dsu_rebuilds += dsu_rebuilds;
        self.dsu_resizes += dsu_resizes;
        self.lru_evictions += lru_evictions;
        self.kernel_builds += kernel_builds;
        self.kernel_reuses += kernel_reuses;
        self.kernel_patches += kernel_patches;
        self.kernel_rules_deg1 += kernel_rules_deg1;
        self.kernel_rules_deg2 += kernel_rules_deg2;
        self.kernel_rules_heavy += kernel_rules_heavy;
        self.kernel_in_vertices += kernel_in_vertices;
        self.kernel_out_vertices += kernel_out_vertices;
    }

    /// Total reduction-rule applications across every build and patch.
    pub fn kernel_rules_applied(&self) -> u64 {
        self.kernel_rules_deg1 + self.kernel_rules_deg2 + self.kernel_rules_heavy
    }

    /// Surviving-vertex fraction over all kernel builds, in `[0, 1]`
    /// (0 when no kernel was ever built). The whale CI gate requires
    /// this `<= 0.5`: the kernel must shed at least half the vertices.
    pub fn kernel_vertex_ratio(&self) -> f64 {
        if self.kernel_in_vertices == 0 {
            0.0
        } else {
            self.kernel_out_vertices as f64 / self.kernel_in_vertices as f64
        }
    }

    /// Fraction of snapshot requests that reused a stamped build, in
    /// `[0, 1]` (0 when no snapshot was ever requested).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.csr_builds + self.csr_reuses;
        if total == 0 {
            0.0
        } else {
            self.csr_reuses as f64 / total as f64
        }
    }
}

/// O(1) structural facts the index keeps current across mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSummary {
    /// Vertex count.
    pub n: usize,
    /// Edge count (parallel edges counted).
    pub m: usize,
    /// Sum of all edge weights.
    pub total_weight: u64,
    /// Largest weighted degree (0 for edgeless graphs).
    pub max_weighted_degree: u64,
}

/// How a legacy-path connectivity read was served — the attribution the
/// rebuild counters are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnRead {
    /// The live DSU answered as-is: no rebuild of any kind.
    Fast,
    /// The DSU was clean but sized for a different vertex count, so it was
    /// re-derived. This is capacity bookkeeping, not mutation cost — it
    /// feeds [`IndexStats::dsu_resizes`], never `dsu_rebuilds`.
    Resized,
    /// A delete/contraction had dirtied the DSU and this read paid the
    /// O(m α) reconstruction ([`IndexStats::dsu_rebuilds`]).
    Rebuilt,
}

/// The incremental index kept alongside one graph's edge list.
///
/// The owner holds the authoritative `(n, edges)` state and *notifies* the
/// index of every change ([`note_insert`](GraphIndex::note_insert),
/// [`note_delete`](GraphIndex::note_delete),
/// [`rebuild_for`](GraphIndex::rebuild_for)); the index keeps whatever
/// derived state each notification can maintain cheaply and rebuilds the
/// rest lazily at the next read. Invariants:
///
/// - **Generations.** Every notification bumps `generation`. The CSR
///   snapshot is stamped with the generation it was built at and is valid
///   iff the stamps match — so between two mutations, any number of reads
///   share one build.
/// - **Dynamic forest.** A [`DynConn`] level structure is maintained
///   through every notification in amortized polylog time, so
///   [`components_live`](GraphIndex::components_live) /
///   [`same_component_live`](GraphIndex::same_component_live) answer in
///   O(1) with zero rebuilds — deletes included. Its partition version
///   feeds [`partition_generation`](GraphIndex::partition_generation),
///   the certificate the engine's cut-cache gating keys on.
/// - **DSU (legacy path + shadow oracle).** Inserts union in O(α)
///   (connectivity can only increase). Deletes and contractions can split
///   or relabel components, which a DSU cannot track, so they mark it
///   dirty; the next [`components`](GraphIndex::components) read rebuilds
///   it from the edge list in O(m α) and fast-paths thereafter. In debug
///   builds the live reads cross-check against a from-scratch DSU.
/// - **Summaries.** Degree/weight totals update in O(1) per edge
///   notification and are recomputed only on
///   [`rebuild_for`](GraphIndex::rebuild_for).
pub struct GraphIndex {
    /// Bumped by every noted mutation.
    generation: u64,
    /// Lazily built CSR view of the owner's edge list.
    snapshot: Option<Graph>,
    /// Generation the snapshot was built at; valid iff equal to
    /// `generation`.
    snapshot_generation: u64,
    dsu: Dsu,
    /// Set by deletes/contractions; cleared by the lazy rebuild.
    dsu_dirty: bool,
    /// Always-maintained dynamic connectivity (never dirty, never rebuilt
    /// on read).
    dynconn: DynConn,
    /// The generation at (or before) which the vertex partition last
    /// changed. A cached partition-dependent answer stamped at generation
    /// `g` is still exact iff `partition_generation <= g`.
    partition_generation: u64,
    /// Weighted degree per vertex.
    degrees: Vec<u64>,
    total_weight: u64,
    m: usize,
    /// Cached two-stage reduction ([`Kernel`]), stamped with the
    /// generation its last build/patch brought it up to.
    kernel: Option<Kernel>,
    kernel_generation: u64,
    /// Inserts noted since the stamp whose endpoints may still allow a
    /// patch; drained by the next [`kernel`](GraphIndex::kernel) read.
    kernel_pending: Vec<(u32, u32, u64)>,
}

impl GraphIndex {
    /// Index a fresh graph: DSU and summaries are built eagerly (O(n + m)),
    /// the CSR snapshot lazily on first use.
    pub fn new(n: usize, edges: &[Edge]) -> Self {
        let mut index = Self {
            generation: 0,
            snapshot: None,
            snapshot_generation: 0,
            dsu: Dsu::new(0),
            dsu_dirty: false,
            dynconn: DynConn::new(0, &[]),
            partition_generation: 0,
            degrees: Vec::new(),
            total_weight: 0,
            m: 0,
            kernel: None,
            kernel_generation: 0,
            kernel_pending: Vec::new(),
        };
        index.refresh(n, edges);
        index
    }

    /// Index a restored graph whose mutation history happened in a
    /// previous process: identical to [`new`](GraphIndex::new) except the
    /// generation counter resumes at `generation` instead of 0, so
    /// generation-keyed state layered above (epoch-stamped caches) stays
    /// valid across a snapshot/recover cycle.
    pub fn with_generation(n: usize, edges: &[Edge], generation: u64) -> Self {
        let mut index = Self::new(n, edges);
        index.generation = generation;
        index.snapshot_generation = generation;
        // Conservative: the restored index cannot know when the partition
        // last changed in the previous process, so it claims "now" —
        // certificate checks then deny carries rather than risk staleness.
        index.partition_generation = generation;
        index
    }

    /// Current mutation generation (0 for a fresh index).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when the stamped snapshot matches the current generation (the
    /// next [`snapshot`](GraphIndex::snapshot) call will not build).
    pub fn snapshot_is_fresh(&self) -> bool {
        self.snapshot.is_some() && self.snapshot_generation == self.generation
    }

    /// An edge `(u, v, w)` was appended to the owner's edge list.
    pub fn note_insert(&mut self, u: u32, v: u32, w: u64) {
        self.generation += 1;
        // The cached kernel may be patchable across inserts (degrees only
        // grow, so the stage-1 fixpoint survives) — defer the edge and let
        // the next kernel read decide. Past the patch budget, a rebuild is
        // cheaper than replaying the backlog.
        if self.kernel.is_some() {
            self.kernel_pending.push((u, v, w));
            if self.kernel_pending.len() > MAX_PENDING_PATCH {
                self.drop_kernel();
            }
        }
        // Connectivity only grows under insertion, so the DSU stays exact
        // in O(α) — unless it is already dirty, in which case the pending
        // rebuild covers this edge too.
        if !self.dsu_dirty {
            self.dsu.union(u, v);
        }
        let was = self.dynconn.version();
        self.dynconn.insert(u, v);
        if self.dynconn.version() != was {
            self.partition_generation = self.generation;
        }
        self.degrees[u as usize] += w;
        self.degrees[v as usize] += w;
        self.total_weight += w;
        self.m += 1;
    }

    /// An edge `(u, v, w)` was removed from the owner's edge list.
    pub fn note_delete(&mut self, u: u32, v: u32, w: u64) {
        self.generation += 1;
        // A delete can resurrect reduction preconditions retroactively
        // (e.g. un-justify a heavy contraction); no patch rule is sound,
        // so the kernel invalidates outright.
        self.drop_kernel();
        // A deletion can split a component; the DSU cannot un-union, so it
        // goes dirty and rebuilds lazily on the next legacy read. The
        // dynamic forest absorbs the delete exactly (replacement-edge
        // search), so the live path never rebuilds.
        self.dsu_dirty = true;
        let was = self.dynconn.version();
        self.dynconn.delete(u, v);
        if self.dynconn.version() != was {
            self.partition_generation = self.generation;
        }
        self.degrees[u as usize] -= w;
        self.degrees[v as usize] -= w;
        self.total_weight -= w;
        self.m -= 1;
    }

    /// The owner's graph changed wholesale (contraction relabels vertices
    /// and merges parallel edges): re-derive everything from the new state.
    pub fn rebuild_for(&mut self, n: usize, edges: &[Edge]) {
        self.generation += 1;
        self.refresh(n, edges);
    }

    fn refresh(&mut self, n: usize, edges: &[Edge]) {
        self.dsu = Dsu::new(n);
        self.degrees = vec![0; n];
        self.total_weight = 0;
        self.m = edges.len();
        for e in edges {
            self.dsu.union(e.u, e.v);
            self.degrees[e.u as usize] += e.w;
            self.degrees[e.v as usize] += e.w;
            self.total_weight += e.w;
        }
        self.dsu_dirty = false;
        self.dynconn = DynConn::new(n, edges);
        // A wholesale rebuild (contraction) can change the partition
        // arbitrarily; claim the current generation.
        self.partition_generation = self.generation;
        // ... and relabel vertices, which no kernel patch can follow.
        self.drop_kernel();
    }

    fn drop_kernel(&mut self) {
        self.kernel = None;
        self.kernel_pending.clear();
    }

    /// The two-stage reduction kernel of `(n, edges)` at the current
    /// generation. Serves the stamped kernel when no mutation intervened,
    /// patches it across pending live-endpoint inserts, and otherwise
    /// runs a full build (seeding the heavy-edge bound from the running
    /// min weighted degree — an achieved singleton cut). Returns the
    /// kernel and the [`KernelRead`] attribution the caller folds into
    /// [`IndexStats`].
    pub fn kernel(&mut self, n: usize, edges: &[Edge]) -> (&Kernel, KernelRead) {
        // `if let Some(k)` can't return the borrow here (it would pin
        // `self.kernel` across the rebuild below), hence check-then-expect.
        #[allow(clippy::unnecessary_unwrap)]
        if self.kernel.is_some() && self.kernel_generation == self.generation {
            debug_assert!(self.kernel_pending.is_empty(), "stamped kernel with backlog");
            return (self.kernel.as_ref().expect("checked above"), KernelRead::Reused);
        }
        if let Some(k) = self.kernel.as_mut() {
            let pending = std::mem::take(&mut self.kernel_pending);
            let min_wdeg = self.degrees.iter().copied().min().unwrap_or(u64::MAX);
            if let Some(delta) = k.patch(&pending, min_wdeg) {
                self.kernel_generation = self.generation;
                return (
                    self.kernel.as_ref().expect("patched in place"),
                    KernelRead::Patched(delta),
                );
            }
        }
        self.drop_kernel();
        let min_wdeg = self.degrees.iter().copied().min().unwrap_or(u64::MAX);
        let (k, delta) = Kernel::build(n, edges, min_wdeg);
        self.kernel = Some(k);
        self.kernel_generation = self.generation;
        (self.kernel.as_ref().expect("just built"), KernelRead::Built(delta))
    }

    /// True when the stamped kernel matches the current generation (the
    /// next [`kernel`](GraphIndex::kernel) call will neither patch nor
    /// build).
    pub fn kernel_is_fresh(&self) -> bool {
        self.kernel.is_some() && self.kernel_generation == self.generation
    }

    /// The CSR view of `(n, edges)` at the current generation, building it
    /// if the stamp is stale. Returns `(graph, built)` where `built` is
    /// true iff this call did the O(n + m) construction — every other read
    /// between two mutations reuses the stamped build.
    pub fn snapshot(&mut self, n: usize, edges: &[Edge]) -> (&Graph, bool) {
        let built = if self.snapshot_is_fresh() {
            false
        } else {
            self.snapshot = Some(Graph::new_unchecked(n, edges.to_vec()));
            self.snapshot_generation = self.generation;
            true
        };
        (self.snapshot.as_ref().expect("snapshot just ensured"), built)
    }

    /// Connected-component count on the legacy DSU path. Returns
    /// `(components, read)`: [`ConnRead::Fast`] reads the live DSU as-is;
    /// [`ConnRead::Rebuilt`] means a delete/contract forced the O(m α)
    /// reconstruction; [`ConnRead::Resized`] means the DSU was clean but
    /// sized for a different `n` — same reconstruction cost, different
    /// cause, attributed separately so the rebuild counter measures
    /// exactly the mutation-invalidation cost.
    pub fn components(&mut self, n: usize, edges: &[Edge]) -> (usize, ConnRead) {
        let read = if self.dsu_dirty {
            ConnRead::Rebuilt
        } else if self.dsu.len() != n {
            ConnRead::Resized
        } else {
            ConnRead::Fast
        };
        if read != ConnRead::Fast {
            self.dsu = Dsu::new(n);
            for e in edges {
                self.dsu.union(e.u, e.v);
            }
            self.dsu_dirty = false;
        }
        (self.dsu.set_count(), read)
    }

    /// True if `u` and `v` are connected, through the same DSU (and the
    /// same laziness) as [`components`](GraphIndex::components).
    pub fn connected(&mut self, n: usize, edges: &[Edge], u: u32, v: u32) -> bool {
        self.components(n, edges);
        self.dsu.same(u, v)
    }

    /// Connected-component count from the dynamic forest: O(1), never
    /// rebuilds, exact through arbitrary insert/delete interleavings. In
    /// debug builds the answer is cross-checked against a from-scratch
    /// DSU over `(n, edges)` — the shadow oracle; release builds ignore
    /// the arguments entirely.
    pub fn components_live(&mut self, n: usize, edges: &[Edge]) -> usize {
        let live = self.dynconn.component_count();
        debug_assert_eq!(self.dynconn.n(), n, "index vs owner vertex count");
        debug_assert_eq!(
            live,
            {
                let mut oracle = Dsu::new(n);
                for e in edges {
                    oracle.union(e.u, e.v);
                }
                oracle.set_count()
            },
            "dynamic forest diverged from the DSU shadow oracle"
        );
        let _ = (n, edges);
        live
    }

    /// True if `u` and `v` are connected, from the dynamic forest's O(1)
    /// component labels (debug-checked against the DSU shadow oracle).
    pub fn same_component_live(&mut self, n: usize, edges: &[Edge], u: u32, v: u32) -> bool {
        let live = self.dynconn.connected(u, v);
        debug_assert_eq!(
            live,
            {
                let mut oracle = Dsu::new(n);
                for e in edges {
                    oracle.union(e.u, e.v);
                }
                oracle.same(u, v)
            },
            "dynamic forest diverged from the DSU shadow oracle for ({u}, {v})"
        );
        let _ = (n, edges);
        live
    }

    /// The generation at (or before) which the vertex partition last
    /// changed. A partition-dependent answer computed at generation `g`
    /// is still exact iff `partition_generation() <= g` — the certificate
    /// behind the engine's cut-cache carry path.
    pub fn partition_generation(&self) -> u64 {
        self.partition_generation
    }

    /// The running O(1) summaries (max degree is an O(n) scan over the
    /// maintained degree table — still no CSR, no edge scan).
    pub fn summary(&self) -> GraphSummary {
        GraphSummary {
            n: self.degrees.len(),
            m: self.m,
            total_weight: self.total_weight,
            max_weighted_degree: self.degrees.iter().copied().max().unwrap_or(0),
        }
    }

    /// Weighted degree of `v`, maintained incrementally.
    pub fn weighted_degree(&self, v: u32) -> u64 {
        self.degrees[v as usize]
    }

    /// Running edge count — O(1), unlike [`summary`](GraphIndex::summary),
    /// whose max-degree field scans the degree table.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Running total edge weight, O(1).
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Vec<Edge> {
        (0..n as u32 - 1).map(|i| Edge::new(i, i + 1, (i + 1) as u64)).collect()
    }

    #[test]
    fn snapshot_builds_once_per_generation() {
        let mut edges = path(5);
        let mut idx = GraphIndex::new(5, &edges);
        assert!(!idx.snapshot_is_fresh());
        assert!(idx.snapshot(5, &edges).1, "first read builds");
        assert!(idx.snapshot_is_fresh());
        assert!(!idx.snapshot(5, &edges).1, "second read reuses");
        assert!(!idx.snapshot(5, &edges).1);

        edges.push(Edge::new(0, 4, 9));
        idx.note_insert(0, 4, 9);
        assert!(!idx.snapshot_is_fresh(), "mutation invalidates the stamp");
        let (g, built) = idx.snapshot(5, &edges);
        assert!(built);
        assert_eq!(g.m(), 5);
        assert!(!idx.snapshot(5, &edges).1);
    }

    #[test]
    fn generation_counts_every_mutation() {
        let mut edges = path(4);
        let mut idx = GraphIndex::new(4, &edges);
        assert_eq!(idx.generation(), 0);
        edges.push(Edge::new(0, 2, 1));
        idx.note_insert(0, 2, 1);
        let e = edges.remove(0);
        idx.note_delete(e.u, e.v, e.w);
        idx.rebuild_for(4, &edges);
        assert_eq!(idx.generation(), 3);
    }

    #[test]
    fn dsu_fast_path_survives_inserts() {
        let edges = vec![Edge::new(0, 1, 1), Edge::new(2, 3, 1)];
        let mut idx = GraphIndex::new(5, &edges);
        // 0-1 | 2-3 | 4.
        assert_eq!(idx.components(5, &edges), (3, ConnRead::Fast));
        let mut edges = edges;
        edges.push(Edge::new(1, 2, 1));
        idx.note_insert(1, 2, 1);
        // Insert merged in O(α): still no rebuild.
        assert_eq!(idx.components(5, &edges), (2, ConnRead::Fast));
        assert!(idx.connected(5, &edges, 0, 3));
        assert!(!idx.connected(5, &edges, 0, 4));
    }

    #[test]
    fn delete_goes_dirty_and_rebuilds_lazily() {
        let mut edges = vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)];
        let mut idx = GraphIndex::new(3, &edges);
        assert_eq!(idx.components(3, &edges), (1, ConnRead::Fast));
        let e = edges.pop().unwrap();
        idx.note_delete(e.u, e.v, e.w);
        // The split is only visible after the lazy rebuild.
        assert_eq!(idx.components(3, &edges), (2, ConnRead::Rebuilt));
        // ... and the rebuilt DSU fast-paths again.
        assert_eq!(idx.components(3, &edges), (2, ConnRead::Fast));
    }

    #[test]
    fn rebuild_for_handles_contraction_shapes() {
        let edges = path(6);
        let mut idx = GraphIndex::new(6, &edges);
        idx.snapshot(6, &edges);
        // Pretend 5 was merged into 0: n shrinks, edges relabeled.
        let contracted = vec![Edge::new(0, 1, 3), Edge::new(1, 2, 2), Edge::new(3, 4, 7)];
        idx.rebuild_for(5, &contracted);
        assert!(!idx.snapshot_is_fresh());
        assert_eq!(idx.components(5, &contracted), (2, ConnRead::Fast));
        assert_eq!(
            idx.summary(),
            GraphSummary { n: 5, m: 3, total_weight: 12, max_weighted_degree: 7 }
        );
    }

    #[test]
    fn summaries_track_inserts_and_deletes() {
        let mut edges = path(4); // weights 1, 2, 3
        let mut idx = GraphIndex::new(4, &edges);
        assert_eq!(
            idx.summary(),
            GraphSummary {
                n: 4,
                m: 3,
                total_weight: 6,
                max_weighted_degree: 5, // vertex 2: 2 + 3
            }
        );
        edges.push(Edge::new(0, 3, 10));
        idx.note_insert(0, 3, 10);
        assert_eq!(idx.summary().total_weight, 16);
        assert_eq!(idx.summary().max_weighted_degree, 13); // vertex 3: 3 + 10
        assert_eq!(idx.weighted_degree(0), 11);
        let e = edges.remove(0); // the (0,1,1) edge
        idx.note_delete(e.u, e.v, e.w);
        assert_eq!(
            idx.summary(),
            GraphSummary { n: 4, m: 3, total_weight: 15, max_weighted_degree: 13 }
        );
    }

    #[test]
    fn edgeless_and_empty_graphs() {
        let mut idx = GraphIndex::new(0, &[]);
        assert_eq!(idx.components(0, &[]), (0, ConnRead::Fast));
        assert_eq!(idx.summary().max_weighted_degree, 0);
        let mut idx = GraphIndex::new(3, &[]);
        assert_eq!(idx.components(3, &[]), (3, ConnRead::Fast));
        let (g, built) = idx.snapshot(3, &[]);
        assert!(built);
        assert_eq!((g.n(), g.m()), (3, 0));
    }

    #[test]
    fn stats_merge_and_reuse_rate() {
        let mut a = IndexStats { csr_builds: 1, csr_reuses: 3, ..Default::default() };
        let b = IndexStats {
            csr_builds: 1,
            csr_reuses: 3,
            dsu_fast_hits: 5,
            dsu_rebuilds: 2,
            dsu_resizes: 4,
            lru_evictions: 7,
            kernel_builds: 1,
            kernel_reuses: 2,
            kernel_patches: 3,
            kernel_rules_deg1: 4,
            kernel_rules_deg2: 5,
            kernel_rules_heavy: 6,
            kernel_in_vertices: 10,
            kernel_out_vertices: 4,
        };
        a.merge(&b);
        assert_eq!(a.csr_builds, 2);
        assert_eq!(a.csr_reuses, 6);
        assert_eq!(a.dsu_fast_hits, 5);
        assert_eq!(a.dsu_rebuilds, 2);
        assert_eq!(a.dsu_resizes, 4);
        assert_eq!(a.lru_evictions, 7);
        assert_eq!(a.kernel_builds, 1);
        assert_eq!(a.kernel_reuses, 2);
        assert_eq!(a.kernel_patches, 3);
        assert_eq!(a.kernel_rules_applied(), 4 + 5 + 6);
        assert!((a.kernel_vertex_ratio() - 0.4).abs() < 1e-12);
        assert!((a.reuse_rate() - 0.75).abs() < 1e-12);
        assert_eq!(IndexStats::default().reuse_rate(), 0.0);
        assert_eq!(IndexStats::default().kernel_vertex_ratio(), 0.0);
    }

    #[test]
    fn kernel_cache_reuses_patches_and_invalidates() {
        // Two bridged K4 cliques: every vertex has degree >= 3, so all
        // eight survive stage 1 and stay patchable.
        let mut edges = Vec::new();
        for c in [0u32, 4] {
            for i in c..c + 4 {
                for j in i + 1..c + 4 {
                    edges.push(Edge::new(i, j, 4));
                }
            }
        }
        edges.push(Edge::new(3, 4, 1));
        let mut idx = GraphIndex::new(8, &edges);
        assert!(!idx.kernel_is_fresh());
        let (_, read) = idx.kernel(8, &edges);
        assert!(matches!(read, KernelRead::Built(_)));
        assert!(idx.kernel_is_fresh());
        assert!(matches!(idx.kernel(8, &edges).1, KernelRead::Reused));

        // A live-endpoint insert patches in place.
        edges.push(Edge::new(0, 7, 2));
        idx.note_insert(0, 7, 2);
        assert!(!idx.kernel_is_fresh());
        assert!(matches!(idx.kernel(8, &edges).1, KernelRead::Patched(_)));
        assert!(idx.kernel_is_fresh());

        // A delete invalidates outright: next read is a full build.
        let e = edges.pop().unwrap();
        idx.note_delete(e.u, e.v, e.w);
        assert!(matches!(idx.kernel(8, &edges).1, KernelRead::Built(_)));

        // A wholesale rebuild (contraction shape) also invalidates.
        idx.rebuild_for(8, &edges);
        assert!(!idx.kernel_is_fresh());
        assert!(matches!(idx.kernel(8, &edges).1, KernelRead::Built(_)));
    }

    #[test]
    fn kernel_insert_touching_eliminated_vertex_forces_rebuild() {
        // Pendant 3 hangs off the triangle: stage 1 eliminates it, so an
        // insert at 3 cannot patch.
        let mut edges =
            vec![Edge::new(0, 1, 2), Edge::new(1, 2, 2), Edge::new(0, 2, 2), Edge::new(0, 3, 1)];
        let mut idx = GraphIndex::new(4, &edges);
        assert!(matches!(idx.kernel(4, &edges).1, KernelRead::Built(_)));
        edges.push(Edge::new(3, 1, 5));
        idx.note_insert(3, 1, 5);
        assert!(matches!(idx.kernel(4, &edges).1, KernelRead::Built(_)));
    }

    #[test]
    fn clean_resize_is_not_a_rebuild() {
        // A clean DSU asked about a different vertex count re-derives, but
        // the cause is capacity bookkeeping — attributed as Resized, never
        // Rebuilt (the pre-fix code folded this into dsu_rebuilds and
        // inflated the counter the write-heavy acceptance gate measures).
        let edges = vec![Edge::new(0, 1, 1)];
        let mut idx = GraphIndex::new(2, &edges);
        assert_eq!(idx.components(2, &edges), (1, ConnRead::Fast));
        // Owner grew to 4 vertices without an index notification.
        assert_eq!(idx.components(4, &edges), (3, ConnRead::Resized));
        assert_eq!(idx.components(4, &edges), (3, ConnRead::Fast), "resize sticks");
    }

    #[test]
    fn dirty_wins_over_resize_attribution() {
        // When a mutation dirtied the DSU *and* the vertex count moved,
        // the read is attributed to the mutation (Rebuilt): the rebuild
        // would have happened regardless of the resize.
        let mut edges = vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)];
        let mut idx = GraphIndex::new(3, &edges);
        let e = edges.pop().unwrap();
        idx.note_delete(e.u, e.v, e.w);
        assert_eq!(idx.components(4, &edges), (3, ConnRead::Rebuilt));
    }

    #[test]
    fn note_insert_while_dirty_drops_the_union() {
        // Pinned legacy semantics: with a rebuild pending, note_insert
        // deliberately skips the DSU union (the rebuild covers the edge).
        // The dynamic structure must mirror the *graph*, not this DSU
        // laziness — components_live sees the insert immediately.
        let mut edges = vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)];
        let mut idx = GraphIndex::new(4, &edges);
        let e = edges.pop().unwrap(); // drop (1,2)
        idx.note_delete(e.u, e.v, e.w);
        assert!(idx.dsu_dirty, "delete marks the DSU dirty");
        let before = idx.dsu.set_count();
        edges.push(Edge::new(2, 3, 1));
        idx.note_insert(2, 3, 1);
        assert!(idx.dsu_dirty, "insert while dirty leaves the rebuild pending");
        assert_eq!(idx.dsu.set_count(), before, "the union was dropped, not applied");
        // The dynamic path answers the true partition regardless:
        // {0,1} {2,3}.
        assert_eq!(idx.components_live(4, &edges), 2);
        // ... and the legacy read converges to the same answer via its
        // rebuild.
        assert_eq!(idx.components(4, &edges), (2, ConnRead::Rebuilt));
    }

    #[test]
    fn live_path_absorbs_deletes_without_rebuilds() {
        let mut edges = vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(0, 2, 1)];
        let mut idx = GraphIndex::new(4, &edges);
        assert_eq!(idx.components_live(4, &edges), 2); // {0,1,2} {3}
        assert!(idx.same_component_live(4, &edges, 0, 2));
        // Delete a cycle edge: still connected, no legacy rebuild needed
        // for the live answer.
        let e = edges.remove(2);
        idx.note_delete(e.u, e.v, e.w);
        assert_eq!(idx.components_live(4, &edges), 2);
        // Delete a bridge: the live path sees the split immediately.
        let e = edges.remove(1);
        idx.note_delete(e.u, e.v, e.w);
        assert_eq!(idx.components_live(4, &edges), 3);
        assert!(!idx.same_component_live(4, &edges, 1, 2));
        // The legacy DSU is still dirty the whole time — the live reads
        // never rebuilt it.
        assert!(idx.dsu_dirty);
    }

    #[test]
    fn partition_generation_tracks_only_partition_changes() {
        let mut edges = vec![Edge::new(0, 1, 1)];
        let mut idx = GraphIndex::new(3, &edges);
        assert_eq!(idx.partition_generation(), 0);
        // A cycle-closing insert does not move the partition.
        edges.push(Edge::new(0, 1, 5));
        idx.note_insert(0, 1, 5);
        assert_eq!(idx.generation(), 1);
        assert_eq!(idx.partition_generation(), 0);
        // Deleting one parallel copy does not either.
        let e = edges.pop().unwrap();
        idx.note_delete(e.u, e.v, e.w);
        assert_eq!(idx.generation(), 2);
        assert_eq!(idx.partition_generation(), 0);
        // A merging insert does.
        edges.push(Edge::new(1, 2, 1));
        idx.note_insert(1, 2, 1);
        assert_eq!(idx.partition_generation(), 3);
        // A splitting delete does.
        let e = edges.pop().unwrap();
        idx.note_delete(e.u, e.v, e.w);
        assert_eq!(idx.partition_generation(), 4);
        // rebuild_for claims the current generation conservatively.
        idx.rebuild_for(3, &edges);
        assert_eq!(idx.partition_generation(), idx.generation());
        // ... as does a restore.
        let idx = GraphIndex::with_generation(3, &edges, 41);
        assert_eq!(idx.partition_generation(), 41);
    }
}
