//! # `cut-index` — the per-graph incremental index layer
//!
//! The serving engine (`cut_engine`) answers queries against graphs that
//! mutate between reads. Recomputing per-request representations from the
//! raw edge list makes every request cost O(m) before the algorithm even
//! starts; this crate owns the state that amortizes that cost away:
//!
//! - [`GraphIndex`] — one per registered graph:
//!   - a **generation-stamped CSR snapshot**: the adjacency structure is
//!     built at most once per mutation generation, and every read between
//!     two mutations shares the same build;
//!   - **fully dynamic connectivity** ([`DynConn`], a Holm–de
//!     Lichtenberg–Thorup-style level structure): inserts *and* deletes
//!     are absorbed in amortized polylog time, so
//!     [`GraphIndex::components_live`] answers `Connectivity` in O(1)
//!     with zero BFS and zero rebuilds, and
//!     [`GraphIndex::partition_generation`] certifies when the vertex
//!     partition last changed (the engine's cut-cache gate);
//!   - an **incremental DSU** kept as the legacy read path
//!     ([`GraphIndex::components`]) and debug-assert shadow oracle: edge
//!     inserts union in O(α); deletes and contractions mark it dirty and
//!     it is rebuilt lazily on the next legacy connectivity read;
//!   - **running degree/weight summaries** (per-vertex weighted degrees,
//!     total weight, edge count) maintained O(1) per edge mutation;
//!   - a **generation-stamped reduction kernel** ([`Kernel`], exposed
//!     through [`GraphIndex::kernel`]): Padberg–Rinaldi-style exact
//!     reductions (degree-one/degree-two elimination, heavy-edge
//!     contraction against a witnessed bound, component restriction)
//!     that shrink the graph before any expensive cut, cached across
//!     reads, patched across live-endpoint inserts, and invalidated by
//!     everything else.
//! - [`LruCache`] — a real least-recently-used map (doubly-linked order
//!   over an arena, O(1) get/insert/evict) replacing reset-on-full
//!   policies; the engine keys it by query value.
//! - [`IndexStats`] — the observability counters the stress harness
//!   reports: CSR builds vs. reuses, DSU fast-path hits vs. rebuilds,
//!   LRU evictions.
//!
//! Everything here is deterministic: no wall clocks, no hash-order
//! decisions (LRU eviction follows recency order, snapshot builds follow
//! generation numbers), so layering the index under an engine never
//! changes a response stream — only how much work producing it costs.
//!
//! ```
//! use cut_graph::Edge;
//! use cut_index::GraphIndex;
//!
//! // A path 0-1-2 plus an isolated vertex 3.
//! let edges = vec![Edge::new(0, 1, 4), Edge::new(1, 2, 7)];
//! let mut index = GraphIndex::new(4, &edges);
//!
//! // Connectivity is answered by the DSU — no BFS, no CSR build.
//! assert_eq!(index.components(4, &edges).0, 2);
//!
//! // The CSR snapshot is built once per generation ...
//! let (_, built) = index.snapshot(4, &edges);
//! assert!(built);
//! let (_, built) = index.snapshot(4, &edges);
//! assert!(!built, "second read reuses the stamped snapshot");
//! ```

pub mod dynconn;
pub mod index;
pub mod kernel;
pub mod lru;

pub use dynconn::DynConn;
pub use index::{ConnRead, GraphIndex, GraphSummary, IndexStats};
pub use kernel::{Kernel, KernelDelta, KernelRead};
pub use lru::LruCache;
