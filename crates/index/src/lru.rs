//! A real least-recently-used cache: O(1) get/insert/evict via a
//! doubly-linked recency list threaded through a slot arena.
//!
//! Replaces reset-on-full policies (which throw the whole working set away
//! at capacity) with precise eviction of the coldest entry. Deterministic:
//! eviction follows recency order only — hash-map iteration order never
//! decides anything — so two identical access sequences evict identically.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel for "no slot" in the recency list.
const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded map evicting the least-recently-used entry on overflow.
///
/// [`get`](LruCache::get) and [`insert`](LruCache::insert) both count as
/// uses. Capacity must be at least 1.
///
/// ```
/// use cut_index::LruCache;
///
/// let mut cache: LruCache<&str, u32> = LruCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// cache.get(&"a"); // "a" is now the most recent
/// let evicted = cache.insert("c", 3);
/// assert_eq!(evicted, Some(("b", 2))); // the cold entry goes, not the old one
/// assert!(cache.get(&"a").is_some());
/// ```
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot (evicted first).
    tail: usize,
    /// Reusable arena slots from evictions/removals.
    free: Vec<usize>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an LRU cache needs capacity >= 1");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(4096)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The bound passed to [`new`](LruCache::new).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The value for `key`, promoting the entry to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.promote(slot);
        Some(&self.slots[slot].value)
    }

    /// The value for `key` without touching recency (tests/inspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&slot| &self.slots[slot].value)
    }

    /// Insert (or replace) `key -> value` as most-recently-used. Returns
    /// the entry evicted to make room, if any (never on replacement).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.promote(slot);
            return None;
        }
        let evicting = self.map.len() == self.capacity;
        if evicting {
            let tail = self.tail;
            self.unlink(tail);
            let old_key = self.slots[tail].key.clone();
            self.map.remove(&old_key);
            self.free.push(tail);
        }
        // `free` is LIFO, so when the eviction above ran, the pop below
        // returns exactly the evicted slot and `old` is the evicted entry;
        // otherwise a popped slot holds the long-dead remains of a
        // `remove`, which are not reported.
        let fresh = Slot { key: key.clone(), value, prev: NIL, next: NIL };
        let (slot, old) = match self.free.pop() {
            Some(slot) => {
                let old = std::mem::replace(&mut self.slots[slot], fresh);
                (slot, Some((old.key, old.value)))
            }
            None => {
                self.slots.push(fresh);
                (self.slots.len() - 1, None)
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        if evicting {
            old
        } else {
            None
        }
    }

    /// Drop `key`'s entry if present; returns whether one was removed.
    ///
    /// The slot is recycled on a later insert (its contents are replaced
    /// then — removal detaches the entry immediately but defers the value
    /// drop to the slot's reuse or [`clear`](LruCache::clear)).
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(slot) = self.map.remove(key) else {
            return false;
        };
        self.unlink(slot);
        self.free.push(slot);
        true
    }

    /// Iterate live entries from least- to most-recently-used, without
    /// touching recency. This is the serialization order for snapshots:
    /// re-inserting the yielded pairs into a fresh cache (oldest first)
    /// reproduces the exact recency list, so post-restore evictions fall
    /// on the same entries they would have in the original.
    pub fn iter_lru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut slot = self.tail;
        std::iter::from_fn(move || {
            if slot == NIL {
                return None;
            }
            let s = &self.slots[slot];
            slot = s.prev;
            Some((&s.key, &s.value))
        })
    }

    /// Drop every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Detach `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Attach `slot` at the most-recently-used end.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn promote(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..3 {
            assert_eq!(c.insert(i, i * 10), None);
        }
        // Touch 0 so 1 becomes coldest.
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.insert(3, 30), Some((1, 10)));
        assert_eq!(c.len(), 3);
        assert!(c.peek(&1).is_none());
        assert_eq!(c.peek(&0), Some(&0));
    }

    #[test]
    fn replacement_promotes_without_evicting() {
        let mut c: LruCache<&str, u32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Replacing "a" promotes it; no eviction.
        assert_eq!(c.insert("a", 9), None);
        assert_eq!(c.insert("c", 3), Some(("b", 2)));
        assert_eq!(c.peek(&"a"), Some(&9));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_degenerates_gracefully() {
        let mut c: LruCache<u32, &str> = LruCache::new(1);
        assert_eq!(c.insert(1, "one"), None);
        assert_eq!(c.insert(2, "two"), Some((1, "one")));
        assert_eq!(c.get(&2), Some(&"two"));
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn clear_keeps_capacity_and_stays_usable() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert!(c.insert(3, 3).is_some());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
        // Reusable after clear.
        c.insert(4, 4);
        assert_eq!(c.get(&4), Some(&4));
    }

    #[test]
    fn remove_frees_the_slot_without_reporting_an_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.remove(&1));
        assert!(!c.remove(&1), "double remove is a no-op");
        assert_eq!(c.len(), 1);
        // The freed slot is reused below capacity: no phantom eviction.
        assert_eq!(c.insert(3, 30), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&2), Some(&20));
        assert_eq!(c.peek(&3), Some(&30));
        // At capacity again, a real eviction reports the true LRU entry.
        assert_eq!(c.insert(4, 40), Some((2, 20)));
    }

    #[test]
    fn recency_order_is_exact_under_mixed_access() {
        // Model against a Vec-based reference implementation.
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        let mut reference: Vec<u32> = Vec::new(); // most recent first
        let script: &[(bool, u32)] = &[
            (true, 1),
            (true, 2),
            (true, 3),
            (false, 1),
            (true, 4),
            (true, 5), // evicts 2
            (false, 3),
            (true, 6), // evicts 1
            (true, 7), // evicts 4
        ];
        for &(is_insert, k) in script {
            if is_insert {
                c.insert(k, k);
                reference.retain(|&x| x != k);
                reference.insert(0, k);
                reference.truncate(4);
            } else if c.get(&k).is_some() {
                reference.retain(|&x| x != k);
                reference.insert(0, k);
            }
        }
        let mut live: Vec<u32> = reference.clone();
        live.sort_unstable();
        let mut got: Vec<u32> = (0..=9).filter(|k| c.peek(k).is_some()).collect();
        got.sort_unstable();
        assert_eq!(got, live);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_is_a_bug() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    fn iter_lru_yields_oldest_first_and_rebuilds_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        c.get(&1); // recency now (oldest..newest): 2, 3, 1
        let order: Vec<u32> = c.iter_lru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1]);

        // Re-inserting in yielded order reproduces eviction behavior.
        let mut rebuilt: LruCache<u32, u32> = LruCache::new(3);
        for (k, v) in c.iter_lru() {
            rebuilt.insert(*k, *v);
        }
        assert_eq!(rebuilt.insert(4, 40), Some((2, 20)));
        assert_eq!(c.insert(4, 40), Some((2, 20)));
    }
}
